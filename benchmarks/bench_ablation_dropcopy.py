"""Ablation (paper §4.3.1/§4.3.2): when does drop_copy help?

Sweeps the lock-free fetch_and_add counter with and without drop_copy
under INV and UPD across write-run lengths and contention, reproducing
the paper's qualitative findings:

* INV, write-run 1, no contention: drop_copy helps (2 serialized
  messages instead of 4 for the next writer).
* INV, long write runs: drop_copy throws away useful exclusivity.
* INV under contention: drop_copy can hurt (writebacks race recalls,
  producing NAKs and retries).
* UPD with many sharers: drop_copy sheds useless update traffic.
"""

from repro.harness.ablation import run_dropcopy_ablation
from repro.harness.report import render_table

from .conftest import BENCH_NODES, BENCH_TURNS, SWEEP_OPTS, publish, publish_json


def test_dropcopy_ablation(benchmark, bench_config):
    outcome = benchmark.pedantic(
        run_dropcopy_ablation, args=(bench_config,),
        kwargs={"turns": BENCH_TURNS, **SWEEP_OPTS}, rounds=1, iterations=1,
    )
    table = outcome.table
    rows = [
        [panel] + [round(table[(panel, variant)], 1)
                   for variant in outcome.variants]
        for panel in outcome.panels
    ]
    publish("ablation_dropcopy", render_table(
        ["panel"] + outcome.variants, rows,
        title="Ablation: drop_copy effect on the lock-free counter"))
    publish_json("ablation_dropcopy", {
        "panels": outcome.panels,
        "variants": outcome.variants,
        "cycles_per_update": {
            panel: {variant: table[(panel, variant)]
                    for variant in outcome.variants}
            for panel in outcome.panels
        },
    })

    contended = outcome.panels[2]
    # drop_copy helps INV at write-run 1 with no contention...
    assert table[("a=1", "INV+dc")] < table[("a=1", "INV")]
    # ...hurts INV for long write runs...
    assert table[("a=10", "INV+dc")] > table[("a=10", "INV")]
    # ...and hurts INV under contention (NAK races, extra writebacks).
    assert table[(contended, "INV+dc")] > table[(contended, "INV")]
    # UPD with every updater holding a copy: drop_copy sheds updates.
    assert table[(contended, "UPD+dc")] < table[(contended, "UPD")]
    assert BENCH_NODES >= 8
