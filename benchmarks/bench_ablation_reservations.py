"""Ablation (paper §3.1): in-memory LL/SC reservation strategies.

Compares the four reservation designs for memory-side LL/SC — the full
bit vector, the limited-slot table (over-limit load_linked's are doomed
and their store_conditional's fail locally), the bounded-free-list
linked lists, and write serial numbers — on a contended LL/SC counter
with the UNC policy.
"""

from repro.harness.ablation import (
    RESERVATION_STRATEGIES,
    run_reservation_ablation,
)
from repro.harness.report import render_table

from .conftest import BENCH_NODES, BENCH_TURNS, SWEEP_OPTS, publish, publish_json


def test_reservation_strategies(benchmark, bench_config):
    contention = min(16, BENCH_NODES)
    outcome = benchmark.pedantic(
        run_reservation_ablation, args=(bench_config,),
        kwargs={"contention": contention, "turns": BENCH_TURNS,
                "reservation_limit": 4, **SWEEP_OPTS},
        rounds=1, iterations=1,
    )
    results = outcome.results
    rows = [
        [strategy, round(results[strategy][0], 1), results[strategy][1]]
        for strategy in RESERVATION_STRATEGIES
    ]
    publish("ablation_reservations", render_table(
        ["strategy", "cycles/update", "local SC failures"],
        rows,
        title=(f"Ablation §3.1: LL/SC reservation strategies "
               f"(UNC, c={contention})"),
    ))
    publish_json("ablation_reservations", {"strategies": {
        strategy: {
            "cycles_per_update": results[strategy][0],
            "local_sc_failures": results[strategy][1],
        }
        for strategy in RESERVATION_STRATEGIES
    }})

    # Only the capacity-bounded strategies fail store_conditionals
    # locally (doomed reservations) — their point: shed network traffic
    # under contention at the cost of lock-free semantics.
    assert results["limited"][1] > 0
    assert results["bitvector"][1] == 0
    assert results["serial"][1] == 0
    # All strategies stay within a sane band of each other.
    costs = [avg for avg, _ in results.values()]
    assert max(costs) < 4 * min(costs)
