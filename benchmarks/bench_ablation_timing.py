"""Ablation: are the paper's conclusions robust to the timing model?

Our latency constants are not MINT's, so the reproduction's value rests
on the *orderings* being insensitive to them.  This bench re-runs the
headline Figure 3 comparisons under three very different machines —
fast memory/slow network, slow memory/fast network, and uniformly slow —
and asserts the paper's two core claims hold in each:

* uncached fetch_and_add wins under contention;
* the cached INV implementation wins for long write runs.
"""

from dataclasses import replace

from repro import SyncPolicy
from repro.apps.synthetic import SyntheticSpec, run_lockfree_counter
from repro.config import TimingConfig
from repro.harness.parallel import make_point, run_sweep
from repro.harness.report import render_table
from repro.sync.variant import PrimitiveVariant

from .conftest import BENCH_NODES, BENCH_TURNS, SWEEP_OPTS, publish, publish_json

TIMINGS = {
    "default": TimingConfig(),
    "fast-mem": TimingConfig(memory_service=6, hop_cycles=4),
    "slow-mem": TimingConfig(memory_service=60, hop_cycles=1),
    "slow-all": TimingConfig(memory_service=40, hop_cycles=4,
                             controller_occupancy=8),
}

VARIANTS = {
    "FAP/UNC": PrimitiveVariant("fap", SyncPolicy.UNC),
    "FAP/INV": PrimitiveVariant("fap", SyncPolicy.INV),
    "FAP/UPD": PrimitiveVariant("fap", SyncPolicy.UPD),
    "CAS+lx/INV": PrimitiveVariant("cas", SyncPolicy.INV, use_lx=True),
}


def test_timing_sensitivity(benchmark, bench_config):
    contended = SyntheticSpec(contention=min(16, BENCH_NODES),
                              turns=BENCH_TURNS)
    long_runs = SyntheticSpec(contention=1, write_run=10.0,
                              turns=BENCH_TURNS)

    panels = (("contended", contended), ("a=10", long_runs))

    def sweep():
        keys = []
        points = []
        for timing_name, timing in TIMINGS.items():
            config = replace(bench_config, timing=timing)
            for var_name, variant in VARIANTS.items():
                for panel_name, spec in panels:
                    keys.append((timing_name, var_name, panel_name))
                    points.append(make_point(
                        run_lockfree_counter, variant=variant, spec=spec,
                        config=config,
                        label=f"timing: {timing_name} {var_name} {panel_name}",
                    ))
        outcomes = run_sweep(points, **SWEEP_OPTS)
        return {key: outcome.result.avg_cycles
                for key, outcome in zip(keys, outcomes)}

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for timing_name in TIMINGS:
        for panel in ("contended", "a=10"):
            rows.append([f"{timing_name}/{panel}"] + [
                round(table[(timing_name, v, panel)], 1) for v in VARIANTS
            ])
    publish("ablation_timing", render_table(
        ["machine/panel"] + list(VARIANTS), rows,
        title="Ablation: headline orderings across timing models"))
    publish_json("ablation_timing", {"cycles_per_update": {
        timing_name: {
            panel: {v: table[(timing_name, v, panel)] for v in VARIANTS}
            for panel in ("contended", "a=10")
        }
        for timing_name in TIMINGS
    }})

    for timing_name in TIMINGS:
        # UNC fetch_and_add wins under contention, whatever the machine.
        unc = table[(timing_name, "FAP/UNC", "contended")]
        for var_name in ("FAP/INV", "FAP/UPD", "CAS+lx/INV"):
            assert unc < table[(timing_name, var_name, "contended")], (
                timing_name, var_name)
        # The cached INV implementation wins for long write runs.
        inv = table[(timing_name, "FAP/INV", "a=10")]
        assert inv < table[(timing_name, "FAP/UNC", "a=10")], timing_name
        assert inv < table[(timing_name, "FAP/UPD", "a=10")], timing_name
