"""Figure 2: contention histograms and §4.2 write-run lengths.

Regenerates, for each real application and coherence policy, the
histogram of contention levels at the beginning of each synchronization
access, plus the average write-run lengths the paper quotes (LocusRoute
1.70–1.83, Cholesky 1.59–1.62, Transitive Closure slightly above 1).
"""

from repro.harness.figure2 import run_figure2
from repro.harness.report import render_histogram, render_table

from .conftest import BENCH_NODES, SWEEP_OPTS, publish, publish_json


def _mean(histogram):
    return sum(level * pct for level, pct in histogram.items()) / 100.0


def test_figure2(benchmark, bench_config):
    result = benchmark.pedantic(
        run_figure2, args=(bench_config,), kwargs=dict(SWEEP_OPTS),
        rounds=1, iterations=1,
    )

    sections = []
    for app in ("locusroute", "cholesky", "tclosure"):
        for policy in ("UNC", "INV", "UPD"):
            histogram = result.histogram(app, policy)
            sections.append(render_histogram(
                histogram,
                title=(f"Figure 2 — {app} / {policy} "
                       f"(mean level {_mean(histogram):.2f})"),
            ))
    write_runs = render_table(
        ["application", "UNC", "INV", "UPD", "paper"],
        [
            ["locusroute"] + [round(result.write_run("locusroute", p), 2)
                              for p in ("UNC", "INV", "UPD")] + ["1.70-1.83"],
            ["cholesky"] + [round(result.write_run("cholesky", p), 2)
                            for p in ("UNC", "INV", "UPD")] + ["1.59-1.62"],
            ["tclosure"] + [round(result.write_run("tclosure", p), 2)
                            for p in ("UNC", "INV", "UPD")] + ["~1.0"],
        ],
        title="Section 4.2: average write-run lengths",
    )
    publish("figure2", "\n\n".join(sections) + "\n\n" + write_runs)
    publish_json("figure2", {"apps": {
        app: {
            policy: {
                "histogram": {str(level): pct for level, pct
                              in result.histogram(app, policy).items()},
                "write_run": result.write_run(app, policy),
            }
            for policy in ("UNC", "INV", "UPD")
        }
        for app in ("locusroute", "cholesky", "tclosure")
    }})

    # Shape assertions (paper §4.2): the lock applications are dominated
    # by the no-contention case; Transitive Closure contends heavily.
    for policy in ("UNC", "INV", "UPD"):
        assert result.histogram("locusroute", policy).get(1, 0) > 50.0
        assert result.histogram("cholesky", policy).get(1, 0) > 50.0
        assert (_mean(result.histogram("tclosure", policy))
                > 2 * _mean(result.histogram("locusroute", policy)))
    # Write-run regimes (lock apps run in pairs of writes; the lock-free
    # counter's runs stay near 1).
    for app, low, high in (("locusroute", 1.4, 2.1), ("cholesky", 1.3, 2.1)):
        for policy in ("UNC", "INV", "UPD"):
            assert low <= result.write_run(app, policy) <= high, (
                app, policy, result.write_run(app, policy))
    for policy in ("UNC", "INV", "UPD"):
        assert 1.0 <= result.write_run("tclosure", policy) < 1.5
    assert BENCH_NODES >= 8
