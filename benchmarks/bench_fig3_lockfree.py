"""Figure 3: average time per update of the lock-free counter.

All 21 primitive/policy/auxiliary variants over the paper's panels
(write-run 1, 1.5, 2, 3, 10 with no contention; contention 2–64), with
the paper's headline shape claims asserted.
"""

from repro.harness.figures import render_figure, run_figure3

from .conftest import BENCH_TURNS, SWEEP_OPTS, publish, publish_json


def test_figure3(benchmark, bench_config):
    panels = benchmark.pedantic(
        run_figure3, args=(bench_config,),
        kwargs={"turns": BENCH_TURNS, **SWEEP_OPTS}, rounds=1, iterations=1,
    )
    publish("figure3", render_figure(
        panels, "Figure 3: lock-free counter, average cycles per update"))
    publish_json("figure3", {"panels": [
        {"label": p.label, "bars": [[label, value] for label, value in p.bars]}
        for p in panels
    ]})

    by_label = {panel.label: panel for panel in panels}
    top_c = max(p.spec.contention for p in panels)
    contended = by_label[f"c={top_c}"]
    a1 = by_label["c=1 a=1"]
    a2 = by_label["c=1 a=2"]
    a10 = by_label["c=1 a=10"]

    # UNC fetch_and_add is the clear winner under contention (§4.3.2).
    unc_faa = contended.value("FAP/UNC")
    for label, value in contended.bars:
        if label != "FAP/UNC":
            assert unc_faa < value, (label, value)

    # UNC stays competitive with cached implementations up to write runs
    # of about 2 (§4.3.1)...
    assert a2.value("FAP/UNC") < 1.25 * a2.value("FAP/INV")
    # ... but INV wins clearly for long write runs.
    assert a10.value("FAP/INV") < 0.5 * a10.value("FAP/UNC")

    # load_exclusive helps INV compare_and_swap everywhere (§4.3.2).
    assert a1.value("CAS+lx/INV") < a1.value("CAS/INV")
    assert contended.value("CAS+lx/INV") < contended.value("CAS/INV")

    # INVd/INVs are almost always equal to or worse than CAS+lx (§4.3.2).
    assert contended.value("CAS/INVd") >= contended.value("CAS+lx/INV")
    assert contended.value("CAS/INVs") >= contended.value("CAS+lx/INV")

    # A simulated fetch_and_add (CAS or LL/SC loop) pays roughly an extra
    # miss over the native primitive in the uncontended case (§2.2).
    assert a1.value("LLSC/INV") > 1.2 * a1.value("FAP/INV")

    # drop_copy helps INV fetch_and_phi at write-run 1, and stops helping
    # as runs lengthen (§4.3.2).
    assert a1.value("FAP/INV+dc") < a1.value("FAP/INV")
    assert a10.value("FAP/INV+dc") > a10.value("FAP/INV")

    # drop_copy helps UPD when many sharers would otherwise be updated.
    assert contended.value("FAP/UPD+dc") < contended.value("FAP/UPD")
