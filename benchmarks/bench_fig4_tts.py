"""Figure 4: counter under a test-and-test-and-set lock with backoff."""

from repro.harness.figures import render_figure, run_figure4

from .conftest import BENCH_TURNS, SWEEP_OPTS, publish, publish_json


def test_figure4(benchmark, bench_config):
    panels = benchmark.pedantic(
        run_figure4, args=(bench_config,),
        kwargs={"turns": BENCH_TURNS, **SWEEP_OPTS}, rounds=1, iterations=1,
    )
    publish("figure4", render_figure(
        panels, "Figure 4: TTS-lock counter, average cycles per update"))
    publish_json("figure4", {"panels": [
        {"label": p.label, "bars": [[label, value] for label, value in p.bars]}
        for p in panels
    ]})

    by_label = {panel.label: panel for panel in panels}
    top_c = max(p.spec.contention for p in panels)
    contended = by_label[f"c={top_c}"]
    a1 = by_label["c=1 a=1"]
    a10 = by_label["c=1 a=10"]

    # Under high contention with the TTS lock, UPD beats INV: on a
    # release every waiter re-reads, and only successful writes cause
    # updates (§4.3.1).
    assert contended.value("FAP/UPD") < contended.value("FAP/INV")
    assert contended.value("CAS/UPD") < contended.value("CAS/INV")

    # Long write runs (repeated acquire/release without interference)
    # favour INV caching.
    assert a10.value("FAP/INV") < a10.value("FAP/UNC")
    assert a10.value("FAP/INV") < a10.value("FAP/UPD")

    # load_exclusive keeps helping compare_and_swap.
    assert a1.value("CAS+lx/INV") <= a1.value("CAS/INV") * 1.05

    # UPD compare_and_swap beats UPD LL/SC: the lock's test read is a hit
    # under UPD, while load_linked must always travel to memory (§4.3.2).
    for panel in panels:
        assert panel.value("CAS/UPD") < panel.value("LLSC/UPD") * 1.05, (
            panel.label)
