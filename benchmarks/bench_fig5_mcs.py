"""Figure 5: counter under an MCS queue lock.

The case where load_linked/store_conditional *simulates*
compare_and_swap (and fetch_and_store): the paper expects the simulation
to cost roughly an extra miss per operation relative to native CAS.
"""

from repro.harness.figures import render_figure, run_figure5

from .conftest import BENCH_TURNS, SWEEP_OPTS, publish, publish_json


def test_figure5(benchmark, bench_config):
    panels = benchmark.pedantic(
        run_figure5, args=(bench_config,),
        kwargs={"turns": BENCH_TURNS, **SWEEP_OPTS}, rounds=1, iterations=1,
    )
    publish("figure5", render_figure(
        panels, "Figure 5: MCS-lock counter, average cycles per update"))
    publish_json("figure5", {"panels": [
        {"label": p.label, "bars": [[label, value] for label, value in p.bars]}
        for p in panels
    ]})

    by_label = {panel.label: panel for panel in panels}
    a1 = by_label["c=1 a=1"]
    a10 = by_label["c=1 a=10"]

    # Simulating the MCS lock's atomics with LL/SC costs more than native
    # fetch_and_store + compare_and_swap (§2.2, §4.3.2).
    assert a1.value("LLSC/INV") > a1.value("CAS/INV")
    assert a1.value("LLSC/UPD") > a1.value("CAS/UPD")
    assert a1.value("LLSC/UNC") > a1.value("CAS/UNC")

    # Under UPD, compare_and_swap always beats LL/SC (load_linked must
    # travel to memory even when the tail is cached).
    for panel in panels:
        assert panel.value("CAS/UPD") < panel.value("LLSC/UPD") * 1.1, (
            panel.label)

    # Queue-lock handoff stays bounded under contention: the MCS lock's
    # point is local spinning.  Average cost at c=max must stay within a
    # small factor of the uncontended handoff.
    top_c = max(p.spec.contention for p in panels)
    contended = by_label[f"c={top_c}"]
    assert contended.value("CAS/INV") < 25 * a1.value("CAS/INV")

    # INV benefits from long write runs as usual.
    assert a10.value("CAS/INV") < a1.value("CAS/INV")
