"""Figure 6: total elapsed time of the real applications, all variants."""

from repro.harness.figure6 import render_figure6, run_figure6

from .conftest import SWEEP_OPTS, publish, publish_json


def test_figure6(benchmark, bench_config):
    result = benchmark.pedantic(
        run_figure6, args=(bench_config,),
        kwargs={"tclosure_size": 24, **SWEEP_OPTS}, rounds=1, iterations=1,
    )
    publish("figure6", render_figure6(result))
    publish_json("figure6", {"apps": {
        app: [[label, cycles] for label, cycles in bars]
        for app, bars in result.apps.items()
    }})

    # Every app ran under every variant and took nonzero time.
    assert set(result.apps) == {"locusroute", "cholesky", "tclosure"}
    for app, bars in result.apps.items():
        assert len(bars) == 21, app
        assert all(cycles > 0 for _, cycles in bars), app

    # Transitive Closure is dominated by its contended lock-free counter:
    # uncached fetch_and_add beats the cached INV implementation, as in
    # the paper's Figure 6 (UNC FAP is among the best bars).
    assert (result.cycles("tclosure", "FAP/UNC")
            < result.cycles("tclosure", "FAP/INV"))
    # Simulated fetch_and_add (LL/SC) never beats the native one there.
    assert (result.cycles("tclosure", "FAP/UNC")
            < result.cycles("tclosure", "LLSC/UNC"))

    # The lock applications are compute-dominated: no primitive choice
    # may change total time by more than ~2x (the paper's bars for
    # LocusRoute/Cholesky are all within a small band).
    for app in ("locusroute", "cholesky"):
        times = [cycles for _, cycles in result.apps[app]]
        assert max(times) < 2.0 * min(times), (app, min(times), max(times))
