"""Table 1: serialized network messages for stores (exact reproduction)."""

from repro.harness.report import render_table
from repro.harness.table1 import TABLE1_EXPECTED, run_table1

from .conftest import SWEEP_OPTS, publish, publish_json


def test_table1(benchmark):
    measured = benchmark.pedantic(run_table1, kwargs=dict(SWEEP_OPTS),
                                  rounds=1, iterations=1)

    rows = [
        [label, TABLE1_EXPECTED[label], measured[label]]
        for label in TABLE1_EXPECTED
    ]
    publish(
        "table1",
        render_table(
            ["store target", "paper", "measured"],
            rows,
            title="Table 1: serialized network messages per store",
        ),
    )
    publish_json("table1", {
        "expected": dict(TABLE1_EXPECTED),
        "measured": measured,
        "match": measured == TABLE1_EXPECTED,
    })
    assert measured == TABLE1_EXPECTED
