"""Shared configuration for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures on the
paper's machine (64 nodes by default), prints it, and writes the rendered
text to ``benchmarks/results/``.  Scale knobs are environment variables so
CI or laptops can shrink the runs:

* ``REPRO_BENCH_NODES``  — machine size (default 64, the paper's).
* ``REPRO_BENCH_TURNS``  — synthetic-app turns per panel (default 6).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro import SimConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_NODES = int(os.environ.get("REPRO_BENCH_NODES", "64"))
BENCH_TURNS = int(os.environ.get("REPRO_BENCH_TURNS", "6"))


@pytest.fixture(scope="session")
def bench_config() -> SimConfig:
    """The paper's machine (or a scaled-down one via env vars)."""
    return SimConfig().with_nodes(BENCH_NODES)


def publish(name: str, text: str) -> None:
    """Print a rendered table/figure and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
