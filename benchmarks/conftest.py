"""Shared configuration for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures on the
paper's machine (64 nodes by default), prints it, and writes the rendered
text to ``benchmarks/results/`` plus a machine-readable ``repro.run/1``
JSON document next to it (the ``BENCH_*.json`` perf trajectory; see
``docs/observability.md``).  Scale knobs are environment variables so
CI or laptops can shrink the runs:

* ``REPRO_BENCH_NODES``  — machine size (default 64, the paper's).
* ``REPRO_BENCH_TURNS``  — synthetic-app turns per panel (default 6).
* ``REPRO_BENCH_JSON``   — directory for the JSON documents
  (default ``benchmarks/results/``).
* ``REPRO_BENCH_JOBS``   — worker processes per sweep (default 1:
  serial; results are identical at any setting).
* ``REPRO_BENCH_CACHE``  — directory for the content-addressed result
  cache (default: disabled, so benchmarks measure real simulations).
"""

from __future__ import annotations

import os
import pathlib
from typing import Any, Mapping, Optional

import pytest

from repro import SimConfig
from repro.harness.parallel import ResultCache
from repro.obs.schema import dump_run, make_run_payload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_NODES = int(os.environ.get("REPRO_BENCH_NODES", "64"))
BENCH_TURNS = int(os.environ.get("REPRO_BENCH_TURNS", "6"))
JSON_DIR = pathlib.Path(os.environ.get("REPRO_BENCH_JSON", RESULTS_DIR))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
_BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE", "")

SWEEP_OPTS: dict[str, Any] = {"jobs": BENCH_JOBS}
if _BENCH_CACHE:
    SWEEP_OPTS["cache"] = ResultCache(_BENCH_CACHE)


@pytest.fixture(scope="session")
def bench_config() -> SimConfig:
    """The paper's machine (or a scaled-down one via env vars)."""
    return SimConfig().with_nodes(BENCH_NODES)


def publish(name: str, text: str) -> None:
    """Print a rendered table/figure and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def publish_json(
    name: str,
    results: Mapping[str, Any],
    params: Optional[Mapping[str, Any]] = None,
) -> None:
    """Persist one benchmark's results as schema-stable JSON.

    Writes ``<JSON_DIR>/<name>.json`` in the ``repro.run/1`` envelope so
    successive runs form a comparable trajectory.
    """
    payload = make_run_payload(
        name,
        params=dict(params) if params is not None
        else {"nodes": BENCH_NODES, "turns": BENCH_TURNS},
        results=results,
    )
    JSON_DIR.mkdir(parents=True, exist_ok=True)
    dump_run(payload, JSON_DIR / f"{name}.json")
