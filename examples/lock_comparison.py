#!/usr/bin/env python3
"""Compare lock algorithms and primitive implementations under load.

Reproduces the flavour of the paper's Figures 4 and 5 in one script: a
shared counter protected by a test-and-test-and-set lock (with bounded
exponential backoff) or an MCS queue lock, with the lock's atomic
operations implemented by each primitive family and coherence policy.

Run:  python examples/lock_comparison.py
"""

from repro import SimConfig, SyncPolicy, build_machine
from repro.sync import McsLock, PrimitiveVariant, TtsLock

NODES = 16
ITERS = 6

VARIANTS = [
    PrimitiveVariant("fap", SyncPolicy.INV),
    PrimitiveVariant("cas", SyncPolicy.INV),
    PrimitiveVariant("cas", SyncPolicy.INV, use_lx=True),
    PrimitiveVariant("llsc", SyncPolicy.INV),
    PrimitiveVariant("fap", SyncPolicy.UPD),
    PrimitiveVariant("fap", SyncPolicy.UNC),
]


def run_lock(lock_kind: str, variant: PrimitiveVariant) -> float:
    """Run all processors hammering one lock; return cycles per acquire."""
    machine = build_machine(SimConfig().with_nodes(NODES))
    if lock_kind == "tts":
        lock = TtsLock(machine, variant, home=0)
    else:
        lock = McsLock(machine, variant, home=0)
    counter = machine.alloc_data(1)

    def program(p):
        for _ in range(ITERS):
            yield from lock.acquire(p)
            value = yield p.load(counter)
            yield p.store(counter, value + 1)
            yield from lock.release(p)
            yield p.think(p.rng.randrange(100))

    machine.spawn_all(program)
    machine.run()
    acquires = NODES * ITERS
    assert machine.read_word(counter) == acquires
    return machine.now / acquires


def main() -> None:
    print(f"Cycles per lock acquire/release ({NODES} processors, "
          f"all contending):\n")
    print(f"{'variant':16s} {'TTS lock':>10s} {'MCS lock':>10s}")
    for variant in VARIANTS:
        if variant.family == "llsc":
            note = "  (LL/SC simulates CAS & swap in MCS)"
        elif variant.use_lx:
            note = "  (paper's recommendation)"
        else:
            note = ""
        tts = run_lock("tts", variant)
        mcs = run_lock("mcs", variant)
        print(f"{variant.label:16s} {tts:10.0f} {mcs:10.0f}{note}")

    print(
        "\nNote how the MCS queue lock's cost stays flat across variants\n"
        "(each waiter spins on a flag in its own local memory), while the\n"
        "TTS lock's cost tracks the coherence policy of the lock variable."
    )


if __name__ == "__main__":
    main()
