#!/usr/bin/env python3
"""Lock-free objects on the simulated multiprocessor.

Runs the Treiber stack and the Michael & Scott FIFO queue under
concurrent producers and consumers, records full operation histories,
and validates them with the library's checkers — demonstrating the
lock-free programming the paper's universal primitives exist for.

Run:  python examples/lockfree_structures.py
"""

from repro import SimConfig, SyncPolicy, build_machine
from repro.sync import EMPTY, LockFreeQueue, PrimitiveVariant, TreiberStack
from repro.verify import (
    History,
    check_queue_history,
    check_stack_history,
)

NODES = 16
ITEMS_PER_PRODUCER = 8


def run_structure(kind: str, family: str) -> tuple[int, int]:
    """Run producers/consumers against one structure; verify; report."""
    machine = build_machine(SimConfig().with_nodes(NODES))
    variant = PrimitiveVariant(family, SyncPolicy.INV)
    if kind == "stack":
        structure = TreiberStack(machine, variant, capacity=512)
        insert, remove, ins_op, rem_op = (
            structure.push, structure.pop, "push", "pop")
    else:
        structure = LockFreeQueue(machine, variant, capacity=512)
        insert, remove, ins_op, rem_op = (
            structure.enqueue, structure.dequeue, "enq", "deq")
    history = History(machine)
    producers = NODES // 2

    def producer(p):
        for i in range(ITEMS_PER_PRODUCER):
            item = p.pid * 1000 + i
            yield from history.wrap(p, ins_op, item, insert(p, item))
            yield p.think(p.rng.randrange(50))

    def consumer(p):
        taken = 0
        while taken < ITEMS_PER_PRODUCER:
            value = yield from history.wrap(p, rem_op, None, remove(p))
            if value is EMPTY:
                yield p.think(25)
            else:
                taken += 1

    for pid in range(producers):
        machine.spawn(pid, producer)
    for pid in range(producers, NODES):
        machine.spawn(pid, consumer)
    machine.run(max_events=50_000_000)

    if kind == "stack":
        check_stack_history(history)
    else:
        check_queue_history(history)
    return machine.now, len(history)


def main() -> None:
    print(f"{NODES} processors: {NODES // 2} producers, "
          f"{NODES // 2} consumers, "
          f"{ITEMS_PER_PRODUCER} items each.\n")
    print(f"{'structure':22s} {'cycles':>9s} {'operations':>11s}")
    for kind in ("stack", "queue"):
        for family in ("cas", "llsc"):
            cycles, ops = run_structure(kind, family)
            name = f"{kind} ({family.upper()})"
            print(f"{name:22s} {cycles:9d} {ops:11d}")
    print(
        "\nEvery history passed the conservation and ordering checkers:\n"
        "no element was lost, duplicated, or reordered within a producer."
    )


if __name__ == "__main__":
    main()
