#!/usr/bin/env python3
"""Quickstart: build a machine, run a program, read the statistics.

Builds a 16-node DSM multiprocessor, runs a shared fetch_and_add counter
under each coherence policy, and prints the cost per update — a
miniature of the paper's core experiment.

Run:  python examples/quickstart.py
"""

from repro import SimConfig, SyncPolicy, build_machine


def counter_program(p, counter, iterations):
    """Each processor atomically increments the shared counter."""
    for _ in range(iterations):
        yield p.fetch_add(counter, 1)
        yield p.think(50)  # some local work between updates


def main() -> None:
    iterations = 16
    print(f"{'policy':8s} {'cycles':>10s} {'cycles/update':>14s} "
          f"{'network msgs':>13s}")
    for policy in (SyncPolicy.INV, SyncPolicy.UPD, SyncPolicy.UNC):
        machine = build_machine(SimConfig().with_nodes(16))

        # A synchronization variable: one cache block, homed at node 0,
        # kept coherent under the chosen policy.
        counter = machine.alloc_sync(policy, home=0)

        machine.spawn_all(counter_program, counter, iterations)
        machine.run()

        expected = machine.n_nodes * iterations
        got = machine.read_word(counter)
        assert got == expected, f"lost updates: {got} != {expected}"

        updates = machine.n_nodes * iterations
        print(f"{policy.value:8s} {machine.now:10d} "
              f"{machine.now / updates:14.1f} "
              f"{machine.mesh.stats.messages:13d}")

    print("\nAll updates accounted for under every policy.")


if __name__ == "__main__":
    main()
