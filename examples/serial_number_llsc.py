#!/usr/bin/env python3
"""The paper's preferred LL/SC design: write serial numbers (§3.1).

Demonstrates three things on the simulated machine:

1. The ABA (pointer) problem: a value-based compare_and_swap cannot see
   that a word was overwritten with the same value, but a
   store_conditional with a serial number fails correctly.
2. A *bare* store_conditional: a processor that knows the expected
   serial number can attempt the store without a preceding load_linked —
   the optimization the paper points out for the MCS lock release.
3. A lock-free stack whose pop is ABA-proof under serial-number LL/SC.

Run:  python examples/serial_number_llsc.py
"""

from repro import SimConfig, SyncPolicy, build_machine


def build():
    config = SimConfig(reservation_strategy="serial").with_nodes(8)
    return build_machine(config)


def demo_aba() -> None:
    print("1. ABA immunity")
    machine = build()
    top = machine.alloc_sync(SyncPolicy.UNC, home=0)
    machine.write_word(top, 7)
    outcome = {}

    def victim(p):
        linked = yield p.ll(top)          # reads 7, serial 0
        yield p.barrier(0, 2)             # interferer runs A -> B -> A
        yield p.barrier(1, 2)
        ok = yield p.sc(top, 99, linked.token)
        outcome["cas_would_succeed"] = True   # value still 7!
        outcome["sc_succeeded"] = bool(ok)

    def interferer(p):
        yield p.barrier(0, 2)
        yield p.store(top, 8)             # A -> B
        yield p.store(top, 7)             # B -> A  (same value again)
        yield p.barrier(1, 2)

    machine.spawn(0, victim)
    machine.spawn(4, interferer)
    machine.run()
    print("   value is back to 7, a CAS(7->99) would wrongly succeed;")
    print(f"   serial-number SC correctly failed: "
          f"{not outcome['sc_succeeded']}\n")
    assert not outcome["sc_succeeded"]


def demo_bare_sc() -> None:
    print("2. Bare store_conditional (no load_linked)")
    machine = build()
    word = machine.alloc_sync(SyncPolicy.UNC, home=0)
    outcome = {}

    def writer(p):
        # The processor knows the word is untouched (serial 0).
        ok = yield p.sc(word, 42, token=0)
        outcome["first"] = bool(ok)
        # A second bare SC with the stale serial must fail.
        ok = yield p.sc(word, 43, token=0)
        outcome["second"] = bool(ok)

    machine.spawn(0, writer)
    machine.run()
    print(f"   first bare SC (fresh serial):  {outcome['first']}")
    print(f"   second bare SC (stale serial): {outcome['second']}\n")
    assert outcome["first"] and not outcome["second"]


def demo_stack() -> None:
    print("3. Lock-free stack with serial-number LL/SC")
    machine = build()
    top = machine.alloc_sync(SyncPolicy.UNC, home=0)
    # next[] pointers as ordinary shared data; node 0 means empty.
    nexts = machine.alloc_data(64)
    word = machine.config.machine.word_size
    popped = []

    def pusher(p, values):
        for value in values:
            while True:
                linked = yield p.ll(top)
                yield p.store(nexts + value * word, linked.value)
                ok = yield p.sc(top, value, linked.token)
                if ok:
                    break

    def popper(p, count):
        got = []
        while len(got) < count:
            linked = yield p.ll(top)
            if linked.value == 0:
                yield p.think(20)
                continue
            succ = yield p.load(nexts + linked.value * word)
            ok = yield p.sc(top, succ, linked.token)
            if ok:
                got.append(linked.value)
        popped.extend(got)

    machine.spawn(0, pusher, [1, 2, 3])
    machine.spawn(1, pusher, [4, 5, 6])
    machine.spawn(2, popper, 3)
    machine.spawn(3, popper, 3)
    machine.run(max_events=5_000_000)
    print("   pushed 1..6 from two processors, popped from two others:")
    print(f"   popped = {sorted(popped)}\n")
    assert sorted(popped) == [1, 2, 3, 4, 5, 6]


def main() -> None:
    demo_aba()
    demo_bare_sc()
    demo_stack()
    print("All serial-number LL/SC demonstrations passed.")


if __name__ == "__main__":
    main()
