#!/usr/bin/env python3
"""Run the paper's Transitive Closure application (Figure 1).

Computes the reachability closure of a random directed graph on the
simulated multiprocessor, distributing row chunks through a lock-free
counter, and compares fetch_and_add against its compare_and_swap and
LL/SC simulations — the experiment behind the paper's high-contention
findings.

Run:  python examples/transitive_closure.py
"""

from repro import SimConfig, SyncPolicy
from repro.apps import run_transitive_closure
from repro.sync import PrimitiveVariant

VARIANTS = [
    PrimitiveVariant("fap", SyncPolicy.UNC),
    PrimitiveVariant("fap", SyncPolicy.INV),
    PrimitiveVariant("cas", SyncPolicy.INV, use_lx=True),
    PrimitiveVariant("llsc", SyncPolicy.INV),
    PrimitiveVariant("fap", SyncPolicy.UPD),
]


def main() -> None:
    config = SimConfig().with_nodes(16)
    size = 24

    print(f"Transitive closure of a {size}-vertex graph on 16 processors.")
    print("The parallel result is checked against sequential "
          "Floyd-Warshall.\n")
    print(f"{'counter variant':18s} {'total cycles':>12s} "
          f"{'mean contention':>16s} {'write-run':>10s}")

    for variant in VARIANTS:
        result = run_transitive_closure(variant, size=size, config=config)
        print(f"{variant.label:18s} {result.cycles:12d} "
              f"{result.extra['mean_contention']:16.2f} "
              f"{result.write_run:10.2f}")

    print(
        "\nEvery processor hits the chunk counter right after each"
        "\nbarrier, so contention is high — the regime where the paper"
        "\nfinds uncached fetch_and_add most valuable."
    )


if __name__ == "__main__":
    main()
