"""Setuptools shim for environments without PEP 517 wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Michael & Scott (HPCA '95): atomic primitives on "
        "DSM multiprocessors"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
