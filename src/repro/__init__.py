"""repro — a reproduction of Michael & Scott (HPCA 1995).

*Implementation of Atomic Primitives on Distributed Shared Memory
Multiprocessors.*

The package provides a cycle-level simulator of a 64-node directory-based
DSM multiprocessor (queued memory, 2-D wormhole mesh) together with every
atomic-primitive implementation the paper evaluates — fetch_and_phi,
compare_and_swap (INV / INVd / INVs / UPD / UNC), and
load_linked / store_conditional — plus the auxiliary ``load_exclusive``
and ``drop_copy`` instructions, a synchronization-algorithm library, the
paper's applications, and a harness regenerating each of its tables and
figures.

Quickstart::

    from repro import build_machine, SimConfig, SyncPolicy

    machine = build_machine(SimConfig().with_nodes(16))
    counter = machine.alloc_sync(SyncPolicy.INV, home=0)

    def program(p, counter):
        for _ in range(8):
            yield p.fetch_add(counter, 1)

    machine.spawn_all(program, counter)
    machine.run()
    assert machine.read_word(counter) == 16 * 8
"""

from .config import SimConfig, MachineConfig, TimingConfig, small_config
from .coherence.policy import SyncPolicy
from .machine.machine import Machine, build_machine
from .primitives.ops import CasResult, LLValue
from .primitives.semantics import PhiOp, apply_phi
from .processor.api import Proc
from .errors import (
    ReproError,
    ConfigError,
    SimulationError,
    ProtocolError,
    AddressError,
    DeadlockError,
    ProgramError,
)

__version__ = "1.0.0"

__all__ = [
    "SimConfig",
    "MachineConfig",
    "TimingConfig",
    "small_config",
    "SyncPolicy",
    "Machine",
    "build_machine",
    "CasResult",
    "LLValue",
    "PhiOp",
    "apply_phi",
    "Proc",
    "ReproError",
    "ConfigError",
    "SimulationError",
    "ProtocolError",
    "AddressError",
    "DeadlockError",
    "ProgramError",
    "__version__",
]
