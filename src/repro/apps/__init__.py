"""Applications: the paper's synthetic and real workloads."""

from .common import AppResult
from .synthetic import (
    SyntheticSpec,
    run_lockfree_counter,
    run_tts_counter,
    run_mcs_counter,
)
from .tclosure import run_transitive_closure
from .locusroute import run_locusroute
from .cholesky import run_cholesky

__all__ = [
    "AppResult",
    "SyntheticSpec",
    "run_lockfree_counter",
    "run_tts_counter",
    "run_mcs_counter",
    "run_transitive_closure",
    "run_locusroute",
    "run_cholesky",
]
