"""A Cholesky-like sparse-factorization kernel.

SPLASH Cholesky factors a sparse matrix with dynamically scheduled
supernodal tasks: workers take columns from a central queue and scatter
updates into later columns, each column guarded by a lock.  As with
LocusRoute, the paper uses it (TTS locks substituted in) to characterize a
sharing pattern: uncontended accesses dominate, write runs average about
1.6.

This kernel keeps the synchronization skeleton — a lock-protected task
queue whose tasks update a banded set of successor columns under
per-column locks, with supernode-sized compute between acquisitions — and
drops the numerics.  See DESIGN.md §4.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..config import SimConfig
from ..machine.machine import Machine, build_machine
from ..sync.tts_lock import TtsLock
from ..sync.variant import PrimitiveVariant
from .common import AppResult

__all__ = ["run_cholesky"]


def run_cholesky(
    variant: PrimitiveVariant,
    n_columns: int | None = None,
    bandwidth: int = 5,
    n_locks: int = 24,
    factor_work: int | None = None,
    seed: int = 23,
    config: SimConfig | None = None,
    observe: Optional[Callable[[Machine], None]] = None,
) -> AppResult:
    """Run the factorization kernel; return measurements.

    Each of ``n_columns`` tasks updates up to ``bandwidth`` successor
    columns; column ``c`` is guarded by lock ``c % n_locks``.  Defaults
    scale with the machine (~4.5 columns per processor, supernode work
    proportional to the processor count) to keep the calibrated sharing
    pattern — write runs near 1.6 with occasional contention — at any
    scale.

    ``observe``, if given, is called with the freshly built machine before
    any program runs — attach :mod:`repro.obs` recorders there.
    """
    machine = build_machine(config)
    if observe is not None:
        observe(machine)
    nprocs = machine.n_nodes
    if n_columns is None:
        n_columns = (9 * nprocs) // 2
    if factor_work is None:
        factor_work = 500 * nprocs
    word = machine.config.machine.word_size

    queue_lock = TtsLock(machine, variant, home=0)
    next_col = machine.alloc_data(1)
    col_locks = [
        TtsLock(machine, variant, home=i % nprocs) for i in range(n_locks)
    ]
    col_data = [machine.alloc_node_block(home=i % nprocs)
                for i in range(n_locks)]

    work_rng = random.Random(seed)
    col_plan = []
    for col in range(n_columns):
        n_updates = 1 + work_rng.randrange(bandwidth)
        targets = sorted(
            {(col + 1 + work_rng.randrange(bandwidth * 2)) % n_columns
             for _ in range(n_updates)}
        )
        col_plan.append((targets, factor_work // 2
                         + work_rng.randrange(factor_work)))

    def scatter_update(p, column: int):
        lock = col_locks[column % n_locks]
        data = col_data[column % n_locks]
        yield from lock.acquire(p)
        for w in range(3):
            value = yield p.load(data + w * word)
            yield p.think(60)   # scatter arithmetic inside the section
            yield p.store(data + w * word, value + 1)
        yield from lock.release(p)

    def program(p):
        # Stagger startup: real processes never hit the queue lock in
        # perfect lockstep at t=0.
        yield p.think(p.pid * 131)
        while True:
            yield from queue_lock.acquire(p)
            col = yield p.load(next_col)
            yield p.store(next_col, col + 1)
            yield from queue_lock.release(p)
            if col >= n_columns:
                return
            targets, work = col_plan[col]
            yield p.think(work)
            for target in targets:
                yield from scatter_update(p, target)
                yield p.think(work // (2 * len(targets)) + 1)

    machine.spawn_all(program)
    machine.run()

    stats = machine.stats
    lock_addrs = [queue_lock.addr] + [lock.addr for lock in col_locks]
    runs = sum(stats.writerun.run_count(a) for a in lock_addrs)
    length = sum(
        stats.writerun.average(a) * stats.writerun.run_count(a)
        for a in lock_addrs
    )
    return AppResult(
        name="cholesky",
        label=variant.label,
        cycles=machine.now,
        updates=stats.contention.samples,
        contention_histogram=stats.contention.percentages(),
        write_run=length / runs if runs else 0.0,
        extra={"columns": n_columns},
    )
