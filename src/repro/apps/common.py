"""Shared result types for application runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["AppResult"]


@dataclass
class AppResult:
    """Outcome of one application run on one machine configuration.

    Attributes:
        name: Application name.
        label: Primitive-variant label (one bar of a figure).
        cycles: Total elapsed simulation cycles.
        updates: Number of counter updates / lock acquisitions performed.
        contention_histogram: Contention-level → percentage of accesses.
        write_run: Average write-run length of the sync variable(s).
        extra: Application-specific data (final values, check results).
    """

    name: str
    label: str
    cycles: int
    updates: int
    contention_histogram: dict[int, float] = field(default_factory=dict)
    write_run: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def avg_cycles(self) -> float:
        """Average elapsed cycles per update."""
        return self.cycles / self.updates if self.updates else 0.0
