"""A LocusRoute-like routing kernel.

SPLASH LocusRoute routes wires across a cost grid under dynamic
scheduling: workers repeatedly take a wire from a central pool and update
the grid regions the wire crosses, each region guarded by a lock.  The
paper uses LocusRoute (with its library locks replaced by TTS locks built
from the primitives under study) to extract a *sharing pattern*: mostly
uncontended lock accesses with an average write-run of about 1.7–1.8.

This kernel reproduces that synchronization structure — a lock-protected
central work pool plus per-region locks around short critical sections,
with deterministic pseudo-random routing work between them — without the
(synchronization-irrelevant) geometry of the original.  See DESIGN.md §4
for the substitution rationale.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..config import SimConfig
from ..machine.machine import Machine, build_machine
from ..sync.tts_lock import TtsLock
from ..sync.variant import PrimitiveVariant
from .common import AppResult

__all__ = ["run_locusroute"]


def run_locusroute(
    variant: PrimitiveVariant,
    n_wires: int | None = None,
    n_regions: int = 16,
    route_work: int | None = None,
    seed: int = 11,
    config: SimConfig | None = None,
    observe: Optional[Callable[[Machine], None]] = None,
) -> AppResult:
    """Run the routing kernel; return measurements.

    ``n_wires`` tasks are distributed dynamically; each evaluates a route
    (``route_work`` think cycles, jittered deterministically per wire) and
    updates 1–2 of ``n_regions`` cost-grid regions under per-region locks.

    Defaults scale with the machine — 6 wires per processor and routing
    work proportional to the processor count — so the sharing pattern the
    paper measured (mostly uncontended locks, write runs near 1.7–1.8)
    holds at any scale: a saturated work-pool lock is a property of too
    fine a task grain, not of the application.

    ``observe``, if given, is called with the freshly built machine before
    any program runs — attach :mod:`repro.obs` recorders there.
    """
    machine = build_machine(config)
    if observe is not None:
        observe(machine)
    nprocs = machine.n_nodes
    if n_wires is None:
        n_wires = 6 * nprocs
    if route_work is None:
        route_work = 1500 * nprocs
    word = machine.config.machine.word_size

    pool_lock = TtsLock(machine, variant, home=0)
    next_wire = machine.alloc_data(1)
    region_locks = [
        TtsLock(machine, variant, home=i % nprocs) for i in range(n_regions)
    ]
    # Four cost words per region, in the region lock's home memory.
    cost_base = [machine.alloc_node_block(home=i % nprocs)
                 for i in range(n_regions)]

    # Deterministic per-wire routing decisions, identical across variants.
    wire_rng = random.Random(seed)
    wire_plan = []
    for _ in range(n_wires):
        first = wire_rng.randrange(n_regions)
        crosses_two = wire_rng.random() < 0.5
        second = wire_rng.randrange(n_regions) if crosses_two else None
        jitter = wire_rng.randrange(route_work)
        wire_plan.append((first, second, route_work // 2 + jitter))

    def update_region(p, region: int):
        lock = region_locks[region]
        yield from lock.acquire(p)
        for w in range(4):
            addr = cost_base[region] + w * word
            value = yield p.load(addr)
            yield p.store(addr, value + 1)
        yield from lock.release(p)

    def program(p):
        # Processes never start in lockstep on a real machine; a small
        # deterministic stagger avoids an artificial t=0 thundering herd
        # on the pool lock.
        yield p.think(p.pid * 97)
        while True:
            yield from pool_lock.acquire(p)
            wire = yield p.load(next_wire)
            yield p.store(next_wire, wire + 1)
            yield from pool_lock.release(p)
            if wire >= n_wires:
                return
            first, second, work = wire_plan[wire]
            yield p.think(work)
            yield from update_region(p, first)
            if second is not None:
                yield p.think(work // 3)
                yield from update_region(p, second)

    machine.spawn_all(program)
    machine.run()

    stats = machine.stats
    lock_addrs = [pool_lock.addr] + [lock.addr for lock in region_locks]
    runs = sum(stats.writerun.run_count(a) for a in lock_addrs)
    length = sum(
        stats.writerun.average(a) * stats.writerun.run_count(a)
        for a in lock_addrs
    )
    return AppResult(
        name="locusroute",
        label=variant.label,
        cycles=machine.now,
        updates=stats.contention.samples,
        contention_histogram=stats.contention.percentages(),
        write_run=length / runs if runs else 0.0,
        extra={
            "wires": n_wires,
            "cost_total": sum(
                machine.read_word(cost_base[r] + w * word)
                for r in range(n_regions)
                for w in range(4)
            ),
        },
    )
