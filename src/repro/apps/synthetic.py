"""The three synthetic applications (paper §4.1, Figures 3–5).

Each processor runs a tight loop; constant-time (magic) barriers shape the
sharing pattern without adding measurable cost:

* **contention** ``c`` — in every turn, processors ``0..c-1`` update the
  shared counter concurrently (``c = 1`` is the no-contention case);
* **write-run** ``a`` — with no contention, processors take turns and the
  active processor performs a burst of consecutive updates whose lengths
  average ``a`` (``a = 1.5`` alternates bursts of 1 and 2, as in the
  paper's panels).

The counter update itself is either

* a lock-free update (:func:`run_lockfree_counter`) — fetch_and_add, a
  CAS loop, or an LL/SC loop, per the variant;
* an ordinary increment under a TTS lock (:func:`run_tts_counter`); or
* an ordinary increment under an MCS lock (:func:`run_mcs_counter`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..config import SimConfig
from ..errors import ConfigError
from ..machine.machine import Machine, build_machine
from ..sync.counters import increment
from ..sync.mcs_lock import McsLock
from ..sync.tts_lock import TtsLock
from ..sync.variant import PrimitiveVariant
from .common import AppResult

__all__ = [
    "SyntheticSpec",
    "burst_lengths",
    "run_lockfree_counter",
    "run_tts_counter",
    "run_mcs_counter",
]


@dataclass(frozen=True)
class SyntheticSpec:
    """Sharing-pattern parameters of one synthetic run.

    Attributes:
        contention: ``c`` — processors updating concurrently per turn.
        write_run: ``a`` — average burst length (no-contention case only).
        turns: Number of barrier-separated turns.
        think: Local-work cycles between a processor's consecutive
            updates inside a burst (small, mimics loop overhead).
    """

    contention: int = 1
    write_run: float = 1.0
    turns: int = 32
    think: int = 4

    def validate(self, n_nodes: int) -> None:
        """Check the spec against the machine size."""
        if not 1 <= self.contention <= n_nodes:
            raise ConfigError(
                f"contention {self.contention} outside 1..{n_nodes}"
            )
        if self.contention > 1 and self.write_run != 1.0:
            raise ConfigError(
                "write-run control applies to the no-contention case only"
            )
        if self.write_run < 1.0:
            raise ConfigError("write_run must be >= 1")
        if self.turns < 1:
            raise ConfigError("turns must be >= 1")


def burst_lengths(write_run: float, turns: int) -> list[int]:
    """Burst length per turn, averaging ``write_run`` (Bresenham-style).

    ``write_run = 1.5`` yields 1, 2, 1, 2, ...; integers yield constant
    bursts; other fractions interleave ``floor`` and ``ceil`` bursts so the
    running mean converges on the target.
    """
    lengths: list[int] = []
    acc = 0.0
    for _ in range(turns):
        acc += write_run
        burst = int(acc)
        acc -= burst
        lengths.append(max(1, burst))
    return lengths


def _result(
    machine: Machine,
    name: str,
    variant: PrimitiveVariant,
    sync_addr: int,
    updates: int,
) -> AppResult:
    stats = machine.stats
    return AppResult(
        name=name,
        label=variant.label,
        cycles=machine.now,
        updates=updates,
        contention_histogram=stats.contention.percentages(),
        write_run=stats.writerun.average(sync_addr),
        extra={"counter": machine.read_word(sync_addr)},
    )


# ----------------------------------------------------------------------
# Application 1: lock-free counter.
# ----------------------------------------------------------------------

def run_lockfree_counter(
    variant: PrimitiveVariant,
    spec: SyntheticSpec,
    config: SimConfig | None = None,
    observe: Optional[Callable[[Machine], None]] = None,
) -> AppResult:
    """Run the lock-free counter application; return its measurements.

    ``observe``, if given, is called with the freshly built machine before
    any program runs — attach :mod:`repro.obs` recorders there.
    """
    machine = build_machine(config)
    if observe is not None:
        observe(machine)
    spec.validate(machine.n_nodes)
    counter = machine.alloc_sync(variant.policy, home=0)
    nprocs = machine.n_nodes
    bursts = burst_lengths(spec.write_run, spec.turns)
    updates_total = _plan_updates(spec, nprocs, bursts)

    def program(p):
        for turn in range(spec.turns):
            yield p.barrier(turn, nprocs)
            if not _active(spec, p.pid, turn, nprocs):
                continue
            burst = bursts[turn] if spec.contention == 1 else 1
            for i in range(burst):
                yield from increment(p, counter, variant)
                if i + 1 < burst:
                    yield p.think(spec.think)

    machine.spawn_all(program)
    machine.run()
    result = _result(machine, "lockfree", variant, counter, updates_total)
    _check_counter(result, updates_total)
    return result


# ----------------------------------------------------------------------
# Applications 2 and 3: lock-protected counter.
# ----------------------------------------------------------------------

def run_tts_counter(
    variant: PrimitiveVariant,
    spec: SyntheticSpec,
    config: SimConfig | None = None,
    observe: Optional[Callable[[Machine], None]] = None,
) -> AppResult:
    """Counter protected by a TTS lock with bounded exponential backoff."""
    return _run_locked_counter("tts", variant, spec, config, observe)


def run_mcs_counter(
    variant: PrimitiveVariant,
    spec: SyntheticSpec,
    config: SimConfig | None = None,
    observe: Optional[Callable[[Machine], None]] = None,
) -> AppResult:
    """Counter protected by an MCS queue lock.

    With the ``llsc`` family both of the lock's atomic operations
    (fetch_and_store and compare_and_swap) are LL/SC-simulated — the
    paper's "load_linked/store_conditional simulates compare_and_swap"
    case.
    """
    return _run_locked_counter("mcs", variant, spec, config, observe)


def _run_locked_counter(
    kind: str,
    variant: PrimitiveVariant,
    spec: SyntheticSpec,
    config: SimConfig | None,
    observe: Optional[Callable[[Machine], None]] = None,
) -> AppResult:
    machine = build_machine(config)
    if observe is not None:
        observe(machine)
    spec.validate(machine.n_nodes)
    if kind == "tts":
        lock: TtsLock | McsLock = TtsLock(machine, variant, home=0)
    else:
        lock = McsLock(machine, variant, home=0)
    counter = machine.alloc_data(1)
    nprocs = machine.n_nodes
    bursts = burst_lengths(spec.write_run, spec.turns)
    updates_total = _plan_updates(spec, nprocs, bursts)

    def program(p):
        for turn in range(spec.turns):
            yield p.barrier(turn, nprocs)
            if not _active(spec, p.pid, turn, nprocs):
                continue
            burst = bursts[turn] if spec.contention == 1 else 1
            for i in range(burst):
                yield from lock.acquire(p)
                value = yield p.load(counter)
                yield p.store(counter, value + 1)
                yield from lock.release(p)
                if i + 1 < burst:
                    yield p.think(spec.think)

    machine.spawn_all(program)
    machine.run()
    result = AppResult(
        name=kind,
        label=variant.label,
        cycles=machine.now,
        updates=updates_total,
        contention_histogram=machine.stats.contention.percentages(),
        write_run=machine.stats.writerun.average(lock.addr),
        extra={"counter": machine.read_word(counter)},
    )
    _check_counter(result, updates_total)
    return result


# ----------------------------------------------------------------------
# Helpers.
# ----------------------------------------------------------------------

def _active(spec: SyntheticSpec, pid: int, turn: int, nprocs: int) -> bool:
    if spec.contention == 1:
        return pid == turn % nprocs
    return pid < spec.contention


def _plan_updates(spec: SyntheticSpec, nprocs: int, bursts: list[int]) -> int:
    if spec.contention == 1:
        return sum(bursts)
    return spec.turns * spec.contention


def _check_counter(result: AppResult, expected: int) -> None:
    got = result.extra["counter"]
    if got != expected:
        raise AssertionError(
            f"{result.name}/{result.label}: counter={got}, expected {expected}"
        )
