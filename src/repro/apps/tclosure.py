"""Transitive Closure (paper Figure 1).

Floyd–Warshall-style transitive closure of a directed graph, with
variable-size, input-dependent row chunks distributed among the
processors through a *lock-free counter* — the application the paper uses
to exhibit very high contention (every processor hits the counter right
after each barrier).

The program text follows the paper's Figure 1 line by line, including the
shrinking chunk-size formula ``rows = ((size - row - rows - 1) >> 1) /
procs + 1``.  Barriers are the scalable tree barrier of
:mod:`repro.sync.barrier` (as in the paper); the counter update is the
primitive variant under test via :func:`repro.sync.counters.increment`.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..config import SimConfig
from ..machine.machine import Machine, build_machine
from ..sync.barrier import TreeBarrier
from ..sync.counters import increment
from ..sync.variant import PrimitiveVariant
from .common import AppResult

__all__ = [
    "run_transitive_closure",
    "reference_closure",
    "random_graph",
    "parallel_efficiency",
]


def random_graph(size: int, density: float, seed: int) -> list[list[int]]:
    """A random adjacency matrix with self-loops (as reachability needs)."""
    rng = random.Random(seed)
    return [
        [1 if i == j or rng.random() < density else 0 for j in range(size)]
        for i in range(size)
    ]


def reference_closure(matrix: list[list[int]]) -> list[list[int]]:
    """Sequential Floyd–Warshall closure, for result checking."""
    size = len(matrix)
    closure = [row[:] for row in matrix]
    for i in range(size):
        for j in range(size):
            if closure[j][i] and i != j:
                for k in range(size):
                    if closure[i][k]:
                        closure[j][k] = 1
    return closure


def run_transitive_closure(
    variant: PrimitiveVariant,
    size: int = 24,
    density: float = 0.08,
    seed: int = 7,
    config: SimConfig | None = None,
    check: bool = True,
    observe: Optional[Callable[[Machine], None]] = None,
) -> AppResult:
    """Run Transitive Closure; return measurements (and verify the result).

    ``size`` is the number of graph vertices; the matrix is ``size**2``
    ordinary shared words, block-interleaved across the machine.
    ``observe``, if given, is called with the freshly built machine before
    any program runs — attach :mod:`repro.obs` recorders there.
    """
    machine = build_machine(config)
    if observe is not None:
        observe(machine)
    nprocs = machine.n_nodes
    word = machine.config.machine.word_size

    matrix = random_graph(size, density, seed)
    e_base = machine.alloc_data(size * size)

    def elem(j: int, k: int) -> int:
        return e_base + (j * size + k) * word

    for j in range(size):
        for k in range(size):
            if matrix[j][k]:
                machine.write_word(elem(j, k), 1)

    counter = machine.alloc_sync(variant.policy, home=0)
    flag = machine.alloc_data(1)
    barrier = TreeBarrier(machine)

    def program(p):
        for i in range(size):
            if p.pid == 0:
                yield p.store(counter, 0)
                yield p.store(flag, 0)
            row = 0
            rows = 0
            yield from barrier.wait(p)
            while True:
                flagged = yield p.load(flag)
                if flagged:
                    break
                rows = ((size - row - rows - 1) >> 1) // nprocs + 1
                row = yield from increment(p, counter, variant, amount=rows)
                if row >= size:
                    yield p.store(flag, 1)
                    break
                work = min(rows, size - row)
                for j in range(row, row + work):
                    cur_ji = yield p.load(elem(j, i))
                    if cur_ji and i != j:
                        for k in range(size):
                            pivot_k = yield p.load(elem(i, k))
                            if pivot_k:
                                yield p.store(elem(j, k), 1)
            yield from barrier.wait(p)

    machine.spawn_all(program)
    machine.run()

    if check:
        expected = reference_closure(matrix)
        for j in range(size):
            for k in range(size):
                got = machine.read_word(elem(j, k))
                if got != expected[j][k]:
                    raise AssertionError(
                        f"closure mismatch at ({j},{k}): "
                        f"got {got}, expected {expected[j][k]}"
                    )

    stats = machine.stats
    updates = stats.contention.samples
    return AppResult(
        name="tclosure",
        label=variant.label,
        cycles=machine.now,
        updates=updates,
        contention_histogram=stats.contention.percentages(),
        write_run=stats.writerun.average(counter),
        extra={"size": size, "mean_contention": stats.contention.mean_level()},
    )


def parallel_efficiency(
    variant: PrimitiveVariant,
    size: int = 24,
    density: float = 0.08,
    seed: int = 7,
    config: SimConfig | None = None,
) -> float:
    """Parallel efficiency T(1) / (N * T(N)) of Transitive Closure.

    The paper reports "an acceptable efficiency of 45% on 64 processors"
    for this application; efficiency is limited by the contended counter,
    the barriers, and the shrinking chunk sizes.  The single-processor
    baseline runs the same program on a one-node machine.
    """
    from dataclasses import replace

    if config is None:
        config = SimConfig()
    serial_config = replace(
        config, machine=replace(config.machine, n_nodes=1)
    )
    serial = run_transitive_closure(variant, size=size, density=density,
                                    seed=seed, config=serial_config,
                                    check=False)
    parallel = run_transitive_closure(variant, size=size, density=density,
                                      seed=seed, config=config, check=False)
    n = config.machine.n_nodes
    return serial.cycles / (n * parallel.cycles)
