"""Per-node caches: lines, the set-associative array, and MSHRs."""

from .line import CacheLine, LineState
from .cache import Cache, Eviction
from .mshr import Mshr, Transaction

__all__ = ["CacheLine", "LineState", "Cache", "Eviction", "Mshr", "Transaction"]
