"""The set-associative cache array.

The array only manages placement and replacement; all coherence decisions
live in :mod:`repro.cache.controller`.  Installing a line into a full set
returns the evicted victim so the controller can write it back or notify
the directory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import MachineConfig
from ..obs.registry import MetricsRegistry
from .line import CacheLine, LineState

__all__ = ["Cache", "Eviction", "CacheStats"]


@dataclass
class Eviction:
    """A victim line pushed out by an install."""

    block: int
    state: LineState
    data: list[int]
    dirty: bool


class CacheStats:
    """Hit/miss counters for one cache (registry-backed).

    The counters live in the metrics registry under
    ``<prefix>.hits`` / ``.misses`` / ``.evictions``; the attribute
    spelling (``cache.stats.hits``) remains as property shims.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        prefix: str = "cache",
    ) -> None:
        reg = registry if registry is not None else MetricsRegistry()
        self._hits = reg.counter(f"{prefix}.hits")
        self._misses = reg.counter(f"{prefix}.misses")
        self._evictions = reg.counter(f"{prefix}.evictions")

    @property
    def hits(self) -> int:
        """Lookups that found a valid line."""
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.value = value

    @property
    def misses(self) -> int:
        """Lookups that found nothing."""
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.value = value

    @property
    def evictions(self) -> int:
        """Installs that pushed out a victim line."""
        return self._evictions.value

    @evictions.setter
    def evictions(self, value: int) -> None:
        self._evictions.value = value

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class Cache:
    """Set-associative, LRU-replaced cache of 32-byte blocks."""

    def __init__(
        self,
        config: MachineConfig,
        registry: Optional[MetricsRegistry] = None,
        name: str = "cache",
    ) -> None:
        self.config = config
        self.n_sets = config.cache_sets
        self.assoc = config.cache_assoc
        self._sets: dict[int, dict[int, CacheLine]] = {}
        self._tick = 0
        self.stats = CacheStats(registry, prefix=name)
        # Raw registry counters behind the stats shims (lookup is on the
        # per-operation fast path).
        self._c_hits = self.stats._hits
        self._c_misses = self.stats._misses

    def _set_for(self, block: int) -> dict[int, CacheLine]:
        index = block % self.n_sets
        group = self._sets.get(index)
        if group is None:
            group = {}
            self._sets[index] = group
        return group

    def lookup(self, block: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the valid line for ``block``, or ``None`` on a miss.

        Only touching lookups (processor-initiated accesses) count
        toward the hit/miss statistics; ``touch=False`` peeks from the
        protocol engines do not.
        """
        group = self._sets.get(block % self.n_sets)
        line = group.get(block) if group is not None else None
        if line is None or not line.valid:
            if touch:
                self._c_misses.value += 1
            return None
        if touch:
            self._c_hits.value += 1
            tick = self._tick + 1
            self._tick = tick
            line.last_use = tick
        return line

    def install(
        self,
        block: int,
        state: LineState,
        data: list[int],
        dirty: bool = False,
    ) -> Optional[Eviction]:
        """Place ``block`` in the cache, returning any evicted victim."""
        group = self._set_for(block)
        self._tick += 1
        existing = group.get(block)
        if existing is not None:
            existing.state = state
            existing.data = list(data)
            existing.dirty = dirty
            existing.last_use = self._tick
            return None

        victim = None
        live = [line for line in group.values() if line.valid]
        if len(live) >= self.assoc:
            loser = min(live, key=lambda line: line.last_use)
            victim = Eviction(
                block=loser.block,
                state=loser.state,
                data=list(loser.data),
                dirty=loser.dirty,
            )
            del group[loser.block]
            self.stats.evictions += 1
        # Purge any stale invalid entries for tidiness.
        for stale in [b for b, line in group.items() if not line.valid]:
            del group[stale]

        group[block] = CacheLine(
            block=block,
            state=state,
            data=list(data),
            dirty=dirty,
            last_use=self._tick,
        )
        return victim

    def drop(self, block: int) -> None:
        """Remove ``block`` from the cache without any notification."""
        group = self._set_for(block)
        group.pop(block, None)

    def valid_blocks(self) -> list[int]:
        """All blocks currently cached in a valid state (for tests)."""
        return sorted(
            line.block
            for group in self._sets.values()
            for line in group.values()
            if line.valid
        )
