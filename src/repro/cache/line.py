"""Cache lines and their coherence states."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["LineState", "CacheLine"]


class LineState(enum.Enum):
    """Stable cache-line states of the write-invalidate protocol.

    ``SHARED`` lines are read-only copies; ``EXCLUSIVE`` lines are held by
    exactly one cache, which may write them (the directory knows the
    owner).  Write-update (UPD) blocks only ever use ``SHARED`` in caches,
    since memory stays the owner.
    """

    INVALID = "invalid"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class CacheLine:
    """One cache line: tag, state, data, and bookkeeping bits."""

    block: int
    state: LineState = LineState.INVALID
    data: list[int] = field(default_factory=list)
    dirty: bool = False
    last_use: int = 0

    @property
    def valid(self) -> bool:
        """True unless the line is INVALID."""
        return self.state is not LineState.INVALID

    def read_word(self, offset: int) -> int:
        """Read one word from the line."""
        return self.data[offset]

    def write_word(self, offset: int, value: int) -> None:
        """Write one word and mark the line dirty."""
        self.data[offset] = value
        self.dirty = True

    def invalidate(self) -> None:
        """Drop the line's contents and permissions."""
        self.state = LineState.INVALID
        self.dirty = False
        self.data = []
