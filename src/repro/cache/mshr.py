"""Outstanding-transaction bookkeeping (MSHR) for a cache controller.

Processors in this machine are blocking — each issues at most one memory
operation at a time — so a single transaction slot per cache suffices.
The MSHR also holds remote requests (flushes, downgrades, delegated CAS
comparisons) that arrived for the block while our own transaction on it
was still in flight; they are replayed once the transaction completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional  # noqa: F401 (Optional used in types)

from ..errors import ProtocolError
from ..network.message import Message

__all__ = ["Transaction", "Mshr"]


@dataclass
class Transaction:
    """One in-flight requester-side transaction.

    Attributes:
        op: The processor operation being performed.
        block: Block number the transaction targets.
        callback: Invoked with the operation result on completion.
        reply: The home/owner reply message, once received.
        acks_needed: Invalidation/update acks to await (known on reply).
        acks_got: Acks received so far (may precede the reply).
        chain: Deepest serialized-message chain observed.
        retries: OWNER_NAK retry count (bounded to catch livelock bugs).
        kind: Controller-internal transaction kind (``"load"``, ``"faa"``,
            ``"sync_cas"``, ...), selecting the completion action.
        request_mtype: Message type of the original request, kept so an
            OWNER_NAK can reissue it.
        request_payload: Payload of the original request, for reissue.
        breakdown: Latency attribution for this transaction (a
            :class:`repro.obs.latency.TxnBreakdown`); components credit
            their cycles to it as the transaction flows through them.
    """

    op: Any
    block: int
    callback: Callable[[Any], None]
    reply: Optional[Message] = None
    acks_needed: Optional[int] = None
    acks_got: int = 0
    chain: int = 0
    retries: int = 0
    kind: str = ""
    request_mtype: Any = None
    request_payload: dict = field(default_factory=dict)
    breakdown: Any = None

    def note_chain(self, chain: int) -> None:
        """Track the deepest serialized chain of this transaction."""
        self.chain = max(self.chain, chain)

    @property
    def complete(self) -> bool:
        """True once the reply and all expected acks have arrived."""
        return self.reply is not None and self.acks_got == (self.acks_needed or 0)


class Mshr:
    """Single-slot MSHR plus a deferred-message queue per block."""

    MAX_RETRIES = 1000

    def __init__(self) -> None:
        self.current: Optional[Transaction] = None
        self._deferred: dict[int, list[Message]] = {}

    def begin(self, txn: Transaction) -> None:
        """Occupy the slot; the processor model guarantees it is free."""
        if self.current is not None:
            raise ProtocolError(
                f"MSHR busy with block {self.current.block}, "
                f"cannot start block {txn.block}"
            )
        self.current = txn

    def finish(self) -> Transaction:
        """Release the slot, returning the completed transaction."""
        if self.current is None:
            raise ProtocolError("MSHR finish with no transaction")
        txn, self.current = self.current, None
        return txn

    def pending_for(self, block: int) -> bool:
        """True if our own transaction on ``block`` is outstanding."""
        return self.current is not None and self.current.block == block

    def defer(self, msg: Message) -> None:
        """Hold a remote request until our transaction on its block ends."""
        self._deferred.setdefault(msg.block, []).append(msg)

    def take_deferred(self, block: int) -> list[Message]:
        """Remove and return deferred messages for ``block``."""
        return self._deferred.pop(block, [])
