"""Command-line interface: regenerate any of the paper's results.

.. code-block:: console

    $ python -m repro table1
    $ python -m repro figure3 --nodes 16 --turns 8
    $ python -m repro figure2 --out results/
    $ python -m repro ablation-reservations
    $ python -m repro table1 --json table1.json
    $ python -m repro figure3 --jobs 4
    $ python -m repro stats figure3
    $ python -m repro trace table1 --block 0 --format chrome

Every subcommand prints the regenerated table/figure; ``--out DIR`` also
writes it to ``DIR/<name>.txt``, and ``--json OUT`` writes the result as
a schema-stable JSON document (envelope ``repro.run/1``; see
:mod:`repro.obs.schema` and ``docs/observability.md``).

Experiment sweeps run through the parallel executor
(:mod:`repro.harness.parallel`): ``--jobs N`` shards their independent
simulation points over ``N`` worker processes (results are byte-identical
at any job count), and a content-addressed result cache under
``$REPRO_CACHE_DIR`` / ``~/.cache/repro`` (or ``--cache-dir``) makes
re-running an unchanged point a hit instead of a re-simulation — disable
with ``--no-cache``.  ``--progress`` (implied by ``--jobs > 1``) prints
per-point progress lines to stderr via the sweep EventBus.  See
``docs/parallel.md``.

Four observability subcommands inspect a small *representative* run of
an experiment instead of regenerating it in full (see
:mod:`repro.harness.instrumented`):

* ``repro stats <experiment>`` — dump the machine's metrics registry and
  per-primitive latency breakdown (p50/p95/max per category);
  ``--format jsonl`` streams the same envelope as line-delimited JSON
  records for machine consumption;
* ``repro trace <experiment> --block N --format {text,jsonl,chrome}`` —
  export the structured event trace; ``chrome`` output loads directly
  into ``chrome://tracing`` / https://ui.perfetto.dev (message send and
  delivery slices are linked by flow events, so the viewer draws the
  causal arrows);
* ``repro critpath <experiment>`` — critical-path attribution over the
  run's transactions: blame by hop kind and component, p50/p95
  composition per primitive × policy, and the worst transactions with
  their full serialized paths;
* ``repro hotspots <experiment> --top N`` — per-cache-line contention
  ranking (queue-wait cycles, invalidation multicasts, failed atomics,
  directory-queue depth).

``repro perf [--quick] [--json OUT]`` runs the fixed-workload
wall-clock microbenchmarks of the simulation kernel itself (event core,
coherence storm, mesh saturation, mini Table 1; see
:mod:`repro.harness.perf` and ``docs/performance.md``) and can write the
``BENCH_PERF.json`` envelope that CI's perf-regression gate consumes.

Host-level self-observability (see :mod:`repro.obs.profile`,
:mod:`repro.obs.telemetry`, and ``docs/observability.md``):

* ``repro profile <experiment> [--quick]`` — wall-clock attribution of
  the dispatch loop over a representative run, as a text table, a full
  JSON envelope (``--format json``), or flamegraph-compatible collapsed
  stacks (``--format collapsed`` / ``--collapsed OUT``);
* ``--profile`` on any experiment command profiles that run and prints
  the attribution table to stderr (and injects a ``profile`` section
  into ``--json`` output);
* ``--telemetry OUT`` streams ``run.progress`` heartbeat records
  (throughput, queue depth, RSS, GC) as JSONL to ``OUT`` (``-`` =
  stderr) every ``--telemetry-every`` executed events;
* ``--progress-format jsonl`` switches sweep progress from text lines
  to machine-readable JSONL on the same serializer.

``--profile``/``--telemetry`` are in-process measurements, so they
force ``--jobs 1`` and disable the result cache for that invocation
(a cache hit or pool worker would silently escape instrumentation).

``repro shard`` wires its own observability because the simulation runs
in region workers (see :mod:`repro.obs.shardobs`): ``--spans`` stitches
per-region span records into the shard-count-invariant cross-shard
critical path (the envelope's ``critpath`` section, byte-identical at
any shard count), ``--profile``/``--telemetry`` profile and heartbeat
*inside* each worker — over either backend — and merge at the
coordinator, and ``--progress`` prints one ``shard.progress`` line per
conservative window.  ``repro trend BENCH_trend.jsonl`` summarizes the
nightly benchmark history: per-kernel wall/throughput deltas against
the trailing median, with regression flags (``--strict`` turns flags
into exit 1).

``repro chaos`` sweeps a seeded fault-injection matrix (seeds ×
intensity × policy; see :mod:`repro.faults` and ``docs/robustness.md``)
through the parallel sweep engine and gates every point on the
``repro.verify`` checkers, a cycle-budget termination watchdog, metric
conservation, and final-value agreement with the fault-free golden.
Verdicts land in the envelope's ``faults`` section; the envelope
carries no host-dependent data, so ``repro chaos --seed S`` is
byte-reproducible.  ``repro stats chaos`` / ``repro trace chaos``
instrument one representative faulted run (the ``fault.inject`` events
and ``faults.*`` counters).  ``repro shard`` exposes the self-healing
knobs (``--retries``, ``--window-timeout``) of the process backend.

Finally, ``repro report RUN.json [-o report.html]`` renders any
``repro.run/1`` document — from ``--json`` or a benchmark — into a
single self-contained HTML file (inline SVG, no network access; see
:mod:`repro.harness.htmlreport`).
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import json
import pathlib
import sys
from typing import Any, Callable, Optional, Sequence

from .config import SimConfig
from .faults.chaos import CHAOS_WORKLOADS, DEFAULT_MAX_EVENTS, DEFAULT_POLICIES
from .harness.ablation import (
    RESERVATION_STRATEGIES,
    run_dropcopy_ablation,
    run_reservation_ablation,
)
from .harness.figure2 import run_figure2
from .harness.figure6 import render_figure6, run_figure6
from .harness.figures import (
    render_figure,
    run_figure3,
    run_figure4,
    run_figure5,
)
from .harness.htmlreport import load_payload, write_report
from .harness.instrumented import INSTRUMENTED_EXPERIMENTS, run_instrumented
from .harness.parallel import ResultCache, attach_progress_writer
from .harness.report import render_histogram, render_table
from .harness.shardwork import SHARD_WORKLOADS
from .harness.table1 import TABLE1_EXPECTED, run_table1
from .obs.events import EventBus
from .obs.exporters import export_events, to_jsonl
from .obs.profile import profiled
from .obs.schema import (
    dump_run,
    make_run_payload,
    run_payload_to_jsonl,
    validate_run_payload,
)
from .obs.telemetry import DEFAULT_EVERY, telemetry_session

__all__ = ["main", "build_parser"]

TRACE_FORMATS = ("text", "jsonl", "chrome")
STATS_FORMATS = ("text", "jsonl")
PROFILE_FORMATS = ("text", "json", "collapsed")
PROGRESS_FORMATS = ("text", "jsonl")
TOPOLOGIES = ("mesh", "torus")
DIRECTORIES = ("full", "limited", "coarse")


def _add_common(parser: argparse.ArgumentParser, top_level: bool) -> None:
    """Shared options, valid both before and after the subcommand.

    Subparser copies default to ``SUPPRESS`` so an option given at the
    top level is not clobbered by the subparser's default.
    """

    def default(value):
        return value if top_level else argparse.SUPPRESS

    parser.add_argument("--nodes", type=int, default=default(64),
                        help="machine size (default 64, the paper's)")
    parser.add_argument("--turns", type=int, default=default(6),
                        help="synthetic-app turns per panel (default 6)")
    parser.add_argument("--topology", choices=TOPOLOGIES,
                        default=default("mesh"),
                        help="interconnect: the paper's 2-D mesh, or a "
                             "torus with wraparound links (default mesh)")
    parser.add_argument("--directory", choices=DIRECTORIES,
                        default=default("full"),
                        help="sharer-set representation: exact full bit "
                             "vector, limited-pointer Dir_i_B, or coarse "
                             "region vector (default full; see "
                             "docs/scaling.md)")
    parser.add_argument("--dir-pointers", type=int, default=default(8),
                        metavar="I",
                        help="pointer capacity for --directory limited "
                             "(default 8)")
    parser.add_argument("--dir-region", type=int, default=default(8),
                        metavar="R",
                        help="nodes per region bit for --directory coarse "
                             "(default 8)")
    parser.add_argument("--out", type=pathlib.Path, default=default(None),
                        help="directory to also write the rendered text to")
    parser.add_argument("--json", type=pathlib.Path, default=default(None),
                        help="write the result as repro.run/1 JSON here")
    parser.add_argument("--jobs", type=int, default=default(1),
                        help="worker processes for sweep points "
                             "(default 1: serial, bit-identical results "
                             "at any setting)")
    parser.add_argument("--no-cache", action="store_true",
                        default=default(False),
                        help="disable the content-addressed result cache")
    parser.add_argument("--cache-dir", type=pathlib.Path,
                        default=default(None),
                        help="result cache directory (default "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--progress", action="store_true",
                        default=default(False),
                        help="print per-point sweep progress to stderr "
                             "(implied by --jobs > 1)")
    parser.add_argument("--progress-format", choices=PROGRESS_FORMATS,
                        default=default("text"),
                        help="sweep progress as human text lines or "
                             "machine-readable JSONL (default text)")
    parser.add_argument("--profile", action="store_true",
                        default=default(False),
                        help="attribute host time per (component, "
                             "handler); table to stderr, 'profile' "
                             "section in --json (forces --jobs 1, "
                             "--no-cache)")
    parser.add_argument("--telemetry", type=pathlib.Path,
                        default=default(None), metavar="OUT",
                        help="stream run.progress heartbeat JSONL to "
                             "OUT ('-' = stderr; forces --jobs 1, "
                             "--no-cache)")
    parser.add_argument("--telemetry-every", type=int,
                        default=default(DEFAULT_EVERY), metavar="N",
                        help="heartbeat cadence in executed events "
                             f"(default {DEFAULT_EVERY})")


def build_parser() -> argparse.ArgumentParser:
    """The repro command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce Michael & Scott (HPCA '95): atomic primitives on "
            "DSM multiprocessors."
        ),
    )
    _add_common(parser, top_level=True)
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in [
        ("table1", "serialized message counts for stores (exact)"),
        ("figure2", "contention histograms + write-run lengths"),
        ("figure3", "lock-free counter, all variants and panels"),
        ("figure4", "TTS-lock counter, all variants and panels"),
        ("figure5", "MCS-lock counter, all variants and panels"),
        ("figure6", "total elapsed time of the real applications"),
        ("ablation-reservations", "LL/SC reservation strategies (§3.1)"),
        ("ablation-dropcopy", "when drop_copy helps and hurts"),
    ]:
        _add_common(sub.add_parser(name, help=help_text), top_level=False)
    abdir = sub.add_parser(
        "ablation-directory",
        help="sharer-set representations (full/limited/coarse) at scale",
    )
    abdir.add_argument("--sizes", type=int, action="append", default=None,
                       metavar="N",
                       help="machine sizes to sweep (repeatable; "
                            "default 64 and 256)")
    _add_common(abdir, top_level=False)
    stats = sub.add_parser(
        "stats",
        help="metrics registry + latency breakdown of a representative run",
    )
    stats.add_argument("experiment",
                       choices=sorted(INSTRUMENTED_EXPERIMENTS),
                       help="experiment to instrument")
    stats.add_argument("--format", choices=STATS_FORMATS, default="text",
                       dest="fmt",
                       help="text report or line-delimited JSON records "
                            "(default text)")
    _add_common(stats, top_level=False)
    trace = sub.add_parser(
        "trace",
        help="structured event trace of a representative run",
    )
    trace.add_argument("experiment",
                       choices=sorted(INSTRUMENTED_EXPERIMENTS),
                       help="experiment to instrument")
    trace.add_argument("--block", type=int, default=None,
                       help="only events concerning this block")
    trace.add_argument("--format", choices=TRACE_FORMATS, default="text",
                       dest="fmt", help="export format (default text)")
    _add_common(trace, top_level=False)
    critpath = sub.add_parser(
        "critpath",
        help="critical-path attribution of a representative run",
    )
    critpath.add_argument("experiment",
                          choices=sorted(INSTRUMENTED_EXPERIMENTS),
                          help="experiment to instrument")
    critpath.add_argument("--worst", type=int, default=8,
                          help="worst transactions to expand (default 8)")
    _add_common(critpath, top_level=False)
    hotspots = sub.add_parser(
        "hotspots",
        help="per-cache-line contention ranking of a representative run",
    )
    hotspots.add_argument("experiment",
                          choices=sorted(INSTRUMENTED_EXPERIMENTS),
                          help="experiment to instrument")
    hotspots.add_argument("--top", type=int, default=10,
                          help="blocks to list (default 10)")
    _add_common(hotspots, top_level=False)
    perf = sub.add_parser(
        "perf",
        help="wall-clock microbenchmarks of the simulation kernel",
    )
    perf.add_argument("--quick", action="store_true",
                      help="small workloads (CI smoke: seconds, not "
                           "minutes)")
    perf.add_argument("--reps", type=int, default=None,
                      help="timed repetitions per kernel, best-of "
                           "(default: 2 quick, 3 full)")
    perf.add_argument("--kernel", action="append", default=None,
                      dest="kernels", metavar="NAME",
                      help="run only this kernel (repeatable; default all)")
    _add_common(perf, top_level=False)
    shard = sub.add_parser(
        "shard",
        help="run one machine split across worker processes "
             "(conservative time windows; bit-identical at any shard "
             "count)",
    )
    shard.add_argument("--workload", default="golden_contention",
                       choices=sorted(SHARD_WORKLOADS),
                       help="shard-safe workload "
                            "(default golden_contention)")
    shard.add_argument("--shards", type=int, default=1,
                       help="contiguous mesh regions / workers "
                            "(default 1)")
    shard.add_argument("--backend", choices=("inline", "process"),
                       default="process",
                       help="step regions in-process or one forked "
                            "worker each (default process)")
    shard.add_argument("--window", type=int, default=None,
                       help="widen the sync window beyond the safe "
                            "lookahead (only sound for region-local "
                            "workloads; violations raise, never "
                            "corrupt)")
    shard.add_argument("--spans", action="store_true",
                       help="collect per-region span records and stitch "
                            "the cross-shard critical path (lands in the "
                            "envelope's critpath section; identical at "
                            "any shard count)")
    shard.add_argument("--retries", type=int, default=1,
                       help="retries after a worker crash or hang; the "
                            "run is deterministic, so a retried run is "
                            "identical to an unperturbed one (default 1)")
    shard.add_argument("--retry-backoff", type=float, default=0.25,
                       metavar="SECONDS",
                       help="base of the capped exponential retry "
                            "backoff (default 0.25)")
    shard.add_argument("--window-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock watchdog per coordinator window "
                            "(process backend): overdue workers are "
                            "classified hang vs crash via heartbeats "
                            "and the run is retried (default off)")
    _add_common(shard, top_level=False)
    chaos = sub.add_parser(
        "chaos",
        help="fault-injection verification: sweep seeds x intensity x "
             "policy, gating every run on the verify checkers, a "
             "termination watchdog, metric conservation, and agreement "
             "with the fault-free golden",
    )
    chaos.add_argument("--seed", type=int, action="append", default=None,
                       dest="seeds", metavar="S",
                       help="fault/config seed (repeatable; default 1 2)")
    chaos.add_argument("--intensity", type=float, action="append",
                       default=None, dest="intensities", metavar="X",
                       help="fault-plan scale factor (repeatable; the "
                            "0.0 golden is always swept too; default 1.0)")
    chaos.add_argument("--policy", action="append", default=None,
                       dest="policies", choices=DEFAULT_POLICIES,
                       help="coherence policy (repeatable; default all)")
    chaos.add_argument("--workload", default="faa",
                       choices=sorted(CHAOS_WORKLOADS),
                       help="atomic-counter workload (default faa)")
    chaos.add_argument("--max-events", type=int,
                       default=DEFAULT_MAX_EVENTS,
                       help="cycle-budget termination watchdog "
                            f"(default {DEFAULT_MAX_EVENTS})")
    chaos.add_argument("--retries", type=int, default=1,
                       help="sweep-executor retries per crashed point "
                            "before quarantining it (default 1)")
    _add_common(chaos, top_level=False)
    trend = sub.add_parser(
        "trend",
        help="summarize a nightly BENCH_trend.jsonl history "
             "(per-kernel wall/ev-s deltas, regression flags)",
    )
    trend.add_argument("history", type=pathlib.Path,
                       help="BENCH_trend.jsonl file (one record per "
                            "nightly run)")
    trend.add_argument("--last", type=int, default=0, metavar="N",
                       help="only consider the last N records "
                            "(default: all)")
    trend.add_argument("--threshold", type=float, default=10.0,
                       metavar="PCT",
                       help="flag wall/throughput deltas beyond this "
                            "percent vs the trailing median "
                            "(default 10)")
    trend.add_argument("--strict", action="store_true",
                       help="exit 1 when any kernel is flagged")
    _add_common(trend, top_level=False)
    profile = sub.add_parser(
        "profile",
        help="host-time attribution of a representative run",
    )
    profile.add_argument("experiment", nargs="?", default="table1",
                         choices=sorted(INSTRUMENTED_EXPERIMENTS),
                         help="experiment to profile (default table1)")
    profile.add_argument("--quick", action="store_true",
                         help="smallest representative workload "
                              "(4 nodes; CI smoke)")
    profile.add_argument("--format", choices=PROFILE_FORMATS,
                         default="text", dest="fmt",
                         help="text table, full repro.run/1 JSON, or "
                              "flamegraph collapsed stacks "
                              "(default text)")
    profile.add_argument("--collapsed", type=pathlib.Path, default=None,
                         metavar="OUT",
                         help="also write collapsed stacks to OUT")
    _add_common(profile, top_level=False)
    report = sub.add_parser(
        "report",
        help="render a repro.run/1 JSON document as self-contained HTML",
    )
    report.add_argument("run", type=pathlib.Path,
                        help="repro.run/1 JSON document (from --json or a "
                             "benchmark)")
    report.add_argument("-o", "--output", type=pathlib.Path, default=None,
                        help="HTML file to write (default: the input with "
                             "a .html suffix)")
    report.add_argument("--title", default=None,
                        help="report title (default derives from the "
                             "experiment name)")
    _add_common(report, top_level=False)
    return parser


def _config(args: argparse.Namespace) -> SimConfig:
    config = SimConfig().with_nodes(args.nodes)
    machine = dataclasses.replace(
        config.machine,
        topology=args.topology,
        directory=args.directory,
        dir_pointers=args.dir_pointers,
        dir_region=args.dir_region,
    )
    config = dataclasses.replace(config, machine=machine)
    config.validate()
    return config


def _machine_params(args: argparse.Namespace) -> dict[str, str]:
    """Envelope params describing the machine shape.

    One compact key per concern so determinism diffs can strip either
    with a single ``--ignore params.topology`` / ``params.directory``.
    """
    return {
        "topology": args.topology,
        "directory": _config(args).machine.directory_label,
    }


def _sweep_opts(args: argparse.Namespace) -> dict[str, Any]:
    """Executor options (jobs/cache/events) from the parsed arguments.

    The cache is on by default (content-addressed under
    ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; any source edit
    invalidates it); progress lines go to stderr so stdout and ``--json``
    stay byte-identical whatever the job count.
    """
    events = EventBus()
    if args.progress or args.jobs > 1:
        attach_progress_writer(events, args.progress_format)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return {"jobs": args.jobs, "cache": cache, "events": events}


def _emit(
    args: argparse.Namespace,
    name: str,
    text: str,
    out: Callable[[str], None],
    results: Optional[dict[str, Any]] = None,
    metrics: Optional[dict[str, Any]] = None,
    latency: Optional[dict[str, Any]] = None,
    critpath: Optional[dict[str, Any]] = None,
    hotspots: Optional[dict[str, Any]] = None,
) -> None:
    out(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / f"{name}.txt").write_text(text + "\n")
    if args.json is not None and results is not None:
        payload = make_run_payload(
            name,
            params={"nodes": args.nodes, "turns": args.turns,
                    **_machine_params(args)},
            results=results,
            metrics=metrics,
            latency=latency,
            critpath=critpath,
            hotspots=hotspots,
        )
        dump_run(payload, args.json)


def _cmd_table1(args, out) -> int:
    measured = run_table1(**_sweep_opts(args))
    rows = [[label, TABLE1_EXPECTED[label], measured[label]]
            for label in TABLE1_EXPECTED]
    _emit(args, "table1", render_table(
        ["store target", "paper", "measured"], rows,
        title="Table 1: serialized network messages per store"), out,
        results={
            "expected": dict(TABLE1_EXPECTED),
            "measured": measured,
            "match": measured == TABLE1_EXPECTED,
        })
    return 0 if measured == TABLE1_EXPECTED else 1


def _cmd_figure2(args, out) -> int:
    result = run_figure2(_config(args), **_sweep_opts(args))
    sections = []
    apps_json: dict[str, Any] = {}
    for app in sorted(result.apps):
        apps_json[app] = {}
        for policy in ("UNC", "INV", "UPD"):
            sections.append(render_histogram(
                result.histogram(app, policy),
                title=f"Figure 2 — {app} / {policy}"))
            apps_json[app][policy] = {
                "histogram": {str(level): pct for level, pct
                              in result.histogram(app, policy).items()},
                "write_run": result.write_run(app, policy),
            }
    rows = [[app] + [round(result.write_run(app, p), 2)
                     for p in ("UNC", "INV", "UPD")]
            for app in sorted(result.apps)]
    sections.append(render_table(
        ["application", "UNC", "INV", "UPD"], rows,
        title="Section 4.2: average write-run lengths"))
    _emit(args, "figure2", "\n\n".join(sections), out,
          results={"apps": apps_json})
    return 0


def _make_counter_figure(name: str, runner) -> Callable:
    def command(args, out) -> int:
        panels = runner(_config(args), turns=args.turns,
                        **_sweep_opts(args))
        _emit(args, name, render_figure(
            panels, f"{name.capitalize()}: average cycles per update"), out,
            results={"panels": [
                {"label": p.label,
                 "bars": [[label, value] for label, value in p.bars]}
                for p in panels
            ]})
        return 0

    return command


def _cmd_figure6(args, out) -> int:
    result = run_figure6(_config(args), **_sweep_opts(args))
    _emit(args, "figure6", render_figure6(result), out,
          results={"apps": {
              app: [[label, cycles] for label, cycles in bars]
              for app, bars in result.apps.items()
          }})
    return 0


def _cmd_ablation_reservations(args, out) -> int:
    outcome = run_reservation_ablation(_config(args), turns=args.turns,
                                       **_sweep_opts(args))
    rows = [[strategy, round(outcome.results[strategy][0], 1),
             outcome.results[strategy][1]]
            for strategy in RESERVATION_STRATEGIES]
    _emit(args, "ablation-reservations", render_table(
        ["strategy", "cycles/update", "local SC failures"], rows,
        title="Ablation §3.1: LL/SC reservation strategies"), out,
        results={"strategies": {
            strategy: {
                "cycles_per_update": outcome.results[strategy][0],
                "local_sc_failures": outcome.results[strategy][1],
            }
            for strategy in RESERVATION_STRATEGIES
        }})
    return 0


def _cmd_ablation_dropcopy(args, out) -> int:
    outcome = run_dropcopy_ablation(_config(args), turns=args.turns,
                                    **_sweep_opts(args))
    rows = [[panel] + [round(outcome.table[(panel, v)], 1)
                       for v in outcome.variants]
            for panel in outcome.panels]
    _emit(args, "ablation-dropcopy", render_table(
        ["panel"] + outcome.variants, rows,
        title="Ablation: drop_copy effect on the lock-free counter"), out,
        results={
            "panels": outcome.panels,
            "variants": outcome.variants,
            "cycles_per_update": {
                panel: {v: outcome.table[(panel, v)]
                        for v in outcome.variants}
                for panel in outcome.panels
            },
        })
    return 0


def _cmd_ablation_directory(args, out) -> int:
    from .harness.ablation import run_directory_ablation

    sizes = tuple(args.sizes) if args.sizes else (64, 256)
    outcome = run_directory_ablation(_config(args), sizes=sizes,
                                     turns=args.turns, **_sweep_opts(args))
    rows = [
        [p["nodes"], p["contention"], p["representation"], p["messages"],
         p["invalidations"], p["spurious_targets"],
         "yes" if p["final_value"] == p["final_expected"] else "NO"]
        for p in outcome.points
    ]
    eq = outcome.equivalence
    title = (
        "Ablation: directory sharer-set representations "
        f"(exact-capacity runs at n={eq['nodes']} identical: "
        f"{eq['identical']})"
    )
    _emit(args, "ablation-directory", render_table(
        ["nodes", "contention", "directory", "messages", "INVs",
         "spurious", "value ok"], rows, title=title), out,
        results={
            "equivalence": eq,
            "points": outcome.points,
        })
    return 0 if eq["identical"] else 1


def _cmd_stats(args, out) -> int:
    run = run_instrumented(args.experiment, _config(args), turns=args.turns)
    payload = run.payload(params={"turns": args.turns})
    if args.fmt == "jsonl":
        text = run_payload_to_jsonl(payload)
    else:
        perf = payload["perf"]
        text = "\n".join([
            f"stats — {args.experiment}: {run.description}",
            f"perf: {perf['wall_seconds']:.3f}s wall, "
            f"{perf['events_per_second']:,.0f} events/s",
            "",
            run.machine.registry.render(),
            "",
            run.machine.stats.latency.render(),
        ])
    out(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        ext = {"text": "txt", "jsonl": "jsonl"}[args.fmt]
        (args.out / f"stats-{args.experiment}.{ext}").write_text(text + "\n")
    if args.json is not None:
        dump_run(payload, args.json)
    return 0


def _cmd_critpath(args, out) -> int:
    run = run_instrumented(args.experiment, _config(args), turns=args.turns)
    agg = run.critpath(worst=args.worst)
    text = "\n".join([
        f"critpath — {args.experiment}: {run.description}",
        "",
        agg.render(),
    ])
    _emit(args, f"critpath-{args.experiment}", text, out,
          results={"description": run.description,
                   "transactions": len(run.spans.completed)},
          critpath=agg.snapshot())
    return 0


def _cmd_hotspots(args, out) -> int:
    run = run_instrumented(args.experiment, _config(args), turns=args.turns)
    text = "\n".join([
        f"hotspots — {args.experiment}: {run.description}",
        "",
        run.hotspots.render(top_n=args.top),
    ])
    _emit(args, f"hotspots-{args.experiment}", text, out,
          results={"description": run.description,
                   "transactions": len(run.spans.completed)},
          hotspots=run.hotspots.snapshot(top_n=args.top))
    return 0


def _cmd_perf(args, out) -> int:
    from .harness.perf import perf_payload, render_perf, run_perf

    results = run_perf(quick=args.quick, reps=args.reps,
                       kernels=args.kernels)
    text = render_perf(results)
    out(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "perf.txt").write_text(text + "\n")
    if args.json is not None:
        dump_run(perf_payload(results), args.json)
    return 0


def _attach_shard_progress(bus: EventBus, fmt: str) -> None:
    """Print one stderr line per completed conservative window."""
    from .obs.telemetry import telemetry_line

    def on_window(event) -> None:
        data = event.data
        if fmt == "jsonl":
            print(telemetry_line({"record": "shard.progress", **data}),
                  file=sys.stderr)
        else:
            rates = "/".join(f"{rate:,.0f}"
                             for rate in data.get("events_per_second", []))
            print(f"shard: window {data['window']} bound={data['bound']} "
                  f"events={sum(data.get('events', ())):,} "
                  f"ev/s={rates} in-flight={data['in_flight']}",
                  file=sys.stderr)

    bus.subscribe(on_window, kinds=("shard.progress",))


def _cmd_shard(args, out) -> int:
    import time

    from .harness.shardrun import run_shard
    from .obs.profile import ComponentProfiler
    from .obs.shardobs import ShardObsOptions
    from .obs.telemetry import TelemetryWriter

    # Shard observability runs *inside* the workers (either backend) and
    # is merged by the coordinator, so this command wires its own
    # sessions instead of main()'s in-process profiled()/telemetry
    # wrappers — those would only see the coordinator.
    obs = ShardObsOptions(
        spans=args.spans,
        profile=args.profile,
        telemetry_every=(args.telemetry_every
                         if args.telemetry is not None else 0),
    )
    bus = EventBus()
    if args.progress:
        _attach_shard_progress(bus, args.progress_format)
    with contextlib.ExitStack() as stack:
        writer = None
        if args.telemetry is not None:
            if str(args.telemetry) == "-":
                writer = TelemetryWriter()
            else:
                sink = stack.enter_context(open(args.telemetry, "w"))
                writer = TelemetryWriter(sink)
        t0 = time.perf_counter()
        outcome = run_shard(
            _config(args),
            workload=args.workload,
            shards=args.shards,
            turns=args.turns,
            backend=args.backend,
            window=args.window,
            obs=obs,
            telemetry=writer,
            events=bus if bus.active else None,
            retries=args.retries,
            retry_backoff=args.retry_backoff,
            window_timeout=args.window_timeout,
        )
        wall = time.perf_counter() - t0
    results = outcome.results
    info = outcome.info
    shard_section = outcome.shard or {}
    sync = shard_section.get("sync") or {}
    events = results["events"]
    lines = [
        f"shard — {args.workload}: {args.nodes} nodes, "
        f"{info['shards']} region(s), {args.backend} backend",
        f"counters match: {results['match']}  "
        f"end_time: {results['end_time']} cycles  "
        f"events: {events:,}",
        f"windows: {info['windows']}  lookahead: {info['lookahead']}  "
        f"boundary messages: {info['boundary_messages']}",
    ]
    if info.get("attempts", 1) > 1:
        lines.append(f"recovered after {info['attempts']} attempt(s) "
                     f"(worker crash/hang retried)")
    if wall > 0:
        lines.append(f"wall: {wall:.3f}s  ({events / wall:,.0f} events/s)")
    if sync:
        shares = " ".join(f"{row['busy_share']:.0%}"
                          for row in sync.get("per_shard", ()))
        lines.append(
            f"sync: lookahead utilization "
            f"{sync['lookahead_utilization']:.2f}  "
            f"busy share/shard: {shares}")
    if outcome.critpath is not None:
        stitch = shard_section.get("stitch") or {}
        lines.append(
            f"stitched: {outcome.critpath['txns']} txns, "
            f"critical path {outcome.critpath['cycles']:,} cycles "
            f"({stitch.get('records', 0):,} records, "
            f"{stitch.get('orphans', 0)} orphans)")
    text = "\n".join(lines)
    out(text)
    if args.profile and shard_section.get("profile"):
        merged = ComponentProfiler()
        merged.merge_snapshot(shard_section["profile"])
        print(merged.render(top_n=12), file=sys.stderr)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "shard.txt").write_text(text + "\n")
    if args.json is not None:
        # Run shape and host timings go in the perf/shard sections,
        # which determinism diffs strip; results/metrics — and the
        # stitched critpath, when --spans — are bit-identical at any
        # shard count.
        payload = make_run_payload(
            "shard",
            params={"nodes": args.nodes, "turns": args.turns,
                    "workload": args.workload, "shards": args.shards,
                    **_machine_params(args)},
            results=results,
            metrics=outcome.metrics,
            critpath=outcome.critpath,
            perf={**info, "wall_seconds": round(wall, 6),
                  "events_per_second":
                      round(events / wall, 1) if wall > 0 else 0.0},
            profile=shard_section.get("profile"),
            shard=shard_section or None,
        )
        dump_run(payload, args.json)
    return 0 if results["match"] else 1


def _cmd_chaos(args, out) -> int:
    from .faults.chaos import render_chaos, run_chaos
    from .obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    payload = run_chaos(
        args.seeds if args.seeds else [1, 2],
        intensities=args.intensities if args.intensities else [1.0],
        policies=(tuple(args.policies) if args.policies
                  else DEFAULT_POLICIES),
        workload=args.workload,
        turns=args.turns,
        nodes=args.nodes,
        max_events=args.max_events,
        retries=args.retries,
        registry=registry,
        **_sweep_opts(args),
    )
    text = render_chaos(payload)
    out(text)
    # Sweep-health counters (quarantined points, corrupt cache entries)
    # are host/cache-state dependent, so they go to stderr — never into
    # the byte-reproducible envelope.
    health = registry.snapshot()
    for name in ("sweep.quarantined", "sweep.cache.corrupt"):
        if health.get(name):
            print(f"chaos: {name} = {health[name]}", file=sys.stderr)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "chaos.txt").write_text(text + "\n")
    if args.json is not None:
        dump_run(payload, args.json)
    return 0 if payload["results"]["ok"] else 1


def _cmd_trend(args, out) -> int:
    from .harness.trend import (
        load_trend,
        render_trend,
        summarize_trend,
        trend_payload,
    )

    records = load_trend(args.history, last=args.last)
    summary = summarize_trend(records, threshold_pct=args.threshold)
    text = render_trend(summary)
    out(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "trend.txt").write_text(text + "\n")
    if args.json is not None:
        dump_run(trend_payload(summary), args.json)
    if args.strict and summary["regressions"]:
        return 1
    return 0


def _cmd_profile(args, out) -> int:
    config = SimConfig().with_nodes(4 if args.quick else args.nodes)
    with profiled() as prof:
        run = run_instrumented(args.experiment, config, turns=args.turns)
    snapshot = prof.snapshot()
    payload = run.payload(
        params={"turns": args.turns, "quick": args.quick},
        profile=snapshot,
    )
    if args.fmt == "json":
        text = json.dumps(payload, indent=2, sort_keys=True)
    elif args.fmt == "collapsed":
        text = prof.collapsed()
    else:
        text = "\n".join([
            f"profile — {args.experiment}: {run.description}",
            "",
            prof.render(),
        ])
    out(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        ext = {"text": "txt", "json": "json", "collapsed": "collapsed"}
        (args.out / f"profile-{args.experiment}.{ext[args.fmt]}"
         ).write_text(text + "\n")
    if args.collapsed is not None:
        args.collapsed.parent.mkdir(parents=True, exist_ok=True)
        args.collapsed.write_text(prof.collapsed() + "\n")
    if args.json is not None:
        dump_run(payload, args.json)
    return 0


def _cmd_report(args, out) -> int:
    payload = load_payload(args.run)
    target = (args.output if args.output is not None
              else args.run.with_suffix(".html"))
    write_report(payload, target, title=args.title)
    out(f"wrote {target}")
    return 0


def _cmd_trace(args, out) -> int:
    blocks = {args.block} if args.block is not None else None
    run = run_instrumented(args.experiment, _config(args), turns=args.turns,
                           blocks=blocks)
    events = run.recorder.events
    title = f"trace — {args.experiment}: {run.description}"
    text = export_events(events, args.fmt, title=title)
    out(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        ext = {"text": "txt", "jsonl": "jsonl", "chrome": "json"}[args.fmt]
        (args.out / f"trace-{args.experiment}.{ext}").write_text(text + "\n")
    if args.json is not None:
        payload = make_run_payload(
            f"trace-{args.experiment}",
            params={"nodes": args.nodes, "turns": args.turns,
                    "block": args.block, "format": args.fmt},
            results={
                "description": run.description,
                "events": [json.loads(line)
                           for line in to_jsonl(events).splitlines()],
            },
        )
        dump_run(payload, args.json)
    return 0


_COMMANDS: dict[str, Callable] = {
    "table1": _cmd_table1,
    "figure2": _cmd_figure2,
    "figure3": _make_counter_figure("figure3", run_figure3),
    "figure4": _make_counter_figure("figure4", run_figure4),
    "figure5": _make_counter_figure("figure5", run_figure5),
    "figure6": _cmd_figure6,
    "ablation-reservations": _cmd_ablation_reservations,
    "ablation-dropcopy": _cmd_ablation_dropcopy,
    "ablation-directory": _cmd_ablation_directory,
    "perf": _cmd_perf,
    "shard": _cmd_shard,
    "chaos": _cmd_chaos,
    "trend": _cmd_trend,
    "profile": _cmd_profile,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
    "critpath": _cmd_critpath,
    "hotspots": _cmd_hotspots,
    "report": _cmd_report,
}


def _inject_profile(path: pathlib.Path, snapshot: dict[str, Any]) -> None:
    """Add the session's ``profile`` section to an emitted envelope.

    Commands build their ``--json`` payloads before the profiling
    session closes, so the attribution is grafted on afterwards (and
    re-validated against the schema).
    """
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        return
    document["profile"] = snapshot
    validate_run_payload(document)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def main(argv: Optional[Sequence[str]] = None,
         out: Callable[[str], None] = print) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    command = _COMMANDS[args.command]
    if args.command == "shard":
        # Sharded runs observe inside their workers (either backend);
        # the in-process profiled()/telemetry sessions below would only
        # see the coordinator, so the shard command wires its own.
        return command(args, out)
    want_profile = bool(getattr(args, "profile", False))
    telemetry_out = getattr(args, "telemetry", None)
    if not want_profile and telemetry_out is None:
        return command(args, out)
    # Profiling and telemetry are in-process sessions: a pool worker or
    # a cache hit would run (or skip) the simulation outside them, so
    # observed invocations are serial and uncached.
    if hasattr(args, "jobs"):
        args.jobs = 1
        args.no_cache = True
    with contextlib.ExitStack() as stack:
        prof = None
        if want_profile:
            prof = stack.enter_context(profiled())
        if telemetry_out is not None:
            if str(telemetry_out) == "-":
                stack.enter_context(
                    telemetry_session(every=args.telemetry_every)
                )
            else:
                sink = stack.enter_context(open(telemetry_out, "w"))
                stack.enter_context(
                    telemetry_session(every=args.telemetry_every,
                                      stream=sink)
                )
        code = command(args, out)
    if prof is not None:
        print(prof.render(top_n=12), file=sys.stderr)
        json_path = getattr(args, "json", None)
        if json_path is not None:
            _inject_profile(json_path, prof.snapshot())
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
