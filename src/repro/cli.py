"""Command-line interface: regenerate any of the paper's results.

.. code-block:: console

    $ python -m repro table1
    $ python -m repro figure3 --nodes 16 --turns 8
    $ python -m repro figure2 --out results/
    $ python -m repro ablation-reservations

Every subcommand prints the regenerated table/figure; ``--out DIR`` also
writes it to ``DIR/<name>.txt``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable, Optional, Sequence

from .config import SimConfig
from .harness.ablation import (
    RESERVATION_STRATEGIES,
    run_dropcopy_ablation,
    run_reservation_ablation,
)
from .harness.figure2 import run_figure2
from .harness.figure6 import render_figure6, run_figure6
from .harness.figures import (
    render_figure,
    run_figure3,
    run_figure4,
    run_figure5,
)
from .harness.report import render_histogram, render_table
from .harness.table1 import TABLE1_EXPECTED, run_table1

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce Michael & Scott (HPCA '95): atomic primitives on "
            "DSM multiprocessors."
        ),
    )
    parser.add_argument("--nodes", type=int, default=64,
                        help="machine size (default 64, the paper's)")
    parser.add_argument("--turns", type=int, default=6,
                        help="synthetic-app turns per panel (default 6)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory to also write the rendered text to")
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in [
        ("table1", "serialized message counts for stores (exact)"),
        ("figure2", "contention histograms + write-run lengths"),
        ("figure3", "lock-free counter, all variants and panels"),
        ("figure4", "TTS-lock counter, all variants and panels"),
        ("figure5", "MCS-lock counter, all variants and panels"),
        ("figure6", "total elapsed time of the real applications"),
        ("ablation-reservations", "LL/SC reservation strategies (§3.1)"),
        ("ablation-dropcopy", "when drop_copy helps and hurts"),
    ]:
        sub.add_parser(name, help=help_text)
    return parser


def _config(args: argparse.Namespace) -> SimConfig:
    return SimConfig().with_nodes(args.nodes)


def _emit(args: argparse.Namespace, name: str, text: str,
          out: Callable[[str], None]) -> None:
    out(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / f"{name}.txt").write_text(text + "\n")


def _cmd_table1(args, out) -> int:
    measured = run_table1()
    rows = [[label, TABLE1_EXPECTED[label], measured[label]]
            for label in TABLE1_EXPECTED]
    _emit(args, "table1", render_table(
        ["store target", "paper", "measured"], rows,
        title="Table 1: serialized network messages per store"), out)
    return 0 if measured == TABLE1_EXPECTED else 1


def _cmd_figure2(args, out) -> int:
    result = run_figure2(_config(args))
    sections = []
    for app in sorted(result.apps):
        for policy in ("UNC", "INV", "UPD"):
            sections.append(render_histogram(
                result.histogram(app, policy),
                title=f"Figure 2 — {app} / {policy}"))
    rows = [[app] + [round(result.write_run(app, p), 2)
                     for p in ("UNC", "INV", "UPD")]
            for app in sorted(result.apps)]
    sections.append(render_table(
        ["application", "UNC", "INV", "UPD"], rows,
        title="Section 4.2: average write-run lengths"))
    _emit(args, "figure2", "\n\n".join(sections), out)
    return 0


def _make_counter_figure(name: str, runner) -> Callable:
    def command(args, out) -> int:
        panels = runner(_config(args), turns=args.turns)
        _emit(args, name, render_figure(
            panels, f"{name.capitalize()}: average cycles per update"), out)
        return 0

    return command


def _cmd_figure6(args, out) -> int:
    result = run_figure6(_config(args))
    _emit(args, "figure6", render_figure6(result), out)
    return 0


def _cmd_ablation_reservations(args, out) -> int:
    outcome = run_reservation_ablation(_config(args), turns=args.turns)
    rows = [[strategy, round(outcome.results[strategy][0], 1),
             outcome.results[strategy][1]]
            for strategy in RESERVATION_STRATEGIES]
    _emit(args, "ablation_reservations", render_table(
        ["strategy", "cycles/update", "local SC failures"], rows,
        title="Ablation §3.1: LL/SC reservation strategies"), out)
    return 0


def _cmd_ablation_dropcopy(args, out) -> int:
    outcome = run_dropcopy_ablation(_config(args), turns=args.turns)
    rows = [[panel] + [round(outcome.table[(panel, v)], 1)
                       for v in outcome.variants]
            for panel in outcome.panels]
    _emit(args, "ablation_dropcopy", render_table(
        ["panel"] + outcome.variants, rows,
        title="Ablation: drop_copy effect on the lock-free counter"), out)
    return 0


_COMMANDS: dict[str, Callable] = {
    "table1": _cmd_table1,
    "figure2": _cmd_figure2,
    "figure3": _make_counter_figure("figure3", run_figure3),
    "figure4": _make_counter_figure("figure4", run_figure4),
    "figure5": _make_counter_figure("figure5", run_figure5),
    "figure6": _cmd_figure6,
    "ablation-reservations": _cmd_ablation_reservations,
    "ablation-dropcopy": _cmd_ablation_dropcopy,
}


def main(argv: Optional[Sequence[str]] = None,
         out: Callable[[str], None] = print) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
