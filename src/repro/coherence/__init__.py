"""Directory-based coherence: policies, the home protocol, controllers."""

from .policy import SyncPolicy

__all__ = ["SyncPolicy"]
