"""The cache controller: requester-side protocol engine.

One controller per node.  It executes the processor's memory operations
against the local cache, issuing protocol transactions to home nodes on
misses, and it answers remote protocol traffic (invalidations, updates,
recalls, delegated CAS comparisons).

Operation routing by sync policy (ordinary data is ``INV``):

=====================  ==========================================
policy                 behaviour
=====================  ==========================================
``INV``                all primitives execute in this controller on an
                       exclusive copy; loads get shared copies
``INVd`` / ``INVs``    as INV, except a missing compare_and_swap is sent
                       to the home/owner for comparison
``UPD``                loads hit shared copies; every write-flavoured
                       primitive (and load_linked) goes to the memory
``UNC``                every operation goes to the memory; no caching
=====================  ==========================================

The controller owns the node's LL/SC reservation: a reservation bit, the
reserved address, and (for memory-side strategies) the grant token and
doomed flag returned by the memory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..cache.cache import Cache
from ..cache.line import LineState
from ..cache.mshr import Mshr, Transaction
from ..config import SimConfig
from ..errors import ProtocolError
from ..network.mesh import WormholeMesh
from ..network.message import Message, MessageType, Unit
from ..obs.latency import TxnBreakdown
from ..obs.registry import MetricsRegistry
from ..primitives.ops import (
    CasResult,
    CompareAndSwap,
    DropCopy,
    FetchAndPhi,
    LLValue,
    Load,
    LoadExclusive,
    LoadLinked,
    Store,
    StoreConditional,
)
from ..primitives.semantics import apply_phi
from .policy import SyncPolicy

__all__ = ["CacheController", "LocalReservation"]

Callback = Callable[[Any], None]

_REPLIES = frozenset(
    {
        MessageType.DATA_S,
        MessageType.DATA_X,
        MessageType.SYNC_REPLY,
        MessageType.SC_FAIL,
        MessageType.CAS_FAIL,
    }
)
_ACKS = frozenset({MessageType.INV_ACK, MessageType.UPDATE_ACK})
_RECALLS = frozenset(
    {MessageType.FLUSH_REQ, MessageType.DOWNGRADE_REQ, MessageType.CAS_CMP}
)


@dataclass
class LocalReservation:
    """The per-cache LL reservation bit and address register.

    For memory-side LL/SC (UNC/UPD) the controller also remembers the
    memory's grant: the serial-number ``token`` and the ``doomed`` flag of
    an over-limit reservation, which lets the matching store_conditional
    fail locally with no network traffic.
    """

    valid: bool = False
    block: int = -1
    addr: int = -1
    token: Optional[int] = None
    doomed: bool = False

    def clear(self) -> None:
        """Invalidate the reservation."""
        self.valid = False
        self.block = -1
        self.addr = -1
        self.token = None
        self.doomed = False

    def set(
        self, block: int, addr: int, token: Optional[int] = None, doomed: bool = False
    ) -> None:
        """Record a new reservation (load_linked completed)."""
        self.valid = True
        self.block = block
        self.addr = addr
        self.token = token
        self.doomed = doomed


class ControllerStats:
    """Per-controller counters (registry-backed, ``ctrl.<node>.*``).

    Scalar counters keep their historical attribute spelling as property
    shims; ``chains`` (summed serialized-chain depth per transaction
    kind) is materialized from the ``<prefix>.chain.<kind>`` counters.
    """

    _SCALARS = ("ops", "local_hits", "sc_local_failures",
                "spurious_losses", "nak_retries")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        prefix: str = "ctrl",
    ) -> None:
        reg = registry if registry is not None else MetricsRegistry()
        self._registry = reg
        self._prefix = prefix
        self._ops = reg.counter(f"{prefix}.ops")
        self._local_hits = reg.counter(f"{prefix}.local_hits")
        self._sc_local_failures = reg.counter(f"{prefix}.sc_local_failures")
        self._spurious_losses = reg.counter(f"{prefix}.spurious_losses")
        self._nak_retries = reg.counter(f"{prefix}.nak_retries")
        self._chains: dict[str, Any] = {}

    @property
    def ops(self) -> int:
        """Operations executed by this controller."""
        return self._ops.value

    @ops.setter
    def ops(self, value: int) -> None:
        self._ops.value = value

    @property
    def local_hits(self) -> int:
        """Operations satisfied without leaving the node."""
        return self._local_hits.value

    @local_hits.setter
    def local_hits(self, value: int) -> None:
        self._local_hits.value = value

    @property
    def sc_local_failures(self) -> int:
        """store_conditionals failed locally with no network traffic."""
        return self._sc_local_failures.value

    @sc_local_failures.setter
    def sc_local_failures(self, value: int) -> None:
        self._sc_local_failures.value = value

    @property
    def spurious_losses(self) -> int:
        """Reservations lost to the spurious-invalidation model."""
        return self._spurious_losses.value

    @spurious_losses.setter
    def spurious_losses(self, value: int) -> None:
        self._spurious_losses.value = value

    @property
    def nak_retries(self) -> int:
        """Transactions reissued after an OWNER_NAK."""
        return self._nak_retries.value

    @nak_retries.setter
    def nak_retries(self, value: int) -> None:
        self._nak_retries.value = value

    def note_chain(self, kind: str, chain: int) -> None:
        """Accumulate the serialized-chain depth of one transaction."""
        counter = self._chains.get(kind)
        if counter is None:
            counter = self._chains[kind] = self._registry.counter(
                f"{self._prefix}.chain.{kind}"
            )
        counter.inc(chain)

    @property
    def chains(self) -> dict[str, int]:
        """Summed chain depth per transaction kind."""
        return {kind: c.value for kind, c in self._chains.items()}


class CacheController:
    """Requester-side coherence engine for one node."""

    def __init__(
        self, node: int, mesh: WormholeMesh, config: SimConfig, machine: Any
    ) -> None:
        self.node = node
        self.mesh = mesh
        self.config = config
        self.machine = machine
        self.sim = machine.sim
        self.events = mesh.events
        registry = getattr(machine, "registry", None)
        self.cache = Cache(config.machine, registry, name=f"cache.{node}")
        self.mshr = Mshr()
        self.reservation = LocalReservation()
        self.stats = ControllerStats(registry, prefix=f"ctrl.{node}")
        self.last_chain = 0
        # Spurious reservation loss (paper §2.1: context switches / TLB
        # exceptions reset the LLbit on real processors).
        self._spurious_rate = config.spurious_sc_rate
        self._spurious_rng = random.Random((config.seed << 8) ^ node)
        # Hot-path caches (cProfile-guided): timing constants off the
        # frozen config, raw registry counters behind the stats shims,
        # and bound address-service methods, all resolved once.
        timing = config.timing
        self._t_hit = timing.cache_hit
        self._t_occ = timing.controller_occupancy
        self._c_ops = self.stats._ops
        self._c_local_hits = self.stats._local_hits
        self._block_of = machine.block_of
        self._offset_of = machine.offset_of
        self._policy_of = machine.policy_of
        mesh.register(node, Unit.CACHE, self.handle)

    # ==================================================================
    # Observability helpers.
    #
    # Every emission site is guarded by ``events.active`` so a machine
    # with no subscribers pays one attribute check and never constructs
    # an Event — the simulation itself is never perturbed.
    # ==================================================================

    def _emit(self, kind: str, ts: int, **data: Any) -> None:
        if self.events.active:
            self.events.emit(kind, ts, node=self.node, **data)

    def _emit_transition(self, block: int, frm: LineState | None,
                         to: LineState | None) -> None:
        if self.events.active and frm is not to:
            self.events.emit(
                "cache.transition", self.sim.now, node=self.node, block=block,
                frm=frm.value if frm is not None else "invalid",
                to=to.value if to is not None else "invalid",
            )

    def _grant_reservation(
        self, block: int, addr: int,
        token: Optional[int] = None, doomed: bool = False,
    ) -> None:
        """Record an LL reservation (and announce it on the bus)."""
        self.reservation.set(block, addr, token=token, doomed=doomed)
        self._emit("res.grant", self.sim.now, block=block, addr=addr,
                   doomed=doomed)

    def _revoke_reservation(self, reason: str,
                            by: Optional[int] = None) -> None:
        """Kill the LL reservation, noting why (and whose write did it)."""
        if self.reservation.valid:
            self._emit("res.revoke", self.sim.now,
                       block=self.reservation.block, reason=reason, by=by)
        self.reservation.clear()

    # ==================================================================
    # Processor-facing interface.
    # ==================================================================

    def execute(self, op: Any, callback: Callback) -> None:
        """Perform ``op`` and eventually call ``callback(result)``."""
        self._c_ops.value += 1
        addr = getattr(op, "addr", None)
        block = self._block_of(addr) if addr is not None else None
        policy = self._policy_of(block) if block is not None else None
        if self.events.active:
            self.events.emit(
                "atomic.start", self.sim.now, node=self.node,
                op=type(op).__name__, addr=addr, block=block,
                policy=policy.value if policy is not None else None)
        if isinstance(op, DropCopy):
            self._drop_copy(op, callback)
            return
        if policy is SyncPolicy.UNC:
            self._execute_unc(op, block, callback)
        elif policy is SyncPolicy.UPD:
            self._execute_upd(op, block, callback)
        else:
            self._execute_inv(op, block, policy, callback)

    # ------------------------------------------------------------------
    # UNC: everything goes to the memory; nothing is cached.
    # ------------------------------------------------------------------

    def _execute_unc(self, op: Any, block: int, callback: Callback) -> None:
        if isinstance(op, (Load, LoadExclusive)):
            self._start_sync(op, block, callback, "sync_load", kind="load")
        elif isinstance(op, Store):
            self._start_sync(op, block, callback, "sync_store", kind="store",
                             value=op.value)
        elif isinstance(op, FetchAndPhi):
            self._start_sync(op, block, callback, "sync_faa", kind="faa",
                             phi=op.phi, operand=op.operand)
        elif isinstance(op, CompareAndSwap):
            self._start_sync(op, block, callback, "sync_cas", kind="cas",
                             expected=op.expected, new=op.new)
        elif isinstance(op, LoadLinked):
            self._start_sync(op, block, callback, "sync_ll", kind="ll")
        elif isinstance(op, StoreConditional):
            self._store_conditional_memory(op, block, callback)
        else:
            raise ProtocolError(f"cannot execute {op!r} under UNC")

    # ------------------------------------------------------------------
    # UPD: reads hit shared copies; writes and LL/SC go to the memory.
    # ------------------------------------------------------------------

    def _execute_upd(self, op: Any, block: int, callback: Callback) -> None:
        if isinstance(op, (Load, LoadExclusive)):
            offset = self.machine.offset_of(op.addr)
            line = self.cache.lookup(block)
            if line is not None:
                self._hit(op.addr, line.read_word(offset), callback,
                          is_write=False)
            else:
                self._start_txn(op, block, callback, "load", MessageType.GETS)
        elif isinstance(op, Store):
            self._start_sync(op, block, callback, "sync_store", kind="store",
                             value=op.value)
        elif isinstance(op, FetchAndPhi):
            self._start_sync(op, block, callback, "sync_faa", kind="faa",
                             phi=op.phi, operand=op.operand)
        elif isinstance(op, CompareAndSwap):
            self._start_sync(op, block, callback, "sync_cas", kind="cas",
                             expected=op.expected, new=op.new)
        elif isinstance(op, LoadLinked):
            # The reservation must be set at the memory, which also has the
            # authoritative data — load_linked always travels (paper §3).
            self._start_sync(op, block, callback, "sync_ll", kind="ll")
        elif isinstance(op, StoreConditional):
            self._store_conditional_memory(op, block, callback)
        else:
            raise ProtocolError(f"cannot execute {op!r} under UPD")

    def _spurious_reservation_loss(self) -> bool:
        """Model §2.1's spurious reservation invalidations, if enabled."""
        if self._spurious_rate and self.reservation.valid:
            if self._spurious_rng.random() < self._spurious_rate:
                self._revoke_reservation("spurious")
                self.stats.spurious_losses += 1
                return True
        return False

    def _store_conditional_memory(
        self, op: StoreConditional, block: int, callback: Callback
    ) -> None:
        """Memory-side store_conditional with local fast-fail paths."""
        self._spurious_reservation_loss()
        res = self.reservation
        token = op.token
        if token is None and res.valid and res.addr == op.addr:
            token = res.token
            if res.doomed:
                # Over-limit reservation: guaranteed failure, no traffic.
                self._revoke_reservation("doomed")
                self.stats.sc_local_failures += 1
                self._hit_result(False, callback)
                return
        if token is None and not (res.valid and res.addr == op.addr):
            # No reservation was ever established and no explicit token:
            # the store_conditional cannot succeed; fail locally.
            self.stats.sc_local_failures += 1
            self._hit_result(False, callback)
            return
        if res.valid and res.addr == op.addr:
            self._revoke_reservation("sc_consumed")
        self._start_sync(op, block, callback, "sync_sc", kind="sc",
                         value=op.value, token=token)

    # ------------------------------------------------------------------
    # INV family: primitives execute here on an exclusive copy.
    # ------------------------------------------------------------------

    def _execute_inv(
        self, op: Any, block: int, policy: SyncPolicy, callback: Callback
    ) -> None:
        offset = self.machine.offset_of(op.addr)
        line = self.cache.lookup(block)
        exclusive = line is not None and line.state is LineState.EXCLUSIVE

        if isinstance(op, Load):
            if line is not None:
                self._hit(op.addr, line.read_word(offset), callback,
                          is_write=False)
            else:
                self._start_txn(op, block, callback, "load", MessageType.GETS)
        elif isinstance(op, LoadExclusive):
            if exclusive:
                self._hit(op.addr, line.read_word(offset), callback,
                          is_write=False)
            else:
                self._start_txn(op, block, callback, "lx", MessageType.GETX)
        elif isinstance(op, Store):
            if exclusive:
                line.write_word(offset, op.value)
                self._hit(op.addr, None, callback, is_write=True)
            else:
                self._start_txn(op, block, callback, "store", MessageType.GETX)
        elif isinstance(op, FetchAndPhi):
            if exclusive:
                old = line.read_word(offset)
                line.write_word(offset, apply_phi(op.phi, old, op.operand))
                self._hit(op.addr, old, callback, is_write=True, atomic=True)
            else:
                self._start_txn(op, block, callback, "faa", MessageType.GETX)
        elif isinstance(op, CompareAndSwap):
            self._execute_inv_cas(op, block, offset, line, policy, callback)
        elif isinstance(op, LoadLinked):
            if line is not None:
                self._grant_reservation(block, op.addr)
                self._hit(op.addr, LLValue(line.read_word(offset)), callback,
                          is_write=False)
            else:
                self._start_txn(op, block, callback, "ll_inv", MessageType.GETS)
        elif isinstance(op, StoreConditional):
            self._execute_inv_sc(op, block, offset, line, callback)
        else:
            raise ProtocolError(f"cannot execute {op!r} under {policy}")

    def _execute_inv_cas(
        self,
        op: CompareAndSwap,
        block: int,
        offset: int,
        line: Any,
        policy: SyncPolicy,
        callback: Callback,
    ) -> None:
        if line is not None and line.state is LineState.EXCLUSIVE:
            old = line.read_word(offset)
            success = old == op.expected
            if success:
                line.write_word(offset, op.new)
            self._hit(op.addr, CasResult(success, old), callback,
                      is_write=success, atomic=True)
            return
        if policy is SyncPolicy.INV:
            # Acquire an exclusive copy unconditionally, compare locally.
            self._start_txn(op, block, callback, "cas", MessageType.GETX)
        else:
            # INVd/INVs: let the home (or the owner) do the comparison so a
            # failing CAS does not invalidate other copies.
            self._start_sync(op, block, callback, "sync_cas", kind="cas",
                             expected=op.expected, new=op.new)

    def _execute_inv_sc(
        self,
        op: StoreConditional,
        block: int,
        offset: int,
        line: Any,
        callback: Callback,
    ) -> None:
        self._spurious_reservation_loss()
        res = self.reservation
        if not (res.valid and res.addr == op.addr):
            self.stats.sc_local_failures += 1
            self._hit_result(False, callback)
            return
        if line is not None and line.state is LineState.EXCLUSIVE:
            # Exclusive and reserved: succeed entirely locally.
            self._revoke_reservation("sc_consumed")
            line.write_word(offset, op.value)
            self._hit(op.addr, True, callback, is_write=True, atomic=True)
            return
        if line is not None and line.state is LineState.SHARED:
            # The home arbitrates: success iff the line is still shared.
            self._start_txn(op, block, callback, "sc_inv", MessageType.SC_REQ,
                            addr=op.addr, offset=offset)
            return
        # Line gone; the invalidation should have killed the reservation,
        # but be defensive: fail locally.
        self._revoke_reservation("line_gone")
        self.stats.sc_local_failures += 1
        self._hit_result(False, callback)

    # ------------------------------------------------------------------
    # drop_copy.
    # ------------------------------------------------------------------

    def _drop_copy(self, op: DropCopy, callback: Callback) -> None:
        block = self.machine.block_of(op.addr)
        line = self.cache.lookup(block, touch=False)
        if line is not None and not self.mshr.pending_for(block):
            self._relinquish(block, line)
        done = self.sim.now + self.config.timing.controller_occupancy
        self._emit("atomic.complete", done, block=block, local=True)
        self.sim.schedule(self.config.timing.controller_occupancy,
                          callback, None)

    def _relinquish(self, block: int, line: Any) -> None:
        """Give up a cached line: write back or send a drop notice."""
        if line.state is LineState.EXCLUSIVE:
            self._send_unsolicited(MessageType.WB, block, data=list(line.data))
        else:
            self._send_unsolicited(MessageType.DROP, block)
        self._emit_transition(block, line.state, None)
        self.cache.drop(block)
        if self.reservation.block == block:
            self._revoke_reservation("drop_copy")

    # ==================================================================
    # Transaction plumbing.
    # ==================================================================

    def _hit(
        self,
        addr: int,
        result: Any,
        callback: Callback,
        is_write: bool,
        atomic: bool = False,
    ) -> None:
        """Complete an operation that was satisfied locally."""
        self._c_local_hits.value += 1
        self.last_chain = 0
        self.machine.stats.note_access(addr, self.node, is_write)
        delay = self._t_occ if atomic else self._t_hit
        if self.events.active:
            self.events.emit("atomic.complete", self.sim.now + delay,
                             node=self.node, addr=addr, local=True)
        self.sim.schedule(delay, callback, result)

    def _hit_result(self, result: Any, callback: Callback) -> None:
        """Complete a local operation that touched no memory state."""
        self.last_chain = 0
        if self.events.active:
            self.events.emit("atomic.complete", self.sim.now + self._t_hit,
                             node=self.node, local=True)
        self.sim.schedule(self._t_hit, callback, result)

    def _start_txn(
        self,
        op: Any,
        block: int,
        callback: Callback,
        txn_kind: str,
        mtype: MessageType,
        **payload: Any,
    ) -> None:
        txn = Transaction(op=op, block=block, callback=callback, kind=txn_kind,
                          request_mtype=mtype, request_payload=payload,
                          breakdown=TxnBreakdown(self.sim.now))
        self.mshr.begin(txn)
        self._issue(txn)

    def _start_sync(
        self,
        op: Any,
        block: int,
        callback: Callback,
        txn_kind: str,
        **payload: Any,
    ) -> None:
        payload.setdefault("addr", op.addr)
        payload.setdefault("offset", self.machine.offset_of(op.addr))
        self._start_txn(op, block, callback, txn_kind, MessageType.SYNC_REQ,
                        **payload)

    def _issue(self, txn: Transaction) -> None:
        home = self.machine.home_of(txn.block)
        chain = txn.chain + (1 if home != self.node else 0)
        txn.note_chain(chain)
        self.mesh.send(
            Message.acquire(
                txn.request_mtype, self.node, home, Unit.HOME, txn.block,
                txn=txn, chain=chain, requester=self.node,
                payload=dict(txn.request_payload),
            )
        )

    def _send_unsolicited(self, mtype: MessageType, block: int, **payload) -> None:
        home = self.machine.home_of(block)
        self.mesh.send(
            Message.acquire(mtype, self.node, home, Unit.HOME, block,
                            chain=0, requester=self.node, payload=payload)
        )

    def _reply_to(
        self, msg: Message, mtype: MessageType, dst: int, unit: Unit, **payload
    ) -> None:
        chain = msg.chain + (1 if dst != self.node else 0)
        self.mesh.send(
            Message.acquire(mtype, self.node, dst, unit, msg.block,
                            txn=msg.txn, chain=chain,
                            requester=msg.requester, payload=payload)
        )

    # ==================================================================
    # Network handler.
    # ==================================================================

    def handle(self, msg: Message) -> None:
        """Delivery point for all CACHE-unit messages at this node."""
        mtype = msg.mtype
        if mtype in _REPLIES:
            # Replies are parked in txn.reply — never pooled here.
            self._on_reply(msg)
        elif mtype in _ACKS:
            self._on_ack(msg)
            Message.release(msg)
        elif mtype is MessageType.OWNER_NAK:
            self._on_owner_nak(msg)
            Message.release(msg)
        elif mtype is MessageType.INV:
            self._on_inv(msg)
            Message.release(msg)
        elif mtype is MessageType.UPDATE:
            self._on_update(msg)
            Message.release(msg)
        elif mtype in _RECALLS:
            txn = self.mshr.current
            if (txn is not None and txn.block == msg.block
                    and txn.reply is not None):
                # Our exclusive grant is in hand but acks are still
                # arriving: we are the new owner, so hold the recall until
                # the transaction completes.  (A recall cannot overtake the
                # grant: both travel home->us, in order.)
                self.mshr.defer(msg)
            else:
                # No transaction, or ours has not been granted yet.  In the
                # latter case the directory's ownership record is stale (we
                # dropped or evicted the line; the writeback is in flight),
                # and deferring would deadlock the home against our own
                # queued request — answer the recall now (NAK if the line
                # is gone).
                self._on_recall(msg)
        else:
            raise ProtocolError(f"cache {self.node} cannot handle {msg}")

    def _current_txn(self, msg: Message) -> Transaction:
        txn = self.mshr.current
        if txn is None or txn.block != msg.block:
            raise ProtocolError(
                f"node {self.node}: {msg} matches no outstanding transaction"
            )
        return txn

    def _on_reply(self, msg: Message) -> None:
        txn = self._current_txn(msg)
        txn.reply = msg
        txn.acks_needed = msg.payload.get("acks", 0)
        txn.note_chain(msg.chain)
        self._maybe_complete()

    def _on_ack(self, msg: Message) -> None:
        txn = self._current_txn(msg)
        txn.acks_got += 1
        txn.note_chain(msg.chain)
        self._maybe_complete()

    def _on_owner_nak(self, msg: Message) -> None:
        txn = self._current_txn(msg)
        txn.retries += 1
        self.stats.nak_retries += 1
        if txn.retries > Mshr.MAX_RETRIES:
            raise ProtocolError(f"transaction for block {txn.block} livelocked")
        txn.note_chain(msg.chain)
        txn.reply = None
        txn.acks_needed = None
        txn.acks_got = 0
        self.sim.schedule(self.config.timing.controller_occupancy,
                          self._issue, txn)

    def _on_inv(self, msg: Message) -> None:
        line = self.cache.lookup(msg.block, touch=False)
        if line is not None:
            self._emit_transition(msg.block, line.state, None)
            line.invalidate()
            self.cache.drop(msg.block)
        if self.reservation.block == msg.block:
            self._revoke_reservation("invalidated", by=msg.requester)
        self._reply_to(msg, MessageType.INV_ACK, msg.requester, Unit.CACHE)

    def _on_update(self, msg: Message) -> None:
        line = self.cache.lookup(msg.block, touch=False)
        if line is not None:
            line.data = list(msg.payload["data"])
        self._reply_to(msg, MessageType.UPDATE_ACK, msg.requester, Unit.CACHE)

    # ------------------------------------------------------------------
    # Recalls (home -> owner).
    # ------------------------------------------------------------------

    def _on_recall(self, msg: Message) -> None:
        line = self.cache.lookup(msg.block, touch=False)
        home = self.machine.home_of(msg.block)
        if line is None or line.state is not LineState.EXCLUSIVE:
            # We dropped or evicted the line; the writeback is in flight.
            self._reply_to(msg, MessageType.FLUSH_NAK, home, Unit.HOME,
                           reason="gone")
            self._reply_to(msg, MessageType.OWNER_NAK, msg.requester,
                           Unit.CACHE)
            return
        if msg.mtype is MessageType.FLUSH_REQ:
            data = list(line.data)
            self._emit_transition(msg.block, line.state, None)
            self.cache.drop(msg.block)
            if self.reservation.block == msg.block:
                self._revoke_reservation("recalled", by=msg.requester)
            self._reply_to(msg, MessageType.FLUSH_REPLY, home, Unit.HOME,
                           data=data)
        elif msg.mtype is MessageType.DOWNGRADE_REQ:
            self._emit_transition(msg.block, line.state, LineState.SHARED)
            line.state = LineState.SHARED
            data = list(line.data)
            line.dirty = False
            self._reply_to(msg, MessageType.SHARE_WB, home, Unit.HOME,
                           data=data)
        elif msg.mtype is MessageType.CAS_CMP:
            self._on_cas_cmp(msg, line, home)
        else:  # pragma: no cover - guarded by _RECALLS
            raise ProtocolError(f"bad recall {msg}")

    def _on_cas_cmp(self, msg: Message, line: Any, home: int) -> None:
        """Delegated INVd/INVs comparison at the owning cache."""
        offset = msg.payload["offset"]
        old = line.read_word(offset)
        if old == msg.payload["expected"]:
            # Success: surrender the line; the requester takes it exclusive
            # and applies the new value there.
            data = list(line.data)
            self._emit_transition(msg.block, line.state, None)
            self.cache.drop(msg.block)
            if self.reservation.block == msg.block:
                self._revoke_reservation("cas_taken", by=msg.requester)
            self._reply_to(msg, MessageType.FLUSH_REPLY, home, Unit.HOME,
                           data=data, cas_ok=True, old=old)
            return
        if msg.payload["variant"] == SyncPolicy.INVD.value:
            # Failure, deny: keep our exclusive copy; tell the requester
            # directly and release the home.
            self._reply_to(msg, MessageType.CAS_FAIL, msg.requester,
                           Unit.CACHE, old=old)
            self._reply_to(msg, MessageType.FLUSH_NAK, home, Unit.HOME,
                           reason="cas_fail")
        else:
            # Failure, share: demote to shared; the home sends the
            # requester a read-only copy with the failure result.
            self._emit_transition(msg.block, line.state, LineState.SHARED)
            line.state = LineState.SHARED
            line.dirty = False
            self._reply_to(msg, MessageType.SHARE_WB, home, Unit.HOME,
                           data=list(line.data), cas_fail=True, old=old)

    # ==================================================================
    # Completion.
    # ==================================================================

    def _maybe_complete(self) -> None:
        txn = self.mshr.current
        if txn is not None and txn.complete:
            self._finish(txn)

    def _finish(self, txn: Transaction) -> None:
        reply = txn.reply
        assert reply is not None
        result = self._apply_completion(txn, reply)
        self.mshr.finish()
        self.last_chain = txn.chain
        self.stats.note_chain(txn.kind, txn.chain)
        self.machine.stats.note_transaction(txn.kind, txn.chain)
        # Serve remote requests that arrived while we were in flight.
        for deferred in self.mshr.take_deferred(txn.block):
            self._on_recall(deferred)
        done = self.sim.now + self.config.timing.controller_occupancy
        policy = self.machine.policy_of(txn.block)
        if txn.breakdown is not None:
            txn.breakdown.credit("controller", done)
            self.machine.stats.note_txn_latency(
                txn.kind, policy.value, txn.breakdown
            )
        self._emit("atomic.complete", done, block=txn.block, op=txn.kind,
                   chain=txn.chain, local=False, policy=policy.value)
        self.sim.schedule(self.config.timing.controller_occupancy,
                          txn.callback, result)

    def _apply_completion(self, txn: Transaction, reply: Message) -> Any:
        kind = txn.kind
        op = txn.op
        block = txn.block
        data = reply.payload.get("data")

        if kind == "load":
            offset = self.machine.offset_of(op.addr)
            self._install(block, LineState.SHARED, data)
            self.machine.stats.note_access(op.addr, self.node, False)
            return data[offset]

        if kind == "ll_inv":
            offset = self.machine.offset_of(op.addr)
            self._install(block, LineState.SHARED, data)
            self._grant_reservation(block, op.addr)
            self.machine.stats.note_access(op.addr, self.node, False)
            return LLValue(data[offset])

        if kind in ("lx", "store", "faa", "cas"):
            return self._complete_exclusive(txn, reply, data)

        if kind == "sc_inv":
            return self._complete_sc_inv(txn, reply, data)

        if kind.startswith("sync_"):
            return self._complete_sync(txn, reply, data)

        raise ProtocolError(f"unknown transaction kind {kind!r}")

    def _complete_exclusive(
        self, txn: Transaction, reply: Message, data: list[int]
    ) -> Any:
        """Install an exclusive copy and run the operation locally."""
        if reply.mtype is not MessageType.DATA_X:
            raise ProtocolError(f"{txn.kind} expected DATA_X, got {reply}")
        op = txn.op
        offset = self.machine.offset_of(op.addr)
        line_data = list(data)
        kind = txn.kind
        if kind == "lx":
            result: Any = line_data[offset]
            dirty = False
            is_write = False
        elif kind == "store":
            line_data[offset] = op.value
            result = None
            dirty = True
            is_write = True
        elif kind == "faa":
            old = line_data[offset]
            line_data[offset] = apply_phi(op.phi, old, op.operand)
            result = old
            dirty = True
            is_write = True
        else:  # cas (plain INV: compare locally on the fresh copy)
            old = line_data[offset]
            success = old == op.expected
            if success:
                line_data[offset] = op.new
            result = CasResult(success, old)
            dirty = success
            is_write = success
        self._install(txn.block, LineState.EXCLUSIVE, line_data, dirty=dirty)
        self.machine.stats.note_access(op.addr, self.node, is_write)
        return result

    def _complete_sc_inv(
        self, txn: Transaction, reply: Message, data: Any
    ) -> bool:
        """INV-policy store_conditional arbitration came back."""
        op = txn.op
        self._revoke_reservation("sc_consumed")
        if reply.mtype is MessageType.SC_FAIL:
            return False
        if not reply.payload.get("sc_grant"):
            raise ProtocolError(f"sc_inv expected SC grant, got {reply}")
        line = self.cache.lookup(txn.block, touch=False)
        if line is None:
            raise ProtocolError("SC granted but the shared copy vanished")
        offset = self.machine.offset_of(op.addr)
        self._emit_transition(txn.block, line.state, LineState.EXCLUSIVE)
        line.state = LineState.EXCLUSIVE
        line.write_word(offset, op.value)
        self.machine.stats.note_access(op.addr, self.node, True)
        return True

    def _complete_sync(self, txn: Transaction, reply: Message, data: Any) -> Any:
        """Memory-side operation finished (UNC/UPD/INVd/INVs)."""
        op = txn.op
        kind = txn.kind
        offset = self.machine.offset_of(op.addr)

        if reply.mtype is MessageType.DATA_X and reply.payload.get("cas_granted"):
            # INVd/INVs comparison succeeded: we take the line exclusive
            # and apply the new value here.
            line_data = list(data)
            old = reply.payload.get("old", line_data[offset])
            line_data[offset] = op.new
            self._install(txn.block, LineState.EXCLUSIVE, line_data, dirty=True)
            return CasResult(True, old)

        if reply.mtype is MessageType.CAS_FAIL:
            # INVd failure answered directly by the owner; no copy for us.
            return CasResult(False, reply.payload.get("old", 0))

        if reply.mtype is not MessageType.SYNC_REPLY:
            raise ProtocolError(f"{kind} expected SYNC_REPLY, got {reply}")

        if data is not None:
            # UPD result or INVs failure: we hold/refresh a shared copy.
            self._install(txn.block, LineState.SHARED, data)

        result = reply.payload.get("result")
        if kind == "sync_ll":
            _tag, value, token, doomed = result
            self._grant_reservation(txn.block, op.addr, token=token,
                                    doomed=doomed)
            return LLValue(value, token=token, doomed=doomed)
        if kind == "sync_sc":
            return result[1]
        if kind == "sync_cas":
            _tag, success, old = result
            return CasResult(success, old)
        return result

    def _install(
        self, block: int, state: LineState, data: list[int], dirty: bool = False
    ) -> None:
        """Install a line, writing back or dropping any evicted victim."""
        if self.events.active:
            prev = self.cache.lookup(block, touch=False)
            self._emit_transition(
                block, prev.state if prev is not None else None, state
            )
        victim = self.cache.install(block, state, data, dirty=dirty)
        if victim is None:
            return
        self._emit_transition(victim.block, victim.state, None)
        if victim.state is LineState.EXCLUSIVE:
            self._send_unsolicited(MessageType.WB, victim.block,
                                   data=victim.data)
        else:
            self._send_unsolicited(MessageType.DROP, victim.block)
        if self.reservation.block == victim.block:
            self._revoke_reservation("evicted")
