"""The home-node protocol engine: directory plus memory-side atomics.

Every message addressed to a node's HOME unit passes through the node's
queued memory module (FIFO, ``memory_service`` cycles each) and is then
interpreted here.  The engine implements:

* the base write-invalidate protocol (GETS/GETX with ownership transfer
  *through the home*, giving the paper's Table 1 serialized-message
  counts: 2 to an uncached line, 3 to a remote-shared line, 4 to a
  remote-exclusive line);
* the write-update (UPD) and uncached (UNC) handling of synchronization
  variables, with fetch_and_phi / compare_and_swap / load_linked /
  store_conditional executed by the memory module;
* the INVd / INVs compare_and_swap variants, where the comparison runs at
  the home (or is delegated to the owner) so a failing CAS does not
  invalidate cached copies;
* the in-memory reservation bookkeeping for LL/SC (pluggable strategy);
* the drop_copy race: a recall that finds the owner gone produces an
  owner→requester NAK and leaves the entry busy until the in-flight
  writeback lands.

The directory entry is *blocking per block*: requests arriving during an
ownership transfer queue FIFO on the entry and replay when it completes.
"""

from __future__ import annotations

from typing import Any

from ..errors import ProtocolError
from ..memory.directory import Directory, DirState
from ..memory.module import MemoryModule
from ..memory.reservations import ReservationTable
from ..network.mesh import WormholeMesh
from ..network.message import Message, MessageType, Unit
from ..primitives.semantics import apply_phi
from .policy import SyncPolicy

__all__ = ["HomeNode"]

_REQUESTS = frozenset(
    {
        MessageType.GETS,
        MessageType.GETX,
        MessageType.SYNC_REQ,
        MessageType.SC_REQ,
    }
)

# Home-bound message types that are fully consumed by their dispatch
# handler: never parked in ``entry.pending`` (that holds the *request*),
# ``entry.waiters`` (requests only), or an MSHR — so their shells can go
# back to the message pool immediately after dispatch.
_CONSUMED = frozenset(
    {
        MessageType.FLUSH_REPLY,
        MessageType.SHARE_WB,
        MessageType.FLUSH_NAK,
        MessageType.WB,
        MessageType.DROP,
    }
)


class HomeNode:
    """Directory controller + memory-side ALU for one node's memory."""

    def __init__(
        self,
        node: int,
        mesh: WormholeMesh,
        memory: MemoryModule,
        directory: Directory,
        reservations: ReservationTable,
        machine: Any,
    ) -> None:
        self.node = node
        self.mesh = mesh
        self.memory = memory
        self.directory = directory
        self.reservations = reservations
        self.machine = machine
        self.events = mesh.events
        registry = getattr(machine, "registry", None)
        if registry is None:
            from ..obs.registry import MetricsRegistry
            registry = MetricsRegistry()
        self._requests = registry.counter(f"home.{node}.requests")
        self._queued = registry.counter(f"home.{node}.queued")
        self._registry = registry
        # Imprecise sharer representations (limited-pointer, coarse
        # vector) can fan invalidations/updates out beyond the true
        # sharers; those extras are counted lazily so an exact directory
        # publishes an unchanged metric set.
        self._imprecise = directory.imprecise
        self._c_spurious = None
        self._c_fanouts = None
        self._service = memory.service
        self._t_directory = memory.config.timing.directory_service
        self.faults = getattr(machine, "faults", None)
        mesh.register(node, Unit.HOME, self.handle)

    # ------------------------------------------------------------------
    # Delivery and dispatch.
    # ------------------------------------------------------------------

    def handle(self, msg: Message) -> None:
        """Network delivery: queue the message at the memory module.

        Drop notices only touch directory state (no DRAM data), so they
        occupy the module for the shorter directory-service time.
        """
        self._requests.value += 1
        faults = self.faults
        if (faults is not None and msg.mtype in _REQUESTS
                and faults.home_nak(self.node)):
            # Transient busy-NAK: the home pretends to be occupied and
            # retries the request after the penalty.  The replay goes
            # straight to the memory queue (not back through handle),
            # so each message is NAK'd at most once and the retry can
            # never starve — termination is preserved by construction.
            self.machine.sim.schedule(
                faults.plan.home_nak_penalty, self._replay_nak, msg
            )
            return
        if msg.mtype is MessageType.DROP:
            self._service(self._process, msg, service_time=self._t_directory,
                          txn=msg.txn, block=msg.block, mtype="DROP",
                          requester=msg.requester)
        else:
            self._service(self._process, msg, txn=msg.txn,
                          block=msg.block, mtype=msg.mtype.value,
                          requester=msg.requester)

    def _replay_nak(self, msg: Message) -> None:
        """Re-queue a busy-NAK'd request at the memory module."""
        self._service(self._process, msg, txn=msg.txn, block=msg.block,
                      mtype=msg.mtype.value, requester=msg.requester)

    def _account_fanout(self, entry: Any, others: list, requester: int) -> None:
        """Count fan-out beyond the exact sharers (imprecise directories).

        Called before the entry mutates, with the targets about to be
        multicast.  ``spurious_targets`` counts messages sent to nodes
        that hold no copy; ``imprecise_fanouts`` counts multicasts issued
        while the representation had lost per-node precision.  Both
        counters are created on first use so exact-equivalent
        configurations (e.g. enough pointers) publish identical metrics.
        """
        sharers = entry.sharers
        extra = len(others) - sharers.exact_targets(requester)
        if extra:
            if self._c_spurious is None:
                self._c_spurious = self._registry.counter(
                    f"home.{self.node}.spurious_targets"
                )
            self._c_spurious.value += extra
        if sharers.overflowed:
            if self._c_fanouts is None:
                self._c_fanouts = self._registry.counter(
                    f"home.{self.node}.imprecise_fanouts"
                )
            self._c_fanouts.value += 1

    def _process(self, msg: Message) -> None:
        mtype = msg.mtype
        if mtype in _REQUESTS:
            entry = self.directory.entry(msg.block)
            if entry.busy:
                self._queued.value += 1
                if self.events.active:
                    holder = (entry.pending.requester
                              if entry.pending is not None else None)
                    self.events.emit(
                        "dir.queue.enter", self.machine.sim.now,
                        node=self.node, block=msg.block, mtype=mtype.value,
                        requester=msg.requester,
                        depth=len(entry.waiters) + 1, holder=holder,
                    )
                entry.waiters.append(msg)
                return
            self._dispatch(msg)
        else:
            self._dispatch(msg)
            if mtype in _CONSUMED:
                Message.release(msg)

    def _dispatch(self, msg: Message) -> None:
        mtype = msg.mtype
        if mtype is MessageType.GETS:
            self._gets(msg)
        elif mtype is MessageType.GETX:
            self._getx(msg)
        elif mtype is MessageType.SYNC_REQ:
            self._sync_req(msg)
        elif mtype is MessageType.SC_REQ:
            self._sc_req(msg)
        elif mtype is MessageType.FLUSH_REPLY:
            self._flush_reply(msg)
        elif mtype is MessageType.SHARE_WB:
            self._share_wb(msg)
        elif mtype is MessageType.FLUSH_NAK:
            self._flush_nak(msg)
        elif mtype is MessageType.WB:
            self._wb(msg)
        elif mtype is MessageType.DROP:
            self._drop(msg)
        else:
            raise ProtocolError(f"home {self.node} cannot handle {msg}")

    # ------------------------------------------------------------------
    # Helpers.
    # ------------------------------------------------------------------

    def _send(
        self,
        prev: Message,
        mtype: MessageType,
        dst: int,
        unit: Unit,
        **payload: Any,
    ) -> None:
        """Send the next protocol message, extending the serialized chain.

        Node-local hops (home and destination on the same node) do not
        cross the network and do not lengthen the chain.
        """
        chain = prev.chain + (1 if dst != self.node else 0)
        self.mesh.send(
            Message.acquire(
                mtype, self.node, dst, unit, prev.block,
                txn=prev.txn, chain=chain, requester=prev.requester,
                payload=payload,
            )
        )

    def _unbusy(self, block: int) -> None:
        """Release the entry and replay queued requests in order.

        Replayed requests re-enter the memory service queue (they access
        the directory again), which also gives a freshly granted owner the
        cycles it needs to perform its local atomic operation before the
        next recall arrives.
        """
        entry = self.directory.entry(block)
        entry.busy = False
        entry.pending = None
        if entry.waiters:
            waiters = list(entry.waiters)
            entry.waiters.clear()
            bus = self.events
            for msg in waiters:
                if bus.active:
                    bus.emit("dir.queue.leave", self.machine.sim.now,
                             node=self.node, block=msg.block,
                             mtype=msg.mtype.value, requester=msg.requester)
                self.memory.service(self._process, msg, txn=msg.txn,
                                    block=msg.block, mtype=msg.mtype.value,
                                    requester=msg.requester)

    def _note(self, msg: Message, is_write: bool) -> None:
        """Record a memory-side access for sharing-pattern statistics."""
        addr = msg.payload.get("addr")
        if addr is not None:
            self.machine.stats.note_access(addr, msg.requester, is_write)

    # ------------------------------------------------------------------
    # Base write-invalidate protocol.
    # ------------------------------------------------------------------

    def _gets(self, msg: Message) -> None:
        entry = self.directory.entry(msg.block)
        requester = msg.requester
        if entry.state in (DirState.UNCACHED, DirState.SHARED):
            entry.add_sharer(requester)
            data = self.memory.read_block(msg.block)
            self._send(msg, MessageType.DATA_S, requester, Unit.CACHE, data=data)
            return
        # EXCLUSIVE: recall through the home.
        if entry.owner == requester:
            raise ProtocolError(
                f"GETS from {requester} but directory says it owns block "
                f"{msg.block}"
            )
        entry.busy = True
        entry.pending = msg
        self._send(msg, MessageType.DOWNGRADE_REQ, entry.owner, Unit.CACHE)

    def _getx(self, msg: Message) -> None:
        entry = self.directory.entry(msg.block)
        requester = msg.requester
        if entry.state is DirState.UNCACHED:
            entry.set_exclusive(requester)
            data = self.memory.read_block(msg.block)
            self._send(
                msg, MessageType.DATA_X, requester, Unit.CACHE, data=data, acks=0
            )
            return
        if entry.state is DirState.SHARED:
            others = entry.targets(requester)
            if self._imprecise:
                self._account_fanout(entry, others, requester)
            entry.set_exclusive(requester)
            for sharer in others:
                self._send(msg, MessageType.INV, sharer, Unit.CACHE)
            data = self.memory.read_block(msg.block)
            self._send(
                msg,
                MessageType.DATA_X,
                requester,
                Unit.CACHE,
                data=data,
                acks=len(others),
            )
            return
        # EXCLUSIVE elsewhere: recall through the home.
        if entry.owner == requester:
            raise ProtocolError(
                f"GETX from {requester} but directory says it owns block "
                f"{msg.block}"
            )
        entry.busy = True
        entry.pending = msg
        self._send(msg, MessageType.FLUSH_REQ, entry.owner, Unit.CACHE)

    def _flush_reply(self, msg: Message) -> None:
        """Owner surrendered an exclusive line (recall or delegated CAS)."""
        entry = self.directory.entry(msg.block)
        self.memory.write_block(msg.block, msg.payload["data"])
        pending = entry.pending
        if pending is None:
            raise ProtocolError(f"unexpected FLUSH_REPLY for block {msg.block}")
        requester = pending.requester
        data = self.memory.read_block(msg.block)
        if pending.mtype is MessageType.GETX:
            entry.set_exclusive(requester)
            self._send(msg, MessageType.DATA_X, requester, Unit.CACHE, data=data, acks=0)
        elif pending.mtype is MessageType.SYNC_REQ:
            # Delegated INVd/INVs CAS that succeeded at the owner: grant
            # the requester an exclusive copy; it applies the new value.
            if not msg.payload.get("cas_ok"):
                raise ProtocolError("FLUSH_REPLY for SYNC_REQ without cas_ok")
            entry.set_exclusive(requester)
            self._note(pending, is_write=True)
            self._send(
                msg,
                MessageType.DATA_X,
                requester,
                Unit.CACHE,
                data=data,
                acks=0,
                cas_granted=True,
                old=msg.payload.get("old"),
            )
        else:
            raise ProtocolError(f"FLUSH_REPLY while pending {pending.mtype}")
        self._unbusy(msg.block)

    def _share_wb(self, msg: Message) -> None:
        """Owner demoted its exclusive line to shared."""
        entry = self.directory.entry(msg.block)
        self.memory.write_block(msg.block, msg.payload["data"])
        pending = entry.pending
        if pending is None:
            raise ProtocolError(f"unexpected SHARE_WB for block {msg.block}")
        requester = pending.requester
        entry.set_shared({msg.src})
        data = self.memory.read_block(msg.block)
        if pending.mtype is MessageType.GETS:
            entry.add_sharer(requester)
            self._send(msg, MessageType.DATA_S, requester, Unit.CACHE, data=data)
        elif pending.mtype is MessageType.SYNC_REQ:
            # Delegated INVs CAS that failed at the owner: requester gets a
            # read-only copy along with the failure result.
            self._note(pending, is_write=False)
            entry.add_sharer(requester)
            self._send(
                msg,
                MessageType.SYNC_REPLY,
                requester,
                Unit.CACHE,
                result=("cas", False, msg.payload.get("old")),
                data=data,
                acks=0,
            )
        else:
            raise ProtocolError(f"SHARE_WB while pending {pending.mtype}")
        self._unbusy(msg.block)

    def _flush_nak(self, msg: Message) -> None:
        """The owner could not serve a recall.

        ``reason == "cas_fail"``: a delegated INVd comparison failed; the
        owner kept its line and answered the requester directly — just
        release the entry.  ``reason == "gone"``: the owner dropped or
        evicted the line; its writeback is in flight (or already here), and
        the entry stays busy until the writeback lands.
        """
        entry = self.directory.entry(msg.block)
        if entry.pending is None:
            raise ProtocolError(f"unexpected FLUSH_NAK for block {msg.block}")
        entry.pending = None
        if msg.payload.get("reason") == "cas_fail":
            self._unbusy(msg.block)
            return
        if entry.state is DirState.UNCACHED:
            # The writeback overtook the NAK and was already applied.
            self._unbusy(msg.block)
        else:
            entry.awaiting_wb = True

    def _wb(self, msg: Message) -> None:
        """Writeback of a dirty exclusive line (drop_copy or eviction)."""
        entry = self.directory.entry(msg.block)
        self.memory.write_block(msg.block, msg.payload["data"])
        if entry.state is DirState.EXCLUSIVE and entry.owner == msg.src:
            entry.set_uncached()
        if entry.awaiting_wb:
            entry.awaiting_wb = False
            self._unbusy(msg.block)

    def _drop(self, msg: Message) -> None:
        """Notice that a shared copy was dropped or evicted."""
        entry = self.directory.entry(msg.block)
        if entry.state is DirState.SHARED:
            entry.remove_sharer(msg.src)

    # ------------------------------------------------------------------
    # INV-policy store_conditional arbitration.
    # ------------------------------------------------------------------

    def _sc_req(self, msg: Message) -> None:
        """store_conditional from a cache holding a shared copy.

        Succeeds only if the directory still shows the line shared with the
        requester among the sharers; the write is then granted and every
        other copy is invalidated.  If the line went exclusive or uncached
        in the meantime, some other write serialized first, so the
        store_conditional must fail (paper §3).
        """
        entry = self.directory.entry(msg.block)
        requester = msg.requester
        if entry.state is DirState.SHARED and entry.is_sharer(requester):
            others = entry.targets(requester)
            if self._imprecise:
                self._account_fanout(entry, others, requester)
            entry.set_exclusive(requester)
            for sharer in others:
                self._send(msg, MessageType.INV, sharer, Unit.CACHE)
            self._note(msg, is_write=True)
            self._send(
                msg,
                MessageType.DATA_X,
                requester,
                Unit.CACHE,
                data=None,
                acks=len(others),
                sc_grant=True,
            )
        else:
            self._note(msg, is_write=False)
            self._send(msg, MessageType.SC_FAIL, requester, Unit.CACHE)

    # ------------------------------------------------------------------
    # Memory-side operations (UNC, UPD, and INVd/INVs CAS).
    # ------------------------------------------------------------------

    def _sync_req(self, msg: Message) -> None:
        policy = self.machine.policy_of(msg.block)
        kind = msg.payload["kind"]
        if policy is SyncPolicy.UNC:
            self._sync_unc(msg, kind)
        elif policy is SyncPolicy.UPD:
            self._sync_upd(msg, kind)
        elif policy in (SyncPolicy.INVD, SyncPolicy.INVS) and kind == "cas":
            self._sync_cas_variant(msg, policy)
        else:
            raise ProtocolError(
                f"SYNC_REQ kind={kind!r} not valid under policy {policy}"
            )

    def _apply_op(self, msg: Message, kind: str) -> tuple[Any, bool]:
        """Execute one memory-side operation on the block's word.

        Returns ``(result, wrote)`` where ``wrote`` is True if the stored
        word's value actually changed (a same-value store keeps copies
        coherent without any update traffic).  Reservations die on *any*
        write, including same-value ones.
        """
        block, offset = msg.block, msg.payload["offset"]
        old = self.memory.read_word(block, offset)
        if kind == "load":
            return old, False
        if kind == "store":
            value = msg.payload["value"]
            self.memory.write_word(block, offset, value)
            self.reservations.write(block)
            return None, value != old
        if kind == "faa":
            new = apply_phi(msg.payload["phi"], old, msg.payload["operand"])
            self.memory.write_word(block, offset, new)
            self.reservations.write(block)
            return old, new != old
        if kind == "cas":
            expected, new = msg.payload["expected"], msg.payload["new"]
            if old == expected:
                self.memory.write_word(block, offset, new)
                self.reservations.write(block)
                return ("cas", True, old), new != old
            return ("cas", False, old), False
        if kind == "ll":
            grant = self.reservations.load_linked(msg.requester, block)
            if self.events.active:
                self.events.emit("res.grant", self.machine.sim.now,
                                 node=self.node, block=block,
                                 requester=msg.requester, doomed=grant.doomed,
                                 memory_side=True)
            return ("ll", old, grant.token, grant.doomed), False
        if kind == "sc":
            value, token = msg.payload["value"], msg.payload.get("token")
            if self.reservations.consume(msg.requester, block, token):
                self.memory.write_word(block, offset, value)
                if self.events.active:
                    self.events.emit("res.revoke", self.machine.sim.now,
                                     node=self.node, block=block,
                                     requester=msg.requester,
                                     reason="sc_consumed", memory_side=True)
                return ("sc", True), value != old
            return ("sc", False), False
        raise ProtocolError(f"unknown memory-side op kind {kind!r}")

    @staticmethod
    def _op_is_write(kind: str, result: Any) -> bool:
        """Whether the executed memory-side op counts as a write access."""
        if kind in ("store", "faa"):
            return True
        if kind in ("cas", "sc"):
            return bool(result[1])
        return False

    def _sync_unc(self, msg: Message, kind: str) -> None:
        """Uncached operation: execute at memory, reply; never any copies."""
        result, _wrote = self._apply_op(msg, kind)
        self._note(msg, self._op_is_write(kind, result))
        self._send(
            msg,
            MessageType.SYNC_REPLY,
            msg.requester,
            Unit.CACHE,
            result=result,
            data=None,
            acks=0,
        )

    def _sync_upd(self, msg: Message, kind: str) -> None:
        """Write-update operation: execute at memory, multicast updates.

        The requester retains (or acquires) a shared copy; every other
        sharer receives the new block contents and acknowledges directly to
        the requester.
        """
        entry = self.directory.entry(msg.block)
        requester = msg.requester
        result, wrote = self._apply_op(msg, kind)
        self._note(msg, self._op_is_write(kind, result))
        others = entry.targets(requester)
        if wrote and self._imprecise:
            self._account_fanout(entry, others, requester)
        entry.add_sharer(requester)
        data = self.memory.read_block(msg.block)
        acks = 0
        if wrote:
            for sharer in others:
                self._send(msg, MessageType.UPDATE, sharer, Unit.CACHE, data=data)
            acks = len(others)
        self._send(
            msg,
            MessageType.SYNC_REPLY,
            requester,
            Unit.CACHE,
            result=result,
            data=data,
            acks=acks,
        )

    def _sync_cas_variant(self, msg: Message, policy: SyncPolicy) -> None:
        """INVd/INVs compare_and_swap with the comparison at home or owner."""
        entry = self.directory.entry(msg.block)
        requester = msg.requester
        offset = msg.payload["offset"]
        expected, new = msg.payload["expected"], msg.payload["new"]

        if entry.state is DirState.EXCLUSIVE:
            if entry.owner == requester:
                raise ProtocolError(
                    f"INVd/INVs CAS from {requester} which owns block {msg.block}"
                )
            # The owner has the most up-to-date copy: delegate the compare.
            entry.busy = True
            entry.pending = msg
            self._send(
                msg,
                MessageType.CAS_CMP,
                entry.owner,
                Unit.CACHE,
                offset=offset,
                expected=expected,
                new=new,
                variant=policy.value,
            )
            return

        # Home memory is current: compare here.
        old = self.memory.read_word(msg.block, offset)
        if old == expected:
            # Success: behave like INV — grant an exclusive copy; the
            # requester's cache applies the new value.
            others = entry.targets(requester)
            if self._imprecise:
                self._account_fanout(entry, others, requester)
            entry.set_exclusive(requester)
            for sharer in others:
                self._send(msg, MessageType.INV, sharer, Unit.CACHE)
            self._note(msg, is_write=True)
            data = self.memory.read_block(msg.block)
            self._send(
                msg,
                MessageType.DATA_X,
                requester,
                Unit.CACHE,
                data=data,
                acks=len(others),
                cas_granted=True,
                old=old,
            )
            return

        # Failure: do not disturb existing copies.
        self._note(msg, is_write=False)
        if policy is SyncPolicy.INVD:
            self._send(
                msg,
                MessageType.SYNC_REPLY,
                requester,
                Unit.CACHE,
                result=("cas", False, old),
                data=None,
                acks=0,
            )
        else:  # INVs: grant a read-only copy alongside the failure.
            entry.add_sharer(requester)
            data = self.memory.read_block(msg.block)
            self._send(
                msg,
                MessageType.SYNC_REPLY,
                requester,
                Unit.CACHE,
                result=("cas", False, old),
                data=data,
                acks=0,
            )
