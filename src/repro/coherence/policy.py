"""Coherence policies for atomically-accessed data.

Ordinary data always uses the base write-invalidate protocol.  Blocks
holding synchronization variables are registered with one of these
policies, which select both *where* atomic primitives execute and *how*
copies are kept coherent (paper §3):

* ``INV`` — computation in the cache controller, write-invalidate.
* ``INVD`` / ``INVS`` — INV variants for compare_and_swap in which the
  comparison happens at the home or owner; on failure the requester is
  denied a copy (INVd) or granted a read-only copy (INVs), so a failing
  CAS does not invalidate other caches' copies.
* ``UPD`` — computation at the memory, write-update.
* ``UNC`` — computation at the memory, caching disabled.
"""

from __future__ import annotations

import enum

__all__ = ["SyncPolicy"]


class SyncPolicy(enum.Enum):
    """Per-block policy for synchronization variables."""

    INV = "INV"
    INVD = "INVd"
    INVS = "INVs"
    UPD = "UPD"
    UNC = "UNC"

    @property
    def cached(self) -> bool:
        """True if the policy allows the block in caches at all."""
        return self is not SyncPolicy.UNC

    @property
    def invalidate_family(self) -> bool:
        """True for INV and its CAS variants."""
        return self in (SyncPolicy.INV, SyncPolicy.INVD, SyncPolicy.INVS)

    @property
    def memory_side(self) -> bool:
        """True when atomic computation happens at the memory module."""
        return self in (SyncPolicy.UPD, SyncPolicy.UNC)
