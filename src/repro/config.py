"""Simulation configuration.

Three layers of configuration mirror the structure of the simulated
machine:

* :class:`TimingConfig` — latency constants of the memory system and the
  2-D wormhole mesh.  The defaults model an early-1990s DSM machine of the
  DASH class (the paper's back end): single-cycle cache hits, a 20-cycle
  queued memory, 2-cycle network hops, and 64-bit flits.
* :class:`MachineConfig` — structural parameters: number of nodes, block
  size, cache geometry.
* :class:`SimConfig` — the top-level bundle, plus cross-cutting knobs such
  as the in-memory LL/SC reservation strategy.

All values are plain integers so experiment sweeps can construct variants
with :func:`dataclasses.replace`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigError
from .faults.plan import FaultPlan

__all__ = [
    "TimingConfig",
    "MachineConfig",
    "SimConfig",
    "DEFAULT_CONFIG",
    "small_config",
    "scale_config",
    "balanced_width",
]


def balanced_width(n_nodes: int) -> int:
    """Largest divisor of ``n_nodes`` that is at most its square root.

    This is the most factor-balanced grid shape with ``width <= height``
    and no dead positions: 64 -> 8 (8x8), 1000 -> 25 (25x40), primes
    degenerate to a 1-wide chain.  Used as the default mesh/torus width.
    """
    if n_nodes < 1:
        return 1
    for width in range(math.isqrt(n_nodes), 0, -1):
        if n_nodes % width == 0:
            return width
    return 1


@dataclass(frozen=True)
class TimingConfig:
    """Latency constants, in processor cycles.

    Attributes:
        cache_hit: Latency of a load/store that hits in the local cache.
        controller_occupancy: Time the cache controller spends on each
            protocol action (installing a line, applying an update, ...).
        memory_service: Service time of one request at a memory module.
            Memory is *queued*: concurrent requests to the same module
            serialize, each paying this service time (plus waiting time).
        hop_cycles: Per-hop latency of the wormhole mesh.
        flit_cycles: Cycles per flit at the network entry and exit ports.
            Following the paper, contention is modeled at the entry and
            exit of the network only, not at internal switches.
        header_flits: Size of a request/control message, in flits.
        local_access: Latency for a cache-to-local-memory access that does
            not cross the network (the home node is the requesting node).
        directory_service: Service time for directory-only notices (a
            shared-copy drop) that touch no DRAM data.
    """

    cache_hit: int = 1
    controller_occupancy: int = 4
    memory_service: int = 20
    hop_cycles: int = 2
    flit_cycles: int = 1
    header_flits: int = 1
    local_access: int = 2
    directory_service: int = 6

    def validate(self) -> None:
        """Raise :class:`ConfigError` if any latency is non-positive."""
        for name in (
            "cache_hit",
            "controller_occupancy",
            "memory_service",
            "hop_cycles",
            "flit_cycles",
            "header_flits",
            "local_access",
            "directory_service",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"timing parameter {name!r} must be positive")


@dataclass(frozen=True)
class MachineConfig:
    """Structural parameters of the simulated multiprocessor.

    Attributes:
        n_nodes: Number of processing nodes.  Each node has one processor,
            one cache, one memory module (a slice of the distributed
            memory), and one mesh network interface.  Must be a positive
            integer; the mesh is laid out as close to square as possible.
        block_size: Cache block (line) size in bytes.  The paper uses 32.
        word_size: Word size in bytes.  Atomic primitives operate on words.
        cache_sets: Number of sets per cache.
        cache_assoc: Associativity of each cache.
        topology: Interconnect shape: ``"mesh"`` (the paper's 2-D
            wormhole mesh) or ``"torus"`` (same grid with wraparound
            links, halving worst-case distances on large machines).
        directory: Sharer-set representation kept per directory entry:
            ``"full"`` (exact bit vector, the paper's machine),
            ``"limited"`` (Dir_i_B: up to ``dir_pointers`` precise
            pointers, broadcast on overflow), or ``"coarse"`` (one
            presence bit per ``dir_region`` nodes).  Protocol decisions
            and final values are identical across representations; the
            imprecise ones send more invalidations/updates (see
            ``docs/scaling.md``).
        dir_pointers: Pointer capacity for ``directory="limited"``.
        dir_region: Region size (nodes per bit) for ``directory="coarse"``.
    """

    n_nodes: int = 64
    block_size: int = 32
    word_size: int = 4
    cache_sets: int = 256
    cache_assoc: int = 4
    topology: str = "mesh"
    directory: str = "full"
    dir_pointers: int = 8
    dir_region: int = 8

    _TOPOLOGIES = ("mesh", "torus")
    _DIRECTORIES = ("full", "limited", "coarse")

    def validate(self) -> None:
        """Raise :class:`ConfigError` on structural inconsistencies."""
        if self.n_nodes < 1:
            raise ConfigError("n_nodes must be >= 1")
        if self.topology not in self._TOPOLOGIES:
            raise ConfigError(
                f"topology must be one of {self._TOPOLOGIES}, "
                f"got {self.topology!r}"
            )
        if self.directory not in self._DIRECTORIES:
            raise ConfigError(
                f"directory must be one of {self._DIRECTORIES}, "
                f"got {self.directory!r}"
            )
        if self.dir_pointers < 1:
            raise ConfigError("dir_pointers must be >= 1")
        if self.dir_region < 1:
            raise ConfigError("dir_region must be >= 1")
        if self.block_size <= 0 or self.block_size & (self.block_size - 1):
            raise ConfigError("block_size must be a positive power of two")
        if self.word_size <= 0 or self.word_size & (self.word_size - 1):
            raise ConfigError("word_size must be a positive power of two")
        if self.block_size % self.word_size:
            raise ConfigError("block_size must be a multiple of word_size")
        if self.cache_sets <= 0 or self.cache_assoc <= 0:
            raise ConfigError("cache geometry must be positive")

    @property
    def words_per_block(self) -> int:
        """Number of words in one cache block."""
        return self.block_size // self.word_size

    @property
    def block_bits(self) -> int:
        """log2(block_size); the block offset width of an address."""
        return self.block_size.bit_length() - 1

    @property
    def mesh_width(self) -> int:
        """Width of the most factor-balanced 2-D grid (no dead spots)."""
        return balanced_width(self.n_nodes)

    @property
    def mesh_height(self) -> int:
        """Height of the 2-D grid (``ceil(n_nodes / width)``)."""
        return -(-self.n_nodes // self.mesh_width)

    @property
    def directory_label(self) -> str:
        """Compact representation tag for envelopes: ``full``,
        ``limited:<pointers>``, or ``coarse:<region>``."""
        if self.directory == "limited":
            return f"limited:{self.dir_pointers}"
        if self.directory == "coarse":
            return f"coarse:{self.dir_region}"
        return self.directory

    def data_flits(self, timing: TimingConfig) -> int:
        """Size of a data-carrying message, in flits.

        A data message carries a header plus one cache block.  Flits are
        sized to one word of the mesh datapath (8 bytes).
        """
        flit_bytes = 8
        return timing.header_flits + -(-self.block_size // flit_bytes)


@dataclass(frozen=True)
class SimConfig:
    """Top-level simulation configuration.

    Attributes:
        machine: Structural parameters.
        timing: Latency constants.
        reservation_strategy: How in-memory LL/SC reservations are kept:
            ``"bitvector"`` (one bit per processor per block),
            ``"limited"`` (at most ``reservation_limit`` concurrent
            reservations; later load_linked's are told they will fail),
            ``"serial"`` (per-block write serial numbers; store_conditional
            carries the expected serial number — the paper's preferred
            option, Section 3.1), or ``"linkedlist"`` (per-block reserver
            lists drawn from a bounded free list, the paper's second
            option).
        reservation_limit: Capacity for the ``"limited"`` strategy.
        spurious_sc_rate: Probability that a store_conditional finds its
            reservation spuriously invalidated (paper §2.1: real
            processors lose reservations to context switches and TLB
            exceptions, e.g. the R4000's LLbit).  0.0 (default) models
            the idealized semantics; raise it for fault-injection tests
            of retry loops.  Deterministic given the seed.
        seed: Seed for the deterministic per-processor RNGs used by
            backoff code in simulated programs.
        faults: Optional :class:`repro.faults.plan.FaultPlan`.  ``None``
            (default) or an all-zero plan builds no injector at all, so
            the run is bit-identical to a fault-free machine; an active
            plan perturbs delivery delay, DROP duplication, home
            occupancy, reservations, and processor issue timing —
            deterministically, from the plan's own seed.
    """

    machine: MachineConfig = field(default_factory=MachineConfig)
    timing: TimingConfig = field(default_factory=TimingConfig)
    reservation_strategy: str = "bitvector"
    reservation_limit: int = 4
    spurious_sc_rate: float = 0.0
    seed: int = 12345
    faults: Optional[FaultPlan] = None

    _STRATEGIES = ("bitvector", "limited", "serial", "linkedlist")

    def validate(self) -> None:
        """Validate all sub-configurations; raise :class:`ConfigError`."""
        self.machine.validate()
        self.timing.validate()
        if self.reservation_strategy not in self._STRATEGIES:
            raise ConfigError(
                f"reservation_strategy must be one of {self._STRATEGIES}, "
                f"got {self.reservation_strategy!r}"
            )
        if self.reservation_limit < 1:
            raise ConfigError("reservation_limit must be >= 1")
        if not 0.0 <= self.spurious_sc_rate < 1.0:
            raise ConfigError("spurious_sc_rate must be in [0, 1)")
        if self.faults is not None:
            self.faults.validate()

    def with_nodes(self, n_nodes: int) -> "SimConfig":
        """Return a copy of this config with a different node count."""
        return replace(self, machine=replace(self.machine, n_nodes=n_nodes))


DEFAULT_CONFIG = SimConfig()
"""The paper's machine: 64 nodes, 32-byte blocks, queued memory, 2-D mesh."""


def small_config(n_nodes: int = 4, seed: int = 12345) -> SimConfig:
    """A small machine for unit tests: identical timing, fewer nodes."""
    return SimConfig(machine=MachineConfig(n_nodes=n_nodes), seed=seed)


def scale_config(
    n_nodes: int = 1024,
    topology: str = "mesh",
    directory: str = "limited",
    dir_pointers: int = 8,
    dir_region: int = 32,
) -> SimConfig:
    """A first-class large machine (16x16, 32x32, ...) for scaling runs.

    Defaults to the sparse directory a real 1024-node machine would use
    (Dir_8_B limited pointers); pass ``directory="full"`` to keep the
    paper's exact bit vector, or ``"coarse"`` for region bits (the
    default ``dir_region=32`` marks one 32x32-torus/mesh row per bit).
    Timing constants stay the paper's so results compare across sizes.
    """
    return SimConfig(
        machine=MachineConfig(
            n_nodes=n_nodes,
            topology=topology,
            directory=directory,
            dir_pointers=dir_pointers,
            dir_region=dir_region,
        )
    )
