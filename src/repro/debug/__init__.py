"""Debugging facilities: protocol tracing."""

from .trace import ProtocolTracer, TraceRecord

__all__ = ["ProtocolTracer", "TraceRecord"]
