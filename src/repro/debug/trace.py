"""Protocol message tracing.

A :class:`ProtocolTracer` attaches to a machine's event bus and records
every message (type, endpoints, block, serialized-chain depth, send and
delivery times), optionally filtered to a set of blocks.  Traces render
as a readable timeline — the tool you reach for when a coherence
transaction misbehaves.

.. code-block:: python

    tracer = ProtocolTracer(machine, blocks={machine.block_of(addr)})
    ...  # run programs
    print(tracer.render())

The tracer is a thin compatibility wrapper over the machine-wide
:class:`~repro.obs.events.EventBus` (it subscribes to ``msg.send``
events); any number of tracers can coexist, and each can be detached in
any order without disturbing the others.  For richer event kinds (cache
transitions, directory queueing, reservations) subscribe an
:class:`~repro.obs.events.EventRecorder` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

__all__ = ["TraceRecord", "ProtocolTracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced message."""

    sent: int
    delivered: int
    mtype: str
    src: int
    dst: int
    unit: str
    block: int
    chain: int
    requester: int

    def line(self) -> str:
        """One timeline row."""
        return (f"{self.sent:8d} ->{self.delivered:8d}  "
                f"{self.mtype:12s} {self.src:3d} -> {self.dst:3d} "
                f"({self.unit:5s}) block={self.block} chain={self.chain} "
                f"req={self.requester}")


class ProtocolTracer:
    """Records protocol messages flowing through one machine's mesh."""

    def __init__(
        self,
        machine: Any,
        blocks: Optional[Iterable[int]] = None,
        limit: int = 100_000,
    ) -> None:
        self.machine = machine
        self.blocks = set(blocks) if blocks is not None else None
        self.limit = limit
        self.records: list[TraceRecord] = []
        self.dropped = 0
        self._token: Optional[int] = machine.events.subscribe(
            self._on_event, kinds=("msg.send",)
        )

    def _on_event(self, event: Any) -> None:
        data = event.data
        if self.blocks is not None and data.get("block") not in self.blocks:
            return
        if len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(
            TraceRecord(
                sent=event.ts,
                delivered=data["delivered"],
                mtype=data["mtype"],
                src=data["src"],
                dst=data["dst"],
                unit=data["unit"],
                block=data["block"],
                chain=data["chain"],
                requester=data["requester"],
            )
        )

    def detach(self) -> None:
        """Stop tracing.  Safe to call in any order across tracers."""
        if self._token is not None:
            self.machine.events.unsubscribe(self._token)
            self._token = None

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def of_type(self, *mtypes: str) -> list[TraceRecord]:
        """Records whose message type is one of ``mtypes``."""
        return [r for r in self.records if r.mtype in mtypes]

    def between(self, start: int, end: int) -> list[TraceRecord]:
        """Records sent within ``[start, end]``."""
        return [r for r in self.records if start <= r.sent <= end]

    def transactions(self) -> dict[tuple[int, int], list[TraceRecord]]:
        """Group records by (requester, block)."""
        groups: dict[tuple[int, int], list[TraceRecord]] = {}
        for record in self.records:
            groups.setdefault((record.requester, record.block),
                              []).append(record)
        return groups

    def render(self, last: Optional[int] = None) -> str:
        """A text timeline of the trace (optionally only the tail)."""
        records = self.records if last is None else self.records[-last:]
        lines = [f"protocol trace: {len(self.records)} messages"
                 + (f" ({self.dropped} dropped)" if self.dropped else "")]
        lines += [record.line() for record in records]
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.records)
