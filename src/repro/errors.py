"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A simulation configuration is inconsistent or out of range."""


class SimulationError(ReproError):
    """The simulator reached an impossible or deadlocked state."""


class ProtocolError(SimulationError):
    """A coherence-protocol invariant was violated.

    Raised when a controller or directory receives a message that is not
    legal in its current state.  These indicate bugs in the protocol
    implementation rather than in user programs.
    """


class AddressError(ReproError):
    """An address is unmapped, misaligned, or outside the allocated space."""


class DeadlockError(SimulationError):
    """The event queue drained while processors were still blocked."""


class WorkerCrashError(SimulationError):
    """A harness worker process died without reporting a result.

    Raised by the sharded-run ``process`` backend (and wrapped by the
    sweep executor) when a worker's pipe closes unexpectedly or its
    process exits mid-window.  Deterministic simulations are safe to
    retry after this; see ``docs/robustness.md``.
    """


class WorkerHangError(SimulationError):
    """A harness worker exceeded its wall-clock watchdog while alive.

    Distinguished from :class:`WorkerCrashError` so callers can treat
    hangs (kill, then maybe retry) differently from crashes (already
    dead, retry immediately).
    """


class ProgramError(ReproError):
    """A simulated program performed an illegal operation.

    Examples: nesting ``load_linked`` pairs, issuing a ``store_conditional``
    for an address with an incompatible sync policy, or yielding an object
    that is not an operation.
    """
