"""Deterministic fault injection and chaos verification.

:mod:`repro.faults.plan` holds the declarative :class:`FaultPlan` and
the :class:`FaultInjector` the machine builds from it;
:mod:`repro.faults.chaos` is the ``repro chaos`` sweep driver that runs
workloads under seeded fault schedules and gates each one on the
:mod:`repro.verify` checkers.  Only the plan layer is re-exported here —
the chaos driver imports the machine and config stack, which imports
this package, so it must be imported explicitly as
``repro.faults.chaos``.
"""

from .plan import DEFAULT_CHAOS_PLAN, FaultInjector, FaultPlan

__all__ = ["FaultPlan", "FaultInjector", "DEFAULT_CHAOS_PLAN"]
