"""The ``repro chaos`` verification driver.

Chaos runs answer one question: do the paper's atomic primitives stay
*correct* when the machine misbehaves in every way the protocol is
supposed to tolerate?  Each chaos point builds a machine with a seeded
:class:`~repro.faults.plan.FaultPlan`, runs an atomic-counter workload
(fetch_and_add, a CAS retry loop, or an LL/SC retry loop — one history
event per increment via :class:`repro.verify.history.History`), and
gates the run on four independent checks:

* **termination** under a cycle-budget watchdog (``max_events`` on the
  simulator — a livelocked protocol trips it, as does a deadlock);
* the **history checker**
  (:func:`repro.verify.checkers.check_counter_history`): every
  increment's pre-value chains exactly once from 0 to the total — no
  lost or duplicated update survives this under any interleaving;
* **final-value** agreement with the arithmetic expectation *and* with
  the fault-free golden run of the same seed/policy (intensity 0.0 is
  always swept alongside and is bit-identical to a plain run);
* **metric conservation**: every message delivered is counted exactly
  once per type, and every program contributed exactly ``turns``
  history events.

Points fan out through the parallel sweep engine
(:func:`repro.harness.parallel.run_sweep`) with quarantine enabled, so
a crashed point is reported in the envelope instead of aborting the
matrix.  The verdict envelope is deliberately free of wall-clock data:
``repro chaos --seed S`` emits the same bytes on every host.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Optional, Sequence

from ..config import SimConfig, small_config
from ..errors import ConfigError, SimulationError
from ..obs.schema import make_run_payload
from ..verify.checkers import CheckFailure, check_counter_history
from ..verify.history import History
from .plan import DEFAULT_CHAOS_PLAN, FaultPlan

__all__ = [
    "CHAOS_WORKLOADS",
    "DEFAULT_MAX_EVENTS",
    "run_chaos_point",
    "run_chaos",
    "render_chaos",
]

#: Cycle-budget watchdog: generous for the small chaos machines (a
#: clean 8-node x 8-turn run needs a few thousand events), tight enough
#: that a livelock fails in well under a second.
DEFAULT_MAX_EVENTS = 2_000_000

DEFAULT_POLICIES = ("INV", "UPD", "UNC")


def _inc_faa(p, addr):
    """One atomic increment via fetch_and_add; returns the pre-value."""
    old = yield p.fetch_add(addr, 1)
    return old


def _inc_cas(p, addr):
    """One atomic increment via a CAS retry loop; returns the pre-value."""
    while True:
        old = yield p.load(addr)
        ok = yield p.cas(addr, old, old + 1)
        if ok:
            return old


def _inc_llsc(p, addr):
    """One atomic increment via an LL/SC retry loop; returns the
    pre-value.  Exercises the reservation-kill fault site."""
    while True:
        linked = yield p.ll(addr)
        ok = yield p.sc(addr, linked.value + 1, linked.token)
        if ok:
            return linked.value


CHAOS_WORKLOADS = {
    "faa": _inc_faa,
    "casloop": _inc_cas,
    "llsc": _inc_llsc,
}


def run_chaos_point(
    policy: str = "INV",
    workload: str = "faa",
    turns: int = 8,
    max_events: int = DEFAULT_MAX_EVENTS,
    intensity: float = 0.0,
    config: Optional[SimConfig] = None,
    observe: Any = None,
) -> dict[str, Any]:
    """Run one faulted machine and return its JSON verdict.

    Sweep-engine compatible: module-level, picklable arguments, and a
    JSON-able return value.  ``intensity`` is informational (the actual
    fault rates live in ``config.faults``) but part of the point hash,
    so each matrix cell caches independently.
    """
    from ..coherence.policy import SyncPolicy
    from ..machine.machine import build_machine

    if workload not in CHAOS_WORKLOADS:
        raise ConfigError(
            f"unknown chaos workload {workload!r}; "
            f"choose from {sorted(CHAOS_WORKLOADS)}"
        )
    try:
        sync_policy = SyncPolicy[policy]
    except KeyError:
        raise ConfigError(f"unknown sync policy {policy!r}") from None
    inc = CHAOS_WORKLOADS[workload]
    cfg = config if config is not None else small_config()
    machine = build_machine(cfg)
    if observe is not None:
        observe(machine)
    addr = machine.alloc_sync(sync_policy, home=0)
    machine.write_word(addr, 0)
    history = History(machine)

    def program(p, addr):
        for _ in range(turns):
            yield from history.wrap(p, "inc", 1, inc(p, addr))

    machine.spawn_all(program, addr)

    checks: dict[str, str] = {}
    try:
        end = machine.run(max_events=max_events)
        checks["terminated"] = "ok"
    except SimulationError as exc:  # DeadlockError included
        end = machine.now
        checks["terminated"] = f"{type(exc).__name__}: {exc}"

    expected = turns * machine.n_nodes
    final: Optional[int] = None
    if checks["terminated"] == "ok":
        final = machine.read_word(addr)
        try:
            check_counter_history(history, initial=0)
            checks["history"] = "ok"
        except CheckFailure as exc:
            checks["history"] = str(exc)
        checks["final_value"] = (
            "ok" if final == expected
            else f"final {final} != expected {expected}"
        )
    snapshot = machine.registry.snapshot()
    checks["conservation"] = _conservation(snapshot, len(history), expected)

    return {
        "policy": policy,
        "workload": workload,
        "seed": cfg.seed,
        "intensity": intensity,
        "fault_seed": cfg.faults.seed if cfg.faults is not None else None,
        "ok": all(value == "ok" for value in checks.values()),
        "checks": checks,
        "end_time": end,
        "events_processed": snapshot.get("sim.events_processed", 0),
        "final": final,
        "expected": expected,
        "faults": {key: value for key, value in snapshot.items()
                   if key.startswith("faults.")},
    }


def _conservation(snapshot: dict[str, Any], history_len: int,
                  expected_events: int) -> str:
    """Metric-conservation invariants that every legal fault preserves."""
    delivered = (snapshot.get("net.messages", 0)
                 + snapshot.get("net.local_messages", 0))
    by_type = sum(value for key, value in snapshot.items()
                  if key.startswith("net.by_type."))
    if delivered != by_type:
        return (f"net.messages+net.local_messages={delivered} but "
                f"sum(net.by_type.*)={by_type}")
    if history_len != expected_events:
        return (f"history recorded {history_len} increments, "
                f"expected {expected_events}")
    return "ok"


def run_chaos(
    seeds: Sequence[int],
    intensities: Iterable[float] = (1.0,),
    policies: Sequence[str] = DEFAULT_POLICIES,
    workload: str = "faa",
    turns: int = 6,
    nodes: int = 8,
    plan: Optional[FaultPlan] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
    config: Optional[SimConfig] = None,
    jobs: int = 1,
    cache: Any = None,
    events: Any = None,
    registry: Any = None,
    retries: int = 1,
) -> dict[str, Any]:
    """Sweep seeds x intensities x policies; return the verdict envelope.

    Intensity 0.0 (the fault-free golden) is always included: every
    faulted point's final value is compared against the golden of its
    (seed, policy) cell.  The returned ``repro.run/1`` payload carries
    the verdict matrix in its ``faults`` section and no host-dependent
    data, so the same arguments produce byte-identical envelopes.
    """
    from ..harness.parallel import make_point, run_sweep

    base_plan = plan if plan is not None else DEFAULT_CHAOS_PLAN
    base = config if config is not None else small_config(n_nodes=nodes)
    levels = sorted({float(level) for level in intensities} | {0.0})
    points = []
    cells = []
    for seed in seeds:
        for policy in policies:
            for level in levels:
                scaled = dataclasses.replace(base_plan, seed=seed).scaled(level)
                cfg = dataclasses.replace(
                    base, seed=seed,
                    faults=scaled if scaled.active else None,
                )
                points.append(make_point(
                    run_chaos_point,
                    config=cfg,
                    label=(f"chaos {workload}/{policy} "
                           f"seed={seed} intensity={level:g}"),
                    policy=policy, workload=workload, turns=turns,
                    max_events=max_events, intensity=level,
                ))
                cells.append((seed, policy, level))

    outcomes = run_sweep(
        points, jobs=jobs, cache=cache, events=events, registry=registry,
        retries=retries, quarantine=True,
    )

    golden: dict[tuple[int, str], Any] = {}
    for outcome, (seed, policy, level) in zip(outcomes, cells):
        if level == 0.0 and outcome.error is None:
            golden[(seed, policy)] = outcome.result

    verdicts = []
    for outcome, (seed, policy, level) in zip(outcomes, cells):
        if outcome.error is not None:
            verdicts.append({
                "policy": policy, "workload": workload, "seed": seed,
                "intensity": level, "ok": False,
                "checks": {"executed": outcome.error},
                "attempts": outcome.attempts,
            })
            continue
        verdict = dict(outcome.result)
        reference = golden.get((seed, policy))
        if level > 0.0:
            if reference is None:
                verdict["checks"]["golden"] = "golden run unavailable"
            elif verdict["final"] != reference["final"]:
                verdict["checks"]["golden"] = (
                    f"final {verdict['final']} != "
                    f"golden {reference['final']}"
                )
            else:
                verdict["checks"]["golden"] = "ok"
            verdict["ok"] = all(
                value == "ok" for value in verdict["checks"].values()
            )
        verdicts.append(verdict)

    passed = sum(1 for verdict in verdicts if verdict["ok"])
    section = {
        "plan": base_plan.describe(),
        "workload": workload,
        "turns": turns,
        "nodes": base.machine.n_nodes,
        "seeds": list(seeds),
        "intensities": levels,
        "policies": list(policies),
        "points": len(verdicts),
        "passed": passed,
        "failed": len(verdicts) - passed,
        "verdicts": verdicts,
    }
    params = {
        "seeds": list(seeds), "intensities": levels,
        "policies": list(policies), "workload": workload, "turns": turns,
        "nodes": base.machine.n_nodes, "max_events": max_events,
    }
    results = {
        "points": len(verdicts),
        "passed": passed,
        "failed": len(verdicts) - passed,
        "ok": passed == len(verdicts),
    }
    return make_run_payload("chaos", params, results, faults=section)


def render_chaos(payload: dict[str, Any]) -> str:
    """Human-readable summary of a chaos envelope."""
    section = payload.get("faults", {})
    lines = [
        f"chaos: {section.get('workload')} x {section.get('nodes')} nodes, "
        f"{len(section.get('seeds', []))} seed(s), "
        f"intensities {section.get('intensities')}",
        f"  {section.get('passed', 0)}/{section.get('points', 0)} "
        f"points passed",
    ]
    for verdict in section.get("verdicts", []):
        if verdict.get("ok"):
            continue
        complaints = ", ".join(
            f"{name}: {value}"
            for name, value in verdict.get("checks", {}).items()
            if value != "ok"
        )
        lines.append(
            f"  FAIL {verdict.get('workload')}/{verdict.get('policy')} "
            f"seed={verdict.get('seed')} "
            f"intensity={verdict.get('intensity')}: {complaints}"
        )
    fired: dict[str, int] = {}
    for verdict in section.get("verdicts", []):
        for name, value in verdict.get("faults", {}).items():
            fired[name] = fired.get(name, 0) + value
    if fired:
        lines.append("  injected: " + ", ".join(
            f"{name.removeprefix('faults.')}={value}"
            for name, value in sorted(fired.items())
        ))
    return "\n".join(lines)
