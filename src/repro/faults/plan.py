"""Deterministic, seeded fault injection.

A :class:`FaultPlan` declares *how much* adversity a run should face; a
:class:`FaultInjector` turns the plan into per-site pseudo-random
decisions.  The design constraints, in order:

* **Zero overhead when absent.**  Every injection site is guarded by a
  single ``machine.faults is not None`` attribute check — the same
  pattern as :attr:`repro.obs.events.EventBus.active`.  A config without
  a plan (or with an all-zero plan) builds no injector at all, so the
  run is bit-identical to one that predates this module.
* **Deterministic and shard-invariant.**  Each (site, node) pair owns an
  independent ``random.Random`` stream seeded from the string
  ``"{seed}:{site}:{node}"`` (CPython seeds strings through SHA-512, so
  streams are identical across processes and ``PYTHONHASHSEED``
  settings).  Draws happen at points whose per-node order does not
  depend on how the machine is sharded — a message's arbitration order
  at its destination port, a node's own send order, a home's delivery
  order — so a faulty run is *also* bit-identical at any shard count.
* **Legal faults only.**  The injected faults are ones the paper's
  protocol must already tolerate: bounded extra delivery delay at a
  network exit port (a congested link), duplicate delivery of the
  idempotent DROP notice, a transient busy-NAK at a home node (the
  module pretends to be occupied and retries the request), a spurious
  reservation kill (paper §2.1: real LL/SC loses reservations to
  context switches and TLB exceptions), and processor stall windows
  (an interrupt before a memory op issues).  None of them can lose,
  reorder same-source, or corrupt a message, so every verify checker
  must still pass under any intensity.

Injected faults are counted in the machine registry under ``faults.*``
(deterministic, so they are safe in results/metrics envelopes) and,
when someone is listening, emitted as ``fault.inject`` events.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, replace
from typing import Any, Optional

from ..errors import ConfigError
from ..obs.registry import MetricsRegistry

__all__ = ["FaultPlan", "FaultInjector", "DEFAULT_CHAOS_PLAN"]

#: Scaled rates are clamped below 1.0 so ``validate`` always passes and
#: a fault can never fire unconditionally (which could livelock a NAK
#: or stall site).
_MAX_RATE = 0.9375

_RATE_FIELDS = (
    "net_delay_rate",
    "net_dup_rate",
    "home_nak_rate",
    "res_kill_rate",
    "cpu_stall_rate",
)


@dataclass(frozen=True)
class FaultPlan:
    """Declarative fault intensities; picklable and content-hashable.

    Attributes:
        seed: Seed of the per-(site, node) fault streams.  Independent
            of the machine seed so the same program schedule can face
            many fault schedules.
        net_delay_rate: Probability that a routed message is held extra
            cycles at its destination exit port.
        net_delay_max: Upper bound (inclusive) of the extra delay.
        net_dup_rate: Probability that a routed DROP notice is delivered
            twice (the duplicate is a fresh message one serialize slot
            behind the original, so it can never overtake a later
            request from the same source).
        home_nak_rate: Probability that a home node busy-NAKs an
            incoming request; the request is retried after
            ``home_nak_penalty`` cycles (each message is NAK'd at most
            once, so termination is preserved).
        home_nak_penalty: Retry delay of a busy-NAK, in cycles.
        res_kill_rate: Probability that a memory-side store_conditional
            finds every reservation on its block spuriously killed.
        cpu_stall_rate: Probability that a processor stalls before
            issuing a memory operation.
        cpu_stall_max: Upper bound (inclusive) of one stall, in cycles.
    """

    seed: int = 1
    net_delay_rate: float = 0.0
    net_delay_max: int = 16
    net_dup_rate: float = 0.0
    home_nak_rate: float = 0.0
    home_nak_penalty: int = 40
    res_kill_rate: float = 0.0
    cpu_stall_rate: float = 0.0
    cpu_stall_max: int = 64

    @property
    def active(self) -> bool:
        """True when any fault can actually fire.

        An inactive plan builds no injector: the run is *structurally*
        identical to a plain run, not merely statistically — the
        acceptance tests diff the two byte for byte.
        """
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    def validate(self) -> None:
        """Raise :class:`ConfigError` on out-of-range parameters."""
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigError(f"fault rate {name!r} must be in [0, 1)")
        for name in ("net_delay_max", "home_nak_penalty", "cpu_stall_max"):
            if getattr(self, name) < 1:
                raise ConfigError(f"fault bound {name!r} must be >= 1")

    def scaled(self, intensity: float) -> "FaultPlan":
        """This plan with every rate multiplied by ``intensity``.

        Bounds and penalties are untouched; rates clamp below 1.0.
        ``scaled(0.0)`` is the canonical zero-fault plan (inactive).
        """
        if intensity < 0.0:
            raise ConfigError("fault intensity must be >= 0")
        return replace(self, **{
            name: min(getattr(self, name) * intensity, _MAX_RATE)
            for name in _RATE_FIELDS
        })

    def describe(self) -> dict[str, Any]:
        """A JSON-able view of the plan (for envelopes and reports)."""
        return dataclasses.asdict(self)


DEFAULT_CHAOS_PLAN = FaultPlan(
    net_delay_rate=0.08,
    net_dup_rate=0.05,
    home_nak_rate=0.08,
    res_kill_rate=0.05,
    cpu_stall_rate=0.03,
)
"""The ``repro chaos`` default at intensity 1.0: every site fires."""


class FaultInjector:
    """Per-site deterministic fault decisions for one machine.

    One injector serves one machine (or one region of a sharded
    machine); streams are keyed by (site, node), so per-region
    injectors built from the same plan draw exactly the streams a
    single-machine injector would — sharded fault runs stay
    bit-identical at any shard count.
    """

    def __init__(
        self,
        plan: FaultPlan,
        registry: Optional[MetricsRegistry] = None,
        events: Optional[Any] = None,
        sim: Optional[Any] = None,
    ) -> None:
        plan.validate()
        self.plan = plan
        self.events = events
        self.sim = sim
        reg = registry if registry is not None else MetricsRegistry()
        self._c_delay = reg.counter("faults.net.delay")
        self._c_delay_cycles = reg.counter("faults.net.delay_cycles")
        self._c_dup = reg.counter("faults.net.dup")
        self._c_nak = reg.counter("faults.home.nak")
        self._c_kill = reg.counter("faults.res.kill")
        self._c_stall = reg.counter("faults.cpu.stall")
        self._c_stall_cycles = reg.counter("faults.cpu.stall_cycles")
        self._streams: dict[tuple[str, int], random.Random] = {}
        # A duplicate's own (recursive) send must never re-duplicate;
        # the latch consumes no randomness, so streams stay aligned.
        self._dup_latch = False

    def _rng(self, site: str, node: int) -> random.Random:
        key = (site, node)
        rng = self._streams.get(key)
        if rng is None:
            rng = self._streams[key] = random.Random(
                f"{self.plan.seed}:{site}:{node}"
            )
        return rng

    def _emit(self, site: str, node: int, **data: Any) -> None:
        bus = self.events
        if bus is not None and bus.active:
            now = self.sim.now if self.sim is not None else 0
            bus.emit("fault.inject", now, node=node, site=site, **data)

    # -- decision points (one call per legal opportunity, in an order
    # -- that is invariant under sharding) ------------------------------

    def net_delay(self, dst: int) -> int:
        """Extra exit-port hold at ``dst`` for the arriving message."""
        rng = self._rng("net.delay", dst)
        if rng.random() >= self.plan.net_delay_rate:
            return 0
        extra = rng.randrange(1, self.plan.net_delay_max + 1)
        self._c_delay.value += 1
        self._c_delay_cycles.value += extra
        self._emit("net.delay", dst, cycles=extra)
        return extra

    def net_dup(self, src: int) -> bool:
        """Should ``src``'s routed DROP notice be delivered twice?"""
        if self._dup_latch:
            self._dup_latch = False
            return False
        rng = self._rng("net.dup", src)
        if rng.random() >= self.plan.net_dup_rate:
            return False
        self._dup_latch = True
        self._c_dup.value += 1
        self._emit("net.dup", src)
        return True

    def home_nak(self, node: int) -> bool:
        """Should home ``node`` busy-NAK the request it just received?"""
        rng = self._rng("home.nak", node)
        if rng.random() >= self.plan.home_nak_rate:
            return False
        self._c_nak.value += 1
        self._emit("home.nak", node, penalty=self.plan.home_nak_penalty)
        return True

    def res_kill(self, node: int) -> bool:
        """Should the store_conditional at home ``node`` lose its
        reservations before the check?"""
        rng = self._rng("res.kill", node)
        if rng.random() >= self.plan.res_kill_rate:
            return False
        self._c_kill.value += 1
        self._emit("res.kill", node)
        return True

    def cpu_stall(self, pid: int) -> int:
        """Stall cycles before processor ``pid`` issues its memory op."""
        rng = self._rng("cpu.stall", pid)
        if rng.random() >= self.plan.cpu_stall_rate:
            return 0
        stall = rng.randrange(1, self.plan.cpu_stall_max + 1)
        self._c_stall.value += 1
        self._c_stall_cycles.value += stall
        self._emit("cpu.stall", pid, cycles=stall)
        return stall
