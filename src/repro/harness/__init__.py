"""Experiment harness: regenerates every table and figure of the paper."""

from .configs import figure_variants, policy_survey_variants
from .parallel import (
    PointOutcome,
    ResultCache,
    SweepExecutor,
    SweepPoint,
    code_fingerprint,
    derive_point_seed,
    make_point,
    point_key,
    run_sweep,
)
from .report import render_table, render_histogram
from .table1 import run_table1, TABLE1_EXPECTED
from .figures import (
    PanelResult,
    no_contention_panels,
    contention_panels,
    run_counter_figure,
    run_figure3,
    run_figure4,
    run_figure5,
)
from .figure2 import run_figure2
from .figure6 import run_figure6
from .ablation import (
    run_reservation_ablation,
    run_dropcopy_ablation,
    RESERVATION_STRATEGIES,
)

__all__ = [
    "figure_variants",
    "policy_survey_variants",
    "PointOutcome",
    "ResultCache",
    "SweepExecutor",
    "SweepPoint",
    "code_fingerprint",
    "derive_point_seed",
    "make_point",
    "point_key",
    "run_sweep",
    "render_table",
    "render_histogram",
    "run_table1",
    "TABLE1_EXPECTED",
    "PanelResult",
    "no_contention_panels",
    "contention_panels",
    "run_counter_figure",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure2",
    "run_figure6",
    "run_reservation_ablation",
    "run_dropcopy_ablation",
    "RESERVATION_STRATEGIES",
]
