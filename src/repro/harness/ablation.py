"""Ablation studies for the design choices the paper discusses.

* :func:`run_reservation_ablation` — §3.1's in-memory LL/SC reservation
  designs (bit vector, limited slots, bounded-free-list linked lists,
  write serial numbers) on a contended UNC LL/SC counter.
* :func:`run_dropcopy_ablation` — when drop_copy helps and when it
  hurts, across write-run lengths and contention, under INV and UPD.

Both sweeps run their independent points through
:mod:`repro.harness.parallel`, so ``jobs`` shards them across worker
processes and ``cache`` memoizes them without changing the results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from ..apps.synthetic import SyntheticSpec, run_lockfree_counter
from ..coherence.policy import SyncPolicy
from ..config import SimConfig
from ..machine.machine import Machine, build_machine
from ..obs.events import EventBus
from ..sync.counters import increment
from ..sync.variant import PrimitiveVariant
from .parallel import ResultCache, make_point, run_sweep

__all__ = [
    "ReservationAblation",
    "run_reservation_ablation",
    "run_reservation_point",
    "DropCopyAblation",
    "run_dropcopy_ablation",
    "DirectoryAblation",
    "run_directory_ablation",
    "run_directory_point",
    "RESERVATION_STRATEGIES",
    "DIRECTORY_REPRESENTATIONS",
]

RESERVATION_STRATEGIES = ("bitvector", "limited", "linkedlist", "serial")

DIRECTORY_REPRESENTATIONS = ("full", "limited", "coarse")


@dataclass
class ReservationAblation:
    """strategy -> (cycles/update, local SC failures)."""

    results: dict[str, tuple[float, int]] = field(default_factory=dict)


def run_reservation_point(
    strategy: str,
    contention: int,
    turns: int,
    reservation_limit: int,
    config: SimConfig | None = None,
    observe: Optional[Callable[[Machine], None]] = None,
) -> dict[str, float | int]:
    """Measure one reservation strategy on a contended LL/SC counter."""
    base = config or SimConfig()
    run_config = replace(base, reservation_strategy=strategy,
                         reservation_limit=reservation_limit)
    machine = build_machine(run_config)
    if observe is not None:
        observe(machine)
    n_nodes = machine.n_nodes
    variant = PrimitiveVariant("llsc", SyncPolicy.UNC)
    counter = machine.alloc_sync(SyncPolicy.UNC, home=0)

    def program(p):
        for turn in range(turns):
            yield p.barrier(turn, n_nodes)
            if p.pid < contention:
                yield from increment(p, counter, variant)

    machine.spawn_all(program)
    machine.run()
    updates = turns * contention
    value = machine.read_word(counter)
    if value != updates:
        raise AssertionError(
            f"{strategy}: counter={value}, expected {updates}"
        )
    local_failures = sum(
        node.controller.stats.sc_local_failures for node in machine.nodes
    )
    return {
        "cycles_per_update": machine.now / updates,
        "local_sc_failures": local_failures,
    }


def run_reservation_ablation(
    config: SimConfig,
    contention: int | None = None,
    turns: int = 6,
    reservation_limit: int = 4,
    jobs: int = 1,
    cache: ResultCache | None = None,
    events: Optional[EventBus] = None,
) -> ReservationAblation:
    """Measure each reservation strategy on a contended LL/SC counter."""
    n_nodes = config.machine.n_nodes
    if contention is None:
        contention = min(16, n_nodes)
    points = [
        make_point(run_reservation_point, config=config,
                   label=f"reservations {strategy} c={contention}",
                   strategy=strategy, contention=contention, turns=turns,
                   reservation_limit=reservation_limit)
        for strategy in RESERVATION_STRATEGIES
    ]
    outcomes = run_sweep(points, jobs=jobs, cache=cache, events=events)
    outcome = ReservationAblation()
    for strategy, point_outcome in zip(RESERVATION_STRATEGIES, outcomes):
        measured = point_outcome.result
        outcome.results[strategy] = (
            measured["cycles_per_update"],
            measured["local_sc_failures"],
        )
    return outcome


@dataclass
class DropCopyAblation:
    """(panel label, variant label) -> cycles/update."""

    table: dict[tuple[str, str], float] = field(default_factory=dict)
    panels: list[str] = field(default_factory=list)
    variants: list[str] = field(default_factory=list)


def run_dropcopy_ablation(
    config: SimConfig,
    turns: int = 6,
    jobs: int = 1,
    cache: ResultCache | None = None,
    events: Optional[EventBus] = None,
) -> DropCopyAblation:
    """Sweep the lock-free counter with and without drop_copy."""
    contention = min(16, config.machine.n_nodes)
    specs = [
        ("a=1", SyntheticSpec(contention=1, write_run=1.0, turns=turns)),
        ("a=10", SyntheticSpec(contention=1, write_run=10.0, turns=turns)),
        (f"c={contention}", SyntheticSpec(contention=contention, turns=turns)),
    ]
    variants = {
        "INV": PrimitiveVariant("fap", SyncPolicy.INV),
        "INV+dc": PrimitiveVariant("fap", SyncPolicy.INV, use_drop=True),
        "UPD": PrimitiveVariant("fap", SyncPolicy.UPD),
        "UPD+dc": PrimitiveVariant("fap", SyncPolicy.UPD, use_drop=True),
    }
    points = [
        make_point(run_lockfree_counter, variant=variant, spec=spec,
                   config=config, label=f"dropcopy {spec_label} {var_label}")
        for spec_label, spec in specs
        for var_label, variant in variants.items()
    ]
    outcomes = iter(run_sweep(points, jobs=jobs, cache=cache, events=events))
    outcome = DropCopyAblation(
        panels=[label for label, _ in specs],
        variants=list(variants),
    )
    for spec_label, _ in specs:
        for var_label in variants:
            outcome.table[(spec_label, var_label)] = (
                next(outcomes).result.avg_cycles
            )
    return outcome


@dataclass
class DirectoryAblation:
    """Sharer-set representations on the share-then-write sweep.

    Attributes:
        points: One record per (nodes, contention, representation),
            carrying invalidation/message counts and the run's
            deterministic outputs.
        equivalence: Exact-capacity check at small N: limited pointers
            sized to the machine and 1-node regions must reproduce the
            full-bit-vector run *identically* (cycles, messages,
            metrics), demonstrating unchanged protocol decisions.
    """

    points: list[dict] = field(default_factory=list)
    equivalence: dict = field(default_factory=dict)


def run_directory_point(
    representation: str,
    nodes: int,
    contention: int,
    turns: int,
    dir_pointers: int = 8,
    dir_region: int = 8,
    config: SimConfig | None = None,
    observe: Optional[Callable[[Machine], None]] = None,
) -> dict:
    """One share-then-write run under one sharer-set representation.

    Every turn, ``contention`` processors load the counter — becoming
    directory sharers — then a rotating leader ``fetch_and_add``s it
    (INV policy), forcing the directory to invalidate every copy.  The
    full bit vector invalidates exactly the sharers; limited pointers
    past capacity broadcast; coarse vectors invalidate whole regions.
    Returns the message/invalidation counts that differ plus the final
    value, which must not.
    """
    base = config or SimConfig()
    run_config = replace(
        base,
        machine=replace(
            base.machine,
            n_nodes=nodes,
            directory=representation,
            dir_pointers=dir_pointers,
            dir_region=dir_region,
        ),
    )
    machine = build_machine(run_config)
    if observe is not None:
        observe(machine)
    counter = machine.alloc_sync(SyncPolicy.INV, home=0)
    n_nodes = machine.n_nodes

    def program(p):
        for turn in range(turns):
            yield p.barrier(turn, n_nodes)
            if p.pid < contention:
                yield p.load(counter)
                if p.pid == turn % contention:
                    yield p.fetch_add(counter, 1)

    machine.spawn_all(program)
    end = machine.run()
    snap = machine.registry.snapshot()

    def total(suffix: str) -> int:
        return sum(v for k, v in snap.items() if k.endswith(suffix))

    return {
        "representation": representation,
        "nodes": nodes,
        "contention": contention,
        "end_cycle": end,
        "final_value": machine.read_word(counter),
        "final_expected": turns,
        "messages": machine.mesh.stats.messages,
        "invalidations": snap.get("net.by_type.INV", 0),
        "inv_acks": snap.get("net.by_type.INV_ACK", 0),
        "spurious_targets": total(".spurious_targets"),
        "imprecise_fanouts": total(".imprecise_fanouts"),
    }


def run_directory_ablation(
    config: SimConfig,
    sizes: tuple[int, ...] = (64, 256),
    contentions: tuple[int, ...] = (4, 16, 64),
    turns: int = 4,
    jobs: int = 1,
    cache: ResultCache | None = None,
    events: Optional[EventBus] = None,
) -> DirectoryAblation:
    """Compare sharer-set representations across machine sizes.

    Two parts: an *equivalence* gate at the smallest size — every
    representation configured for exact capacity (pointers = N,
    region = 1) must match the full bit vector cycle-for-cycle — and the
    *cost sweep*, where the default sparse parameters pay real extra
    invalidations that grow with machine size.
    """
    small = min(sizes)
    eq_points = [
        make_point(
            run_directory_point, config=config,
            label=f"directory {rep} exact n={small}",
            representation=rep, nodes=small,
            contention=min(16, small), turns=turns,
            dir_pointers=small, dir_region=1,
        )
        for rep in DIRECTORY_REPRESENTATIONS
    ]
    sweep_jobs = [
        (rep, nodes, contention)
        for nodes in sizes
        for contention in contentions
        if contention <= nodes
        for rep in DIRECTORY_REPRESENTATIONS
    ]
    sweep_points = [
        make_point(
            run_directory_point, config=config,
            label=f"directory {rep} n={nodes} c={contention}",
            representation=rep, nodes=nodes,
            contention=contention, turns=turns,
            dir_pointers=config.machine.dir_pointers,
            dir_region=config.machine.dir_region,
        )
        for rep, nodes, contention in sweep_jobs
    ]
    outcomes = run_sweep(eq_points + sweep_points, jobs=jobs, cache=cache,
                         events=events)
    eq = [o.result for o in outcomes[: len(eq_points)]]
    full = eq[0]
    outcome = DirectoryAblation(
        equivalence={
            "nodes": small,
            "identical": all(r == {**full, "representation":
                                   r["representation"]} for r in eq),
            "runs": eq,
        },
        points=[o.result for o in outcomes[len(eq_points):]],
    )
    return outcome
