"""Ablation studies for the design choices the paper discusses.

* :func:`run_reservation_ablation` — §3.1's in-memory LL/SC reservation
  designs (bit vector, limited slots, bounded-free-list linked lists,
  write serial numbers) on a contended UNC LL/SC counter.
* :func:`run_dropcopy_ablation` — when drop_copy helps and when it
  hurts, across write-run lengths and contention, under INV and UPD.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps.synthetic import SyntheticSpec, run_lockfree_counter
from ..coherence.policy import SyncPolicy
from ..config import SimConfig
from ..machine.machine import build_machine
from ..sync.counters import increment
from ..sync.variant import PrimitiveVariant

__all__ = [
    "ReservationAblation",
    "run_reservation_ablation",
    "DropCopyAblation",
    "run_dropcopy_ablation",
    "RESERVATION_STRATEGIES",
]

RESERVATION_STRATEGIES = ("bitvector", "limited", "linkedlist", "serial")


@dataclass
class ReservationAblation:
    """strategy -> (cycles/update, local SC failures)."""

    results: dict[str, tuple[float, int]] = field(default_factory=dict)


def run_reservation_ablation(
    config: SimConfig,
    contention: int | None = None,
    turns: int = 6,
    reservation_limit: int = 4,
) -> ReservationAblation:
    """Measure each reservation strategy on a contended LL/SC counter."""
    from dataclasses import replace

    n_nodes = config.machine.n_nodes
    if contention is None:
        contention = min(16, n_nodes)
    outcome = ReservationAblation()
    for strategy in RESERVATION_STRATEGIES:
        run_config = replace(config, reservation_strategy=strategy,
                             reservation_limit=reservation_limit)
        machine = build_machine(run_config)
        variant = PrimitiveVariant("llsc", SyncPolicy.UNC)
        counter = machine.alloc_sync(SyncPolicy.UNC, home=0)

        def program(p):
            for turn in range(turns):
                yield p.barrier(turn, n_nodes)
                if p.pid < contention:
                    yield from increment(p, counter, variant)

        machine.spawn_all(program)
        machine.run()
        updates = turns * contention
        value = machine.read_word(counter)
        if value != updates:
            raise AssertionError(
                f"{strategy}: counter={value}, expected {updates}"
            )
        local_failures = sum(
            node.controller.stats.sc_local_failures for node in machine.nodes
        )
        outcome.results[strategy] = (machine.now / updates, local_failures)
    return outcome


@dataclass
class DropCopyAblation:
    """(panel label, variant label) -> cycles/update."""

    table: dict[tuple[str, str], float] = field(default_factory=dict)
    panels: list[str] = field(default_factory=list)
    variants: list[str] = field(default_factory=list)


def run_dropcopy_ablation(config: SimConfig, turns: int = 6) -> DropCopyAblation:
    """Sweep the lock-free counter with and without drop_copy."""
    contention = min(16, config.machine.n_nodes)
    specs = [
        ("a=1", SyntheticSpec(contention=1, write_run=1.0, turns=turns)),
        ("a=10", SyntheticSpec(contention=1, write_run=10.0, turns=turns)),
        (f"c={contention}", SyntheticSpec(contention=contention, turns=turns)),
    ]
    variants = {
        "INV": PrimitiveVariant("fap", SyncPolicy.INV),
        "INV+dc": PrimitiveVariant("fap", SyncPolicy.INV, use_drop=True),
        "UPD": PrimitiveVariant("fap", SyncPolicy.UPD),
        "UPD+dc": PrimitiveVariant("fap", SyncPolicy.UPD, use_drop=True),
    }
    outcome = DropCopyAblation(
        panels=[label for label, _ in specs],
        variants=list(variants),
    )
    for spec_label, spec in specs:
        for var_label, variant in variants.items():
            result = run_lockfree_counter(variant, spec, config)
            outcome.table[(spec_label, var_label)] = result.avg_cycles
    return outcome
