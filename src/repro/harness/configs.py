"""Variant enumeration: the bars of Figures 3–6, in the paper's order.

Each figure panel shows, left to right:

* **UNC**: FAP, LLSC, CAS;
* **INV** without drop_copy: FAP, LLSC, and four CAS bars — plain INV,
  INVd, INVs, and INV with load_exclusive;
* **INV** with drop_copy: the same six;
* **UPD** without drop_copy: FAP, LLSC, CAS;
* **UPD** with drop_copy: the same three.
"""

from __future__ import annotations

from ..coherence.policy import SyncPolicy
from ..sync.variant import PrimitiveVariant

__all__ = ["figure_variants", "policy_survey_variants"]


def _inv_group(use_drop: bool) -> list[PrimitiveVariant]:
    return [
        PrimitiveVariant("fap", SyncPolicy.INV, use_drop=use_drop),
        PrimitiveVariant("llsc", SyncPolicy.INV, use_drop=use_drop),
        PrimitiveVariant("cas", SyncPolicy.INV, use_drop=use_drop),
        PrimitiveVariant("cas", SyncPolicy.INVD, use_drop=use_drop),
        PrimitiveVariant("cas", SyncPolicy.INVS, use_drop=use_drop),
        PrimitiveVariant("cas", SyncPolicy.INV, use_lx=True, use_drop=use_drop),
    ]


def _upd_group(use_drop: bool) -> list[PrimitiveVariant]:
    return [
        PrimitiveVariant("fap", SyncPolicy.UPD, use_drop=use_drop),
        PrimitiveVariant("llsc", SyncPolicy.UPD, use_drop=use_drop),
        PrimitiveVariant("cas", SyncPolicy.UPD, use_drop=use_drop),
    ]


def figure_variants() -> list[PrimitiveVariant]:
    """All 21 bars of one figure panel, in display order."""
    variants = [
        PrimitiveVariant("fap", SyncPolicy.UNC),
        PrimitiveVariant("llsc", SyncPolicy.UNC),
        PrimitiveVariant("cas", SyncPolicy.UNC),
    ]
    variants += _inv_group(use_drop=False)
    variants += _inv_group(use_drop=True)
    variants += _upd_group(use_drop=False)
    variants += _upd_group(use_drop=True)
    return variants


def policy_survey_variants() -> list[PrimitiveVariant]:
    """One representative variant per coherence policy (for Figure 2)."""
    return [
        PrimitiveVariant("fap", SyncPolicy.UNC),
        PrimitiveVariant("fap", SyncPolicy.INV),
        PrimitiveVariant("fap", SyncPolicy.UPD),
    ]
