"""Figure 2: contention histograms of the real applications.

For each of LocusRoute, Cholesky, and Transitive Closure, and for each
coherence policy (UNC, INV, UPD), the histogram of the contention level
observed at the beginning of each synchronization access, plus the average
write-run lengths quoted in §4.2.

Each app/policy pair is an independent simulation, so the nine runs go
through the parallel sweep executor (see
:mod:`repro.harness.parallel`): ``jobs`` shards them across worker
processes and ``cache`` memoizes them, with results identical to the
serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..apps.cholesky import run_cholesky
from ..apps.common import AppResult
from ..apps.locusroute import run_locusroute
from ..apps.tclosure import run_transitive_closure
from ..config import SimConfig
from ..obs.events import EventBus
from .configs import policy_survey_variants
from .parallel import ResultCache, make_point, run_sweep

__all__ = ["Figure2Result", "run_figure2"]


@dataclass
class Figure2Result:
    """All Figure 2 measurements: app → policy → AppResult."""

    apps: dict[str, dict[str, AppResult]] = field(default_factory=dict)

    def histogram(self, app: str, policy: str) -> dict[int, float]:
        """Contention histogram (level → percentage) for one app/policy."""
        return self.apps[app][policy].contention_histogram

    def write_run(self, app: str, policy: str) -> float:
        """Average write-run length for one app/policy."""
        return self.apps[app][policy].write_run


def run_figure2(
    config: SimConfig,
    tclosure_size: int = 24,
    locusroute_wires: int | None = None,
    cholesky_columns: int | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    events: Optional[EventBus] = None,
) -> Figure2Result:
    """Run the three real applications under each coherence policy.

    The lock applications' inputs default to sizes and task grains
    proportional to the machine (see their docstrings) so the calibrated
    sharing pattern holds at any scale.
    """
    app_points = (
        ("locusroute", run_locusroute, {"n_wires": locusroute_wires}),
        ("cholesky", run_cholesky, {"n_columns": cholesky_columns}),
        ("tclosure", run_transitive_closure, {"size": tclosure_size}),
    )
    variants = policy_survey_variants()
    points = [
        make_point(runner, variant=variant, config=config,
                   label=f"{app} {variant.policy.value}", **kwargs)
        for variant in variants
        for app, runner, kwargs in app_points
    ]
    outcomes = iter(run_sweep(points, jobs=jobs, cache=cache, events=events))
    result = Figure2Result()
    for variant in variants:
        policy = variant.policy.value
        for app, _, _ in app_points:
            result.apps.setdefault(app, {})[policy] = next(outcomes).result
    return result
