"""Figure 2: contention histograms of the real applications.

For each of LocusRoute, Cholesky, and Transitive Closure, and for each
coherence policy (UNC, INV, UPD), the histogram of the contention level
observed at the beginning of each synchronization access, plus the average
write-run lengths quoted in §4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps.cholesky import run_cholesky
from ..apps.common import AppResult
from ..apps.locusroute import run_locusroute
from ..apps.tclosure import run_transitive_closure
from ..config import SimConfig
from .configs import policy_survey_variants

__all__ = ["Figure2Result", "run_figure2"]


@dataclass
class Figure2Result:
    """All Figure 2 measurements: app → policy → AppResult."""

    apps: dict[str, dict[str, AppResult]] = field(default_factory=dict)

    def histogram(self, app: str, policy: str) -> dict[int, float]:
        """Contention histogram (level → percentage) for one app/policy."""
        return self.apps[app][policy].contention_histogram

    def write_run(self, app: str, policy: str) -> float:
        """Average write-run length for one app/policy."""
        return self.apps[app][policy].write_run


def run_figure2(
    config: SimConfig,
    tclosure_size: int = 24,
    locusroute_wires: int | None = None,
    cholesky_columns: int | None = None,
) -> Figure2Result:
    """Run the three real applications under each coherence policy.

    The lock applications' inputs default to sizes and task grains
    proportional to the machine (see their docstrings) so the calibrated
    sharing pattern holds at any scale.
    """
    result = Figure2Result()
    for variant in policy_survey_variants():
        policy = variant.policy.value
        runs = {
            "locusroute": run_locusroute(
                variant, n_wires=locusroute_wires, config=config
            ),
            "cholesky": run_cholesky(
                variant, n_columns=cholesky_columns, config=config
            ),
            "tclosure": run_transitive_closure(
                variant, size=tclosure_size, config=config
            ),
        }
        for app, app_result in runs.items():
            result.apps.setdefault(app, {})[policy] = app_result
    return result
