"""Figure 6: total elapsed time of the real applications.

For each of LocusRoute, Cholesky, and Transitive Closure: total cycles of
the parallel section under every primitive/policy variant (the same 21
bars as Figures 3–5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..apps.cholesky import run_cholesky
from ..apps.locusroute import run_locusroute
from ..apps.tclosure import run_transitive_closure
from ..config import SimConfig
from ..sync.variant import PrimitiveVariant
from .configs import figure_variants
from .report import render_table

__all__ = ["Figure6Result", "run_figure6", "render_figure6"]


@dataclass
class Figure6Result:
    """app → [(variant label, total cycles)]."""

    apps: dict[str, list[tuple[str, int]]] = field(default_factory=dict)

    def cycles(self, app: str, label: str) -> int:
        """Total cycles for one app under one variant."""
        for bar_label, cycles in self.apps[app]:
            if bar_label == label:
                return cycles
        raise KeyError(label)


def run_figure6(
    config: SimConfig,
    variants: Sequence[PrimitiveVariant] | None = None,
    tclosure_size: int = 24,
    locusroute_wires: int | None = None,
    cholesky_columns: int | None = None,
) -> Figure6Result:
    """Run the three real applications under every variant.

    Lock-application inputs default to machine-proportional sizes (see
    the application docstrings).
    """
    if variants is None:
        variants = figure_variants()
    result = Figure6Result()
    for variant in variants:
        runs = {
            "locusroute": run_locusroute(
                variant, n_wires=locusroute_wires, config=config
            ),
            "cholesky": run_cholesky(
                variant, n_columns=cholesky_columns, config=config
            ),
            "tclosure": run_transitive_closure(
                variant, size=tclosure_size, config=config
            ),
        }
        for app, app_result in runs.items():
            result.apps.setdefault(app, []).append(
                (variant.label, app_result.cycles)
            )
    return result


def render_figure6(result: Figure6Result) -> str:
    """Render all apps as one table: variants × apps."""
    apps = sorted(result.apps)
    if not apps:
        return "Figure 6 (no data)"
    headers = ["variant"] + apps
    labels = [label for label, _ in result.apps[apps[0]]]
    rows = []
    for label in labels:
        rows.append([label] + [result.cycles(app, label) for app in apps])
    return render_table(headers, rows, title="Figure 6: total elapsed cycles")
