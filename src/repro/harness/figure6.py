"""Figure 6: total elapsed time of the real applications.

For each of LocusRoute, Cholesky, and Transitive Closure: total cycles of
the parallel section under every primitive/policy variant (the same 21
bars as Figures 3–5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..apps.cholesky import run_cholesky
from ..apps.locusroute import run_locusroute
from ..apps.tclosure import run_transitive_closure
from ..config import SimConfig
from ..obs.events import EventBus
from ..sync.variant import PrimitiveVariant
from .configs import figure_variants
from .parallel import ResultCache, make_point, run_sweep
from .report import render_table

__all__ = ["Figure6Result", "run_figure6", "render_figure6"]


@dataclass
class Figure6Result:
    """app → [(variant label, total cycles)]."""

    apps: dict[str, list[tuple[str, int]]] = field(default_factory=dict)

    def cycles(self, app: str, label: str) -> int:
        """Total cycles for one app under one variant."""
        for bar_label, cycles in self.apps[app]:
            if bar_label == label:
                return cycles
        raise KeyError(label)


def run_figure6(
    config: SimConfig,
    variants: Sequence[PrimitiveVariant] | None = None,
    tclosure_size: int = 24,
    locusroute_wires: int | None = None,
    cholesky_columns: int | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    events: Optional[EventBus] = None,
) -> Figure6Result:
    """Run the three real applications under every variant.

    Lock-application inputs default to machine-proportional sizes (see
    the application docstrings).  The variant × app points run through
    the parallel sweep executor; ``jobs``/``cache`` shard and memoize
    them without changing the results.
    """
    if variants is None:
        variants = figure_variants()
    app_points = (
        ("locusroute", run_locusroute, {"n_wires": locusroute_wires}),
        ("cholesky", run_cholesky, {"n_columns": cholesky_columns}),
        ("tclosure", run_transitive_closure, {"size": tclosure_size}),
    )
    points = [
        make_point(runner, variant=variant, config=config,
                   label=f"{app} {variant.label}", **kwargs)
        for variant in variants
        for app, runner, kwargs in app_points
    ]
    outcomes = iter(run_sweep(points, jobs=jobs, cache=cache, events=events))
    result = Figure6Result()
    for variant in variants:
        for app, _, _ in app_points:
            result.apps.setdefault(app, []).append(
                (variant.label, next(outcomes).result.cycles)
            )
    return result


def render_figure6(result: Figure6Result) -> str:
    """Render all apps as one table: variants × apps."""
    apps = sorted(result.apps)
    if not apps:
        return "Figure 6 (no data)"
    headers = ["variant"] + apps
    labels = [label for label, _ in result.apps[apps[0]]]
    rows = []
    for label in labels:
        rows.append([label] + [result.cycles(app, label) for app in apps])
    return render_table(headers, rows, title="Figure 6: total elapsed cycles")
