"""Figures 3–5: average time per counter update, all variants, all panels.

Each figure sweeps the same panels over a different update mechanism:

* Figure 3 — lock-free counter;
* Figure 4 — counter under a TTS lock with bounded exponential backoff;
* Figure 5 — counter under an MCS queue lock.

Panels: the no-contention case with write-run ``a`` in {1, 1.5, 2, 3, 10},
and contention ``c`` in {2, 4, 8, 16, 64} (clipped to the machine size).
Bars: the 21 variants of :func:`repro.harness.configs.figure_variants`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..apps.common import AppResult
from ..apps.synthetic import (
    SyntheticSpec,
    run_lockfree_counter,
    run_mcs_counter,
    run_tts_counter,
)
from ..config import SimConfig
from ..obs.events import EventBus
from ..sync.variant import PrimitiveVariant
from .configs import figure_variants
from .parallel import ResultCache, make_point, run_sweep
from .report import render_table

__all__ = [
    "PanelResult",
    "no_contention_panels",
    "contention_panels",
    "run_counter_figure",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "render_figure",
]

AppRunner = Callable[[PrimitiveVariant, SyntheticSpec, SimConfig], AppResult]

_WRITE_RUNS = (1.0, 1.5, 2.0, 3.0, 10.0)
_CONTENTIONS = (2, 4, 8, 16, 64)


@dataclass
class PanelResult:
    """One figure panel: a label plus (bar label, avg cycles) rows."""

    label: str
    spec: SyntheticSpec
    bars: list[tuple[str, float]] = field(default_factory=list)

    def value(self, bar_label: str) -> float:
        """Average cycles of the named bar."""
        for label, value in self.bars:
            if label == bar_label:
                return value
        raise KeyError(bar_label)


def no_contention_panels(turns: int = 32) -> list[SyntheticSpec]:
    """The left-hand panels: c=1 with varying write-run."""
    return [
        SyntheticSpec(contention=1, write_run=a, turns=turns)
        for a in _WRITE_RUNS
    ]


def contention_panels(n_nodes: int, turns: int = 32) -> list[SyntheticSpec]:
    """The right-hand panels: varying contention (clipped to the machine)."""
    seen = set()
    specs = []
    for c in _CONTENTIONS:
        c = min(c, n_nodes)
        if c in seen:
            continue
        seen.add(c)
        specs.append(SyntheticSpec(contention=c, turns=turns))
    return specs


def _panel_label(spec: SyntheticSpec) -> str:
    if spec.contention == 1:
        return f"c=1 a={spec.write_run:g}"
    return f"c={spec.contention}"


def run_counter_figure(
    runner: AppRunner,
    config: SimConfig,
    turns: int = 32,
    variants: Sequence[PrimitiveVariant] | None = None,
    specs: Sequence[SyntheticSpec] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    events: Optional[EventBus] = None,
) -> list[PanelResult]:
    """Run one figure: every panel × every variant.

    Panel/variant points are independent simulations, so they go through
    :func:`repro.harness.parallel.run_sweep` — ``jobs`` shards them over
    worker processes and ``cache`` memoizes them; results are identical
    for any ``jobs``.
    """
    if variants is None:
        variants = figure_variants()
    if specs is None:
        specs = no_contention_panels(turns) + contention_panels(
            config.machine.n_nodes, turns
        )
    points = [
        make_point(runner, variant=variant, spec=spec, config=config)
        for spec in specs
        for variant in variants
    ]
    outcomes = iter(run_sweep(points, jobs=jobs, cache=cache, events=events))
    panels = []
    for spec in specs:
        panel = PanelResult(label=_panel_label(spec), spec=spec)
        for variant in variants:
            result = next(outcomes).result
            panel.bars.append((variant.label, result.avg_cycles))
        panels.append(panel)
    return panels


def run_figure3(config: SimConfig, turns: int = 32, **kwargs) -> list[PanelResult]:
    """Figure 3: the lock-free counter."""
    return run_counter_figure(run_lockfree_counter, config, turns, **kwargs)


def run_figure4(config: SimConfig, turns: int = 32, **kwargs) -> list[PanelResult]:
    """Figure 4: the TTS-lock-protected counter."""
    return run_counter_figure(run_tts_counter, config, turns, **kwargs)


def run_figure5(config: SimConfig, turns: int = 32, **kwargs) -> list[PanelResult]:
    """Figure 5: the MCS-lock-protected counter."""
    return run_counter_figure(run_mcs_counter, config, turns, **kwargs)


def render_figure(panels: list[PanelResult], title: str) -> str:
    """Render a figure as one table: variants × panels."""
    if not panels:
        return title
    headers = ["variant"] + [p.label for p in panels]
    bar_labels = [label for label, _ in panels[0].bars]
    rows = []
    for label in bar_labels:
        rows.append([label] + [p.value(label) for p in panels])
    return render_table(headers, rows, title=title)
