"""Self-contained HTML report for one ``repro.run/1`` envelope.

``repro report RUN.json -o report.html`` renders a single HTML file —
inline CSS, inline SVG, zero external requests or third-party
dependencies — that makes a finished run inspectable without
re-simulating.  Four panels, always present (a panel whose data the
envelope lacks renders an explanatory empty state instead of
disappearing):

1. **Table 1 matrix** — paper-expected vs measured serialized message
   counts, with a per-row match verdict.
2. **Figures** — the envelope's figure results as charts: per-variant
   small-multiple line charts for the counter figures (x = panel,
   shared y scale), per-app contention-histogram lines for Figure 2
   (one series per policy), and per-app elapsed-time bars for Figure 6.
   Paper-expected curves are overlaid where the harness has them
   (Table 1 is the exact reproduction; the figure panels are
   qualitative in the paper, so the overlay is the expected/measured
   matrix itself).
3. **Latency waterfalls** — the run's critical-path blame by hop kind,
   plus a per-transaction waterfall for each of the worst (p95+)
   transactions: one bar per critical-path span, positioned on the
   transaction's own timeline and colored by span kind.
4. **Hotspots** — the per-cache-line contention ranking, with a
   directory-queue-depth sparkline per block.
5. **Host-time profile** — where wall-clock time went while producing
   the run: per-(component, handler) self-time bars plus the engine's
   dispatch residual, from the ``profile`` envelope section
   (``repro profile --json`` or any ``--profile`` run).
6. **Sharded execution** — the conservative-window coordinator's sync
   metrics from the ``shard`` envelope section (``repro shard --json``):
   window counts and lookahead utilization, per-shard busy/blocked wall
   split, the cross-region traffic matrix, and stitch/telemetry
   summaries when ``--spans``/``--telemetry`` were on.
7. **Chaos verification** — the seeded fault-injection matrix from the
   ``faults`` envelope section (``repro chaos --json``): per-point
   checker verdicts (history, termination, conservation, golden
   agreement) and the injected-fault totals.

Every chart carries a ``<details>`` data table, so the numbers are
readable without the SVG (and by screen readers); colors come from a
CVD-validated palette defined once as CSS custom properties, with a
dark-mode variant selected via ``prefers-color-scheme``.
"""

from __future__ import annotations

import html
import json
import pathlib
from typing import Any, Mapping, Optional, Sequence

from ..obs.schema import validate_run_payload
from ..obs.spans import SPAN_KINDS

__all__ = ["render_report", "write_report", "load_payload"]

# CVD-validated categorical slots (light, dark) in fixed order; span
# kinds map onto them positionally so a kind keeps its hue everywhere.
_SERIES = (
    ("#2a78d6", "#3987e5"),   # 1 blue
    ("#eb6834", "#d95926"),   # 2 orange
    ("#1baf7a", "#199e70"),   # 3 aqua
    ("#eda100", "#c98500"),   # 4 yellow
    ("#e87ba4", "#d55181"),   # 5 magenta
    ("#008300", "#008300"),   # 6 green
)

_KIND_SLOT = {kind: i + 1 for i, kind in enumerate(SPAN_KINDS)}

_CSS = """
:root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --good: #0ca30c; --bad: #d03b3b;
""" + "".join(
    f"  --series-{i + 1}: {light};\n" for i, (light, _) in enumerate(_SERIES)
) + """}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --good: #0ca30c; --bad: #e66767;
""" + "".join(
    f"    --series-{i + 1}: {dark};\n" for i, (_, dark) in enumerate(_SERIES)
) + """  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 980px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 0 0 8px; }
h3 { font-size: 13px; margin: 12px 0 4px; color: var(--ink-2); }
.meta { color: var(--ink-2); margin: 0 0 20px; }
.meta code { color: var(--ink); }
section.panel {
  background: var(--surface); border: 1px solid var(--grid);
  border-radius: 8px; padding: 16px 20px; margin: 0 0 20px;
}
.empty { color: var(--muted); font-style: italic; }
table { border-collapse: collapse; font-variant-numeric: tabular-nums; }
th, td { padding: 3px 10px; text-align: right; }
th:first-child, td:first-child { text-align: left; }
thead th { border-bottom: 1px solid var(--axis); color: var(--ink-2);
           font-weight: 600; }
tbody tr:nth-child(even) { background:
  color-mix(in srgb, var(--grid) 35%, transparent); }
.ok { color: var(--good); } .miss { color: var(--bad); }
details { margin: 6px 0 0; }
summary { color: var(--muted); cursor: pointer; font-size: 12px; }
.grid { display: flex; flex-wrap: wrap; gap: 12px; }
.cell { flex: 0 0 auto; }
.cell .t { font-size: 11px; color: var(--ink-2); margin: 0 0 2px;
           max-width: 160px; overflow: hidden; text-overflow: ellipsis;
           white-space: nowrap; }
.legend { display: flex; flex-wrap: wrap; gap: 12px; margin: 4px 0 8px;
          font-size: 12px; color: var(--ink-2); }
.legend .sw { display: inline-block; width: 10px; height: 10px;
              border-radius: 2px; margin-right: 4px; vertical-align: -1px; }
svg { display: block; }
svg text { font: 10px system-ui, -apple-system, "Segoe UI", sans-serif;
           fill: var(--muted); }
svg .val { fill: var(--ink-2); }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
           cells_html: bool = False) -> str:
    """An HTML table; cell text is escaped unless ``cells_html``."""
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = []
    for row in rows:
        cells = "".join(
            f"<td>{cell if cells_html else _esc(_fmt(cell))}</td>"
            for cell in row
        )
        body.append(f"<tr>{cells}</tr>")
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(body)}</tbody></table>")


def _data_table(headers: Sequence[str],
                rows: Sequence[Sequence[Any]]) -> str:
    """The chart's accessible data-table twin, collapsed by default."""
    return (f"<details><summary>data table</summary>"
            f"{_table(headers, rows)}</details>")


def _legend(entries: Sequence[tuple[str, int]]) -> str:
    """A legend of (label, series-slot) pairs."""
    spans = "".join(
        f'<span><span class="sw" style="background:var(--series-{slot})">'
        f"</span>{_esc(label)}</span>"
        for label, slot in entries
    )
    return f'<div class="legend">{spans}</div>'


# ----------------------------------------------------------------------
# SVG primitives
# ----------------------------------------------------------------------

def _polyline(points: Sequence[tuple[float, float]], slot: int,
              width: float = 2.0) -> str:
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    return (f'<polyline points="{path}" fill="none" '
            f'stroke="var(--series-{slot})" stroke-width="{width}" '
            f'stroke-linejoin="round" stroke-linecap="round"/>')


def _line_chart(
    series: Sequence[tuple[str, int, Sequence[float]]],
    x_labels: Sequence[str],
    width: int = 220,
    height: int = 110,
    y_max: Optional[float] = None,
    tooltip: Optional[str] = None,
) -> str:
    """A small line chart: ``series`` is (label, slot, values) tuples.

    All series share ``x_labels`` as the ordered x axis; ``y_max`` pins
    the y scale (for shared-scale small multiples).
    """
    pad_l, pad_r, pad_t, pad_b = 34, 6, 6, 16
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    top = y_max if y_max else max(
        (v for _, _, values in series for v in values), default=1.0) or 1.0
    n = max(len(x_labels), 2)

    def xy(i: int, v: float) -> tuple[float, float]:
        return (pad_l + plot_w * i / (n - 1),
                pad_t + plot_h * (1.0 - v / top))

    parts = [f'<svg width="{width}" height="{height}" role="img" '
             f'viewBox="0 0 {width} {height}">']
    if tooltip:
        parts.append(f"<title>{_esc(tooltip)}</title>")
    # recessive grid: baseline + top reference
    parts.append(f'<line x1="{pad_l}" y1="{pad_t + plot_h}" '
                 f'x2="{width - pad_r}" y2="{pad_t + plot_h}" '
                 f'stroke="var(--axis)"/>')
    parts.append(f'<line x1="{pad_l}" y1="{pad_t}" x2="{width - pad_r}" '
                 f'y2="{pad_t}" stroke="var(--grid)"/>')
    parts.append(f'<text x="{pad_l - 4}" y="{pad_t + 4}" '
                 f'text-anchor="end">{_esc(_fmt(top))}</text>')
    parts.append(f'<text x="{pad_l - 4}" y="{pad_t + plot_h + 4}" '
                 f'text-anchor="end">0</text>')
    parts.append(f'<text x="{pad_l}" y="{height - 3}">'
                 f"{_esc(x_labels[0] if x_labels else '')}</text>")
    if len(x_labels) > 1:
        parts.append(f'<text x="{width - pad_r}" y="{height - 3}" '
                     f'text-anchor="end">{_esc(x_labels[-1])}</text>')
    for _, slot, values in series:
        pts = [xy(i, v) for i, v in enumerate(values)]
        if len(pts) == 1:
            x, y = pts[0]
            parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" '
                         f'fill="var(--series-{slot})"/>')
        else:
            parts.append(_polyline(pts, slot))
    parts.append("</svg>")
    return "".join(parts)


def _bar_chart(
    rows: Sequence[tuple[str, float]],
    width: int = 560,
    slot: int = 1,
    unit: str = "",
) -> str:
    """Horizontal bars (one hue — the job is magnitude), value-labeled."""
    bar_h, gap, label_w, value_w = 14, 2, 150, 70
    plot_w = width - label_w - value_w
    top = max((v for _, v in rows), default=1.0) or 1.0
    height = len(rows) * (bar_h + gap) + 4
    parts = [f'<svg width="{width}" height="{height}" role="img" '
             f'viewBox="0 0 {width} {height}">']
    for i, (label, value) in enumerate(rows):
        y = 2 + i * (bar_h + gap)
        w = max(1.0, plot_w * value / top)
        parts.append(f'<text x="{label_w - 6}" y="{y + bar_h - 3}" '
                     f'text-anchor="end">{_esc(label)}</text>')
        parts.append(
            f'<rect x="{label_w}" y="{y}" width="{w:.1f}" '
            f'height="{bar_h}" rx="3" fill="var(--series-{slot})">'
            f"<title>{_esc(label)}: {_esc(_fmt(value))}{_esc(unit)}</title>"
            f"</rect>")
        parts.append(f'<text x="{label_w + w + 6:.1f}" '
                     f'y="{y + bar_h - 3}" class="val">'
                     f"{_esc(_fmt(value))}</text>")
    parts.append("</svg>")
    return "".join(parts)


def _sparkline(points: Sequence[Sequence[float]], width: int = 110,
               height: int = 18) -> str:
    """A tiny single-series line (directory queue depth over cycles)."""
    if not points:
        return '<span class="empty">–</span>'
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    top = max(ys) or 1.0
    span = (x1 - x0) or 1.0
    pts = [(2 + (width - 4) * (x - x0) / span,
            height - 2 - (height - 4) * y / top) for x, y in points]
    body = (_polyline(pts, 1, width=1.5) if len(pts) > 1 else
            f'<circle cx="{pts[0][0]:.1f}" cy="{pts[0][1]:.1f}" r="2.5" '
            f'fill="var(--series-1)"/>')
    return (f'<svg width="{width}" height="{height}" role="img" '
            f'viewBox="0 0 {width} {height}">'
            f"<title>max queue depth {_fmt(max(ys))}</title>{body}</svg>")


# ----------------------------------------------------------------------
# Panel 1 — Table 1 matrix
# ----------------------------------------------------------------------

def _panel_table1(payload: Mapping[str, Any]) -> str:
    results = payload.get("results", {})
    expected = results.get("expected")
    measured = results.get("measured")
    if not (isinstance(expected, dict) and isinstance(measured, dict)):
        return ('<p class="empty">This envelope carries no Table 1 data '
                "(run <code>repro table1 --json</code> or "
                "<code>bench_table1</code> for the expected-vs-measured "
                "matrix).</p>")
    rows = []
    for label in expected:
        got = measured.get(label)
        ok = got == expected[label]
        verdict = ('<span class="ok">✓ match</span>' if ok
                   else '<span class="miss">✗ differs</span>')
        rows.append([_esc(label), _esc(expected[label]),
                     _esc("–" if got is None else got), verdict])
    note = ("" if results.get("match", True) else
            '<p class="miss">Measured counts diverge from the paper.</p>')
    return note + _table(
        ["store target", "paper", "measured", "verdict"], rows,
        cells_html=True)


# ----------------------------------------------------------------------
# Panel 2 — figure charts
# ----------------------------------------------------------------------

def _figure2_charts(apps: Mapping[str, Any]) -> str:
    """Per-app contention histograms: one line per policy."""
    policies = ("UNC", "INV", "UPD")
    out = [_legend([(p, i + 1) for i, p in enumerate(policies)])]
    table_rows = []
    for app in sorted(apps):
        per_policy = apps[app]
        levels = sorted({int(level)
                         for policy in per_policy.values()
                         for level in policy.get("histogram", {})})
        if not levels:
            continue
        series = []
        for i, policy in enumerate(policies):
            hist = per_policy.get(policy, {}).get("histogram", {})
            series.append((policy, i + 1,
                           [float(hist.get(str(lv), 0.0)) for lv in levels]))
        out.append('<div class="cell">'
                   f'<div class="t">{_esc(app)}</div>'
                   + _line_chart(series, [str(lv) for lv in levels],
                                 width=280, height=130,
                                 tooltip=f"{app}: % of writes at each "
                                         "contention level")
                   + "</div>")
        for policy in policies:
            info = per_policy.get(policy, {})
            for lv in levels:
                table_rows.append([app, policy, lv,
                                   info.get("histogram", {}).get(str(lv), 0.0)])
    charts = f'<div class="grid">{"".join(out[1:])}</div>'
    write_runs = _table(
        ["application"] + list(policies),
        [[app] + [apps[app].get(p, {}).get("write_run", 0.0)
                  for p in policies] for app in sorted(apps)])
    return (out[0] + charts + "<h3>average write-run lengths</h3>"
            + write_runs
            + _data_table(["app", "policy", "contention", "% writes"],
                          table_rows))


def _counter_figure_charts(panels: Sequence[Mapping[str, Any]]) -> str:
    """Small multiples: one line chart per variant, x = panel."""
    x_labels = [str(p.get("label", i)) for i, p in enumerate(panels)]
    variants: list[str] = []
    values: dict[str, list[float]] = {}
    for panel in panels:
        for label, value in panel.get("bars", []):
            if label not in values:
                variants.append(label)
                values[label] = []
    for panel in panels:
        bars = dict(panel.get("bars", []))
        for label in variants:
            values[label].append(float(bars.get(label, 0.0)))
    y_max = max((v for vs in values.values() for v in vs), default=1.0)
    cells = []
    for label in variants:
        cells.append(
            '<div class="cell">'
            f'<div class="t">{_esc(label)}</div>'
            + _line_chart([(label, 1, values[label])], x_labels,
                          y_max=y_max,
                          tooltip=f"{label}: cycles/update per panel "
                                  "(shared y scale)")
            + "</div>")
    table_rows = [[label] + list(values[label]) for label in variants]
    return (f'<p class="meta">cycles per update; one chart per variant, '
            f"shared y scale (0–{_fmt(y_max)}), x = panel "
            f"({_esc(x_labels[0])} … {_esc(x_labels[-1])})</p>"
            f'<div class="grid">{"".join(cells)}</div>'
            + _data_table(["variant"] + x_labels, table_rows))


def _figure6_charts(apps: Mapping[str, Any]) -> str:
    """Per-app elapsed-time bars (variants are unordered: bars, not lines)."""
    out = []
    table_rows = []
    for app in sorted(apps):
        bars = [(str(label), float(value)) for label, value in apps[app]]
        out.append(f"<h3>{_esc(app)}</h3>" + _bar_chart(bars, unit=" cycles"))
        table_rows.extend([[app, label, value] for label, value in bars])
    return ("".join(out)
            + _data_table(["app", "variant", "total cycles"], table_rows))


def _panel_figures(payload: Mapping[str, Any]) -> str:
    results = payload.get("results", {})
    apps = results.get("apps")
    panels = results.get("panels")
    if isinstance(apps, dict) and apps:
        first = next(iter(apps.values()))
        if isinstance(first, dict):        # figure2: app -> policy -> data
            return _figure2_charts(apps)
        if isinstance(first, list):        # figure6: app -> [[label, cycles]]
            return _figure6_charts(apps)
    if (isinstance(panels, list) and panels
            and isinstance(panels[0], dict) and "bars" in panels[0]):
        return _counter_figure_charts(panels)
    return ('<p class="empty">This envelope carries no figure series '
            "(run <code>repro figure2…figure6 --json</code> to chart "
            "panels here).</p>")


# ----------------------------------------------------------------------
# Panel 3 — critical-path blame + latency waterfalls
# ----------------------------------------------------------------------

_KIND_HELP = {
    "root": "operation entered the controller",
    "msg": "message flight (incl. port queuing)",
    "queue": "memory-module FIFO wait",
    "memory": "memory/directory occupancy",
    "dirwait": "parked on a busy directory entry",
    "ctrl": "requester-side controller occupancy",
}


def _blame_bar(by_kind: Mapping[str, int], total: int) -> str:
    """One stacked bar: critical-path cycles by hop kind, 2px gaps."""
    width, bar_h = 640, 18
    parts = [f'<svg width="{width}" height="{bar_h + 4}" role="img" '
             f'viewBox="0 0 {width} {bar_h + 4}">']
    x = 0.0
    for kind in SPAN_KINDS:
        cycles = by_kind.get(kind, 0)
        if not cycles or not total:
            continue
        w = width * cycles / total
        parts.append(
            f'<rect x="{x + 1:.1f}" y="2" width="{max(w - 2, 1):.1f}" '
            f'height="{bar_h}" rx="3" '
            f'fill="var(--series-{_KIND_SLOT[kind]})">'
            f"<title>{_esc(kind)}: {cycles} cycles "
            f"({100.0 * cycles / total:.1f}%)</title></rect>")
        x += w
    parts.append("</svg>")
    return "".join(parts)


def _waterfall(txn: Mapping[str, Any]) -> str:
    """One worst transaction's critical path on its own timeline."""
    path = txn.get("path", [])
    start = int(txn.get("start", 0))
    duration = max(1, int(txn.get("cycles", 1)))
    width, row_h, label_w, value_w = 720, 16, 170, 70
    plot_w = width - label_w - value_w
    height = len(path) * row_h + 4
    parts = [f'<svg width="{width}" height="{height}" role="img" '
             f'viewBox="0 0 {width} {height}">']
    for i, step in enumerate(path):
        y = 2 + i * row_h
        kind = step.get("kind", "msg")
        t0, t1 = int(step.get("t0", start)), int(step.get("t1", start))
        x0 = label_w + plot_w * (t0 - start) / duration
        w = max(2.0, plot_w * (t1 - t0) / duration)
        label = f"{kind} {step.get('component', '')}"
        detail = step.get("detail", "")
        parts.append(f'<text x="{label_w - 6}" y="{y + row_h - 4}" '
                     f'text-anchor="end">{_esc(label)}</text>')
        parts.append(
            f'<rect x="{x0:.1f}" y="{y}" width="{w:.1f}" '
            f'height="{row_h - 2}" rx="3" '
            f'fill="var(--series-{_KIND_SLOT.get(kind, 1)})">'
            f"<title>{_esc(label)} {_esc(detail)}: cycles {t0}–{t1} "
            f"(+{step.get('cycles', t1 - t0)} on the critical path)"
            f"</title></rect>")
        parts.append(f'<text x="{x0 + w + 5:.1f}" y="{y + row_h - 4}" '
                     f'class="val">+{_esc(step.get("cycles", t1 - t0))}'
                     f"{' ' + _esc(detail) if detail else ''}</text>")
    parts.append("</svg>")
    blockers = txn.get("blockers", [])
    blocked = ""
    if blockers:
        notes = ", ".join(
            f"{_esc(b.get('kind', '?'))} by txn {_esc(b.get('txn', '?'))}"
            + (f" ({_esc(b.get('cycles'))} cycles)" if b.get("cycles")
               else "")
            for b in blockers)
        blocked = f'<p class="meta">blocked: {notes}</p>'
    head = (f"txn {txn.get('txn_id', '?')} — "
            f"{txn.get('op', '?')}/{txn.get('policy') or '-'} "
            f"on node {txn.get('node', '?')}, block {txn.get('block', '?')}: "
            f"{txn.get('cycles', '?')} cycles")
    return f"<h3>{_esc(head)}</h3>{''.join(parts)}{blocked}"


def _panel_waterfalls(payload: Mapping[str, Any]) -> str:
    critpath = payload.get("critpath")
    if not isinstance(critpath, dict):
        latency = payload.get("latency")
        fallback = ""
        if isinstance(latency, dict) and latency:
            rows = [[key, s.get("count", 0), round(s.get("mean", 0.0), 1),
                     s.get("p50", 0), s.get("p95", 0), s.get("max", 0)]
                    for key, s in sorted(latency.items())]
            fallback = ("<h3>latency summary (no span data)</h3>"
                        + _table(["primitive/policy", "n", "mean", "p50",
                                  "p95", "max"], rows))
        return ('<p class="empty">This envelope carries no critical-path '
                "data (instrumented runs — <code>repro stats</code>, "
                "<code>repro critpath</code> — emit it under the "
                "<code>critpath</code> key).</p>" + fallback)

    total = critpath.get("cycles", 0)
    by_kind = critpath.get("by_kind", {})
    legend = _legend([
        (f"{kind} — {_KIND_HELP[kind]}", _KIND_SLOT[kind])
        for kind in SPAN_KINDS if by_kind.get(kind)
    ])
    blame = (f'<p class="meta">{critpath.get("txns", 0)} remote '
             f"transaction(s), {total} critical-path cycle(s)</p>"
             + legend + _blame_bar(by_kind, total))

    keys = critpath.get("keys", {})
    key_rows = []
    for key, summary in sorted(keys.items()):
        dominant = max(summary.get("by_kind", {"-": 0}),
                       key=lambda k: summary["by_kind"].get(k, 0))
        key_rows.append([key, summary.get("count", 0),
                         round(summary.get("mean", 0.0), 1),
                         summary.get("p50", 0), summary.get("p95", 0),
                         summary.get("max", 0), dominant])
    composition = ("<h3>critical-path composition per primitive × "
                   "policy</h3>"
                   + _table(["primitive/policy", "n", "mean", "p50", "p95",
                             "max", "dominant hop"], key_rows)
                   if key_rows else "")

    worst = critpath.get("worst", [])
    waterfalls = "".join(_waterfall(txn) for txn in worst)
    if not worst:
        waterfalls = ('<p class="empty">No remote transactions were '
                      "observed, so there are no waterfalls.</p>")
    return blame + composition + waterfalls


# ----------------------------------------------------------------------
# Panel 4 — hotspot table
# ----------------------------------------------------------------------

def _panel_hotspots(payload: Mapping[str, Any]) -> str:
    hotspots = payload.get("hotspots")
    if not isinstance(hotspots, dict):
        return ('<p class="empty">This envelope carries no hotspot data '
                "(instrumented runs emit the per-cache-line contention "
                "ranking under the <code>hotspots</code> key; see "
                "<code>repro hotspots</code>).</p>")
    top = hotspots.get("top", [])
    if not top:
        return '<p class="empty">No protocol traffic was observed.</p>'
    rows = []
    for entry in top:
        rows.append([
            _esc(entry.get("block")), _esc(entry.get("score")),
            _esc(entry.get("queue_wait")), _esc(entry.get("dir_wait")),
            _esc(entry.get("max_depth")), _esc(entry.get("multicasts")),
            _esc(entry.get("failures")), _esc(entry.get("res_kills")),
            _esc(entry.get("messages")),
            _sparkline(entry.get("depth_series", [])),
        ])
    note = (f'<p class="meta">{hotspots.get("blocks_seen", len(top))} '
            f"block(s) saw traffic; top {len(rows)} by contention score "
            f"(queue-depth sparklines sampled per "
            f"{hotspots.get('window', '?')}-cycle window)</p>")
    return note + _table(
        ["block", "score", "queue wait", "dir wait", "max depth",
         "multicasts", "failed", "res kills", "messages", "queue depth"],
        rows, cells_html=True)


# ----------------------------------------------------------------------
# Panel 5 — host-time profile
# ----------------------------------------------------------------------

def _panel_profile(payload: Mapping[str, Any]) -> str:
    profile = payload.get("profile")
    if not isinstance(profile, dict):
        return ('<p class="empty">This envelope carries no host-time '
                "profile (run <code>repro profile --json</code>, or any "
                "experiment with <code>--profile --json</code>, to "
                "attribute wall-clock time per component here).</p>")
    total = profile.get("total_ns", 0)
    kinds = profile.get("kinds", {})
    bars = [(key, entry.get("ns", 0) / 1e6)
            for key, entry in kinds.items()]
    bars.append(("engine.dispatch", profile.get("dispatch_ns", 0) / 1e6))
    note = (f'<p class="meta">{total / 1e6:.2f} ms of wall time over '
            f'{profile.get("events", 0):,} event(s) in '
            f'{profile.get("runs", 0)} run(s); bars are per-handler '
            "self-time in ms, <code>engine.dispatch</code> is the "
            "dispatch-loop residual (scans, pops, bookkeeping)</p>")
    rows = [[key, entry.get("calls", 0), round(entry.get("ns", 0) / 1e6, 3),
             f"{100.0 * entry.get('share', 0.0):.1f}%"]
            for key, entry in kinds.items()]
    rows.append(["engine.dispatch", profile.get("events", 0),
                 round(profile.get("dispatch_ns", 0) / 1e6, 3),
                 (f"{100.0 * profile.get('dispatch_ns', 0) / total:.1f}%"
                  if total else "0.0%")])
    return (note + _bar_chart(bars, slot=2, unit=" ms")
            + _data_table(["component.handler", "calls", "ms", "share"],
                          rows))


# ----------------------------------------------------------------------
# Panel 6 — sharded execution
# ----------------------------------------------------------------------

def _panel_shard(payload: Mapping[str, Any]) -> str:
    shard = payload.get("shard")
    if not isinstance(shard, dict) or not shard.get("sync"):
        return ('<p class="empty">This envelope carries no sharded-run '
                "data (run <code>repro shard --json</code>; add "
                "<code>--spans</code>/<code>--profile</code>/"
                "<code>--telemetry</code> for stitching, worker profiles "
                "and heartbeats).</p>")
    sync = shard["sync"]
    note = (f'<p class="meta">{sync.get("shards")} region(s), '
            f'<code>{_esc(sync.get("backend"))}</code> backend · '
            f'{sync.get("windows"):,} window(s) of width '
            f'{sync.get("window")} (lookahead {sync.get("lookahead")}, '
            f'utilization {sync.get("lookahead_utilization")}) · '
            f'{sync.get("boundary_messages"):,} boundary message(s) · '
            f'coordinator wall {sync.get("wall_seconds")}s · '
            f'max outbox {sync.get("max_outbox_depth")}, '
            f'max arrival depth {sync.get("max_arrival_depth")}</p>')

    per_shard = sync.get("per_shard", [])
    bars = [(f"shard {row.get('shard')}",
             float(row.get("busy_seconds", 0.0)) * 1e3)
            for row in per_shard]
    rows = [[row.get("shard"), row.get("nodes"), row.get("events"),
             row.get("busy_seconds"), row.get("blocked_seconds"),
             f"{100.0 * row.get('busy_share', 0.0):.1f}%"]
            for row in per_shard]
    split = ("<h3>per-shard wall split (busy ms)</h3>"
             + _bar_chart(bars, slot=3, unit=" ms")
             + _data_table(["shard", "nodes", "events", "busy s",
                            "blocked s", "busy share"], rows))

    traffic = sync.get("traffic_matrix", [])
    matrix = ""
    if len(traffic) > 1:
        headers = ["src \\ dst"] + [f"to {j}" for j in range(len(traffic))]
        matrix = ("<h3>cross-region traffic (boundary messages)</h3>"
                  + _table(headers,
                           [[f"from {i}"] + list(row)
                            for i, row in enumerate(traffic)]))

    extras = []
    stitch = shard.get("stitch")
    if isinstance(stitch, dict):
        extras.append(
            f'stitched {stitch.get("txns", 0):,} transaction(s) from '
            f'{stitch.get("records", 0):,} span record(s) '
            f'({stitch.get("orphans", 0)} orphan(s), '
            f'{stitch.get("abandoned", 0)} abandoned) — the cross-shard '
            "critical path feeds the waterfall panel above")
    telemetry = shard.get("telemetry")
    if isinstance(telemetry, dict):
        extras.append(
            f'{telemetry.get("beats", 0)} worker heartbeat(s) at one per '
            f'{telemetry.get("every"):,} event(s) '
            f'(per shard: {telemetry.get("per_shard")})')
    extra = "".join(f'<p class="meta">{_esc(line)}</p>' for line in extras)
    return note + split + matrix + extra


# ----------------------------------------------------------------------
# Panel 7 — chaos verification
# ----------------------------------------------------------------------

def _panel_faults(payload: Mapping[str, Any]) -> str:
    faults = payload.get("faults")
    if not isinstance(faults, dict):
        return ('<p class="empty">This envelope carries no chaos '
                "verdicts (run <code>repro chaos --json</code> to sweep "
                "a seeded fault matrix through the verify checkers; see "
                "<code>docs/robustness.md</code>).</p>")
    points = faults.get("points", 0)
    passed = faults.get("passed", 0)
    failed = faults.get("failed", 0)
    verdict = ('<span class="ok">✓ all points passed</span>' if not failed
               else f'<span class="miss">✗ {failed} point(s) failed</span>')
    plan = faults.get("plan", {})
    plan_desc = ", ".join(f"{key}={_fmt(value)}"
                          for key, value in sorted(plan.items())
                          if value)
    note = (f'<p class="meta">{faults.get("workload")} workload × '
            f'{faults.get("nodes")} nodes × {faults.get("turns")} turns · '
            f'seeds {faults.get("seeds")} · '
            f'intensities {faults.get("intensities")} · '
            f'policies {faults.get("policies")} · '
            f"{passed}/{points} passed {verdict}</p>"
            f'<p class="meta">fault plan: <code>{_esc(plan_desc)}</code>'
            "</p>")

    fired: dict[str, int] = {}
    rows = []
    for point in faults.get("verdicts", []):
        checks = point.get("checks", {})
        complaints = ", ".join(f"{name}: {value}"
                               for name, value in checks.items()
                               if value != "ok") or "all ok"
        mark = ('<span class="ok">✓</span>' if point.get("ok")
                else '<span class="miss">✗</span>')
        rows.append([
            _esc(point.get("policy")), _esc(point.get("seed")),
            _esc(point.get("intensity")),
            _esc("–" if point.get("final") is None else point.get("final")),
            _esc(point.get("expected", "–")),
            _esc(point.get("end_time", "–")), mark, _esc(complaints),
        ])
        for name, value in point.get("faults", {}).items():
            fired[name] = fired.get(name, 0) + value
    table = _table(["policy", "seed", "intensity", "final", "expected",
                    "end cycle", "ok", "checks"], rows, cells_html=True)

    injected = ""
    if fired:
        bars = [(name.removeprefix("faults."), float(value))
                for name, value in sorted(fired.items())
                if not name.endswith("_cycles")]
        injected = ("<h3>injected faults (matrix total)</h3>"
                    + _bar_chart(bars, slot=5)
                    + _data_table(["fault counter", "count"],
                                  [[name, value] for name, value
                                   in sorted(fired.items())]))
    return note + table + injected


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------

def load_payload(path) -> dict[str, Any]:
    """Read and validate a ``repro.run/1`` JSON document from disk."""
    text = pathlib.Path(path).read_text()
    return validate_run_payload(json.loads(text))


def render_report(payload: Mapping[str, Any],
                  title: Optional[str] = None) -> str:
    """One envelope as a single self-contained HTML document."""
    document = validate_run_payload(dict(payload))
    name = title or f"repro run report — {document['experiment']}"
    params = ", ".join(f"{k}={_fmt(v)}"
                       for k, v in sorted(document["params"].items()))
    panels = [
        ("Table 1 — serialized messages per store",
         _panel_table1(document)),
        ("Figures", _panel_figures(document)),
        ("Critical path &amp; latency waterfalls",
         _panel_waterfalls(document)),
        ("Cache-line hotspots", _panel_hotspots(document)),
        ("Host-time profile", _panel_profile(document)),
        ("Sharded execution", _panel_shard(document)),
        ("Chaos verification", _panel_faults(document)),
    ]
    sections = "".join(
        f'<section class="panel" id="panel-{i + 1}">'
        f"<h2>{heading}</h2>{body}</section>"
        for i, (heading, body) in enumerate(panels)
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">\n'
        f"<title>{_esc(name)}</title>\n"
        f"<style>{_CSS}</style>\n"
        "</head><body><main>\n"
        f"<h1>{_esc(name)}</h1>\n"
        f'<p class="meta">schema <code>{_esc(document["schema"])}</code> · '
        f'version {_esc(document["version"])} · '
        f"params: {_esc(params) or '–'}</p>\n"
        f"{sections}"
        "</main></body></html>\n"
    )


def write_report(payload: Mapping[str, Any], path,
                 title: Optional[str] = None) -> None:
    """Render ``payload`` and write the HTML document to ``path``."""
    target = pathlib.Path(path)
    if target.parent != pathlib.Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_report(payload, title=title))
