"""Representative instrumented runs for ``repro stats`` / ``repro trace``.

Full experiments build many machines internally and throw their metrics
away with each; for interactive inspection we instead run one small,
*representative* configuration of each experiment with an
:class:`~repro.obs.events.EventRecorder` attached and hand back the live
machine, so its registry, latency tracker, and recorded events can be
rendered or exported.

.. code-block:: python

    run = run_instrumented("table1")
    print(run.machine.registry.render())
    print(export_events(run.recorder.events, "chrome"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..apps.synthetic import (
    SyntheticSpec,
    run_lockfree_counter,
    run_mcs_counter,
    run_tts_counter,
)
from ..apps.tclosure import run_transitive_closure
from ..coherence.policy import SyncPolicy
from ..config import SimConfig, small_config
from ..errors import ConfigError
from ..machine.machine import Machine, build_machine
from ..obs.events import EventRecorder
from ..sync.variant import PrimitiveVariant

__all__ = ["InstrumentedRun", "INSTRUMENTED_EXPERIMENTS", "run_instrumented"]


@dataclass
class InstrumentedRun:
    """A finished representative run with its recorder still attached."""

    experiment: str
    description: str
    machine: Machine
    recorder: EventRecorder


def _recorded(machine: Machine,
              blocks: Optional[Iterable[int]]) -> EventRecorder:
    return EventRecorder(machine.events, blocks=blocks)


def _run_table1(config: SimConfig, turns: int,
                blocks: Optional[Iterable[int]]) -> tuple[Machine,
                                                          EventRecorder, str]:
    # The richest Table 1 row: INV store to a remote-exclusive line
    # (4 serialized messages — ownership transferred through the home).
    machine = build_machine(config)
    recorder = _recorded(machine, blocks)
    addr = machine.alloc_sync(SyncPolicy.INV, home=1)

    def put(p, value):
        yield p.store(addr, value)

    machine.spawn(2, put, 1)        # stage: node 2 takes the line exclusive
    machine.run()
    machine.spawn(0, put, 2)        # measure: node 0 steals ownership
    machine.run()
    return machine, recorder, "INV store to a remote-exclusive line"


def _counter_runner(runner, label: str):
    def run(config: SimConfig, turns: int,
            blocks: Optional[Iterable[int]]) -> tuple[Machine,
                                                      EventRecorder, str]:
        holder: dict = {}

        def observe(machine: Machine) -> None:
            holder["machine"] = machine
            holder["recorder"] = _recorded(machine, blocks)

        contention = min(4, config.machine.n_nodes)
        spec = SyntheticSpec(contention=contention, turns=turns)
        variant = PrimitiveVariant("fap", SyncPolicy.INV)
        runner(variant, spec, config, observe=observe)
        return (holder["machine"], holder["recorder"],
                f"{label}, fetch_and_add/INV, c={contention}, "
                f"{turns} turns")

    return run


def _run_apps(config: SimConfig, turns: int,
              blocks: Optional[Iterable[int]]) -> tuple[Machine,
                                                        EventRecorder, str]:
    holder: dict = {}

    def observe(machine: Machine) -> None:
        holder["machine"] = machine
        holder["recorder"] = _recorded(machine, blocks)

    variant = PrimitiveVariant("fap", SyncPolicy.INV)
    run_transitive_closure(variant, size=12, config=config, observe=observe)
    return (holder["machine"], holder["recorder"],
            "Transitive Closure (size 12), fetch_and_add/INV")


def _run_llsc(config: SimConfig, turns: int,
              blocks: Optional[Iterable[int]]) -> tuple[Machine,
                                                        EventRecorder, str]:
    holder: dict = {}

    def observe(machine: Machine) -> None:
        holder["machine"] = machine
        holder["recorder"] = _recorded(machine, blocks)

    contention = min(4, config.machine.n_nodes)
    spec = SyntheticSpec(contention=contention, turns=turns)
    variant = PrimitiveVariant("llsc", SyncPolicy.UNC)
    run_lockfree_counter(variant, spec, config, observe=observe)
    return (holder["machine"], holder["recorder"],
            f"LL/SC counter under UNC (reservations), c={contention}")


def _run_dropcopy(config: SimConfig, turns: int,
                  blocks: Optional[Iterable[int]]) -> tuple[Machine,
                                                            EventRecorder,
                                                            str]:
    holder: dict = {}

    def observe(machine: Machine) -> None:
        holder["machine"] = machine
        holder["recorder"] = _recorded(machine, blocks)

    contention = min(4, config.machine.n_nodes)
    spec = SyntheticSpec(contention=contention, turns=turns)
    variant = PrimitiveVariant("fap", SyncPolicy.INV, use_drop=True)
    run_lockfree_counter(variant, spec, config, observe=observe)
    return (holder["machine"], holder["recorder"],
            f"fetch_and_Φ counter with drop_copy, c={contention}")


INSTRUMENTED_EXPERIMENTS = {
    "table1": _run_table1,
    "figure2": _run_apps,
    "figure3": _counter_runner(run_lockfree_counter, "lock-free counter"),
    "figure4": _counter_runner(run_tts_counter, "TTS-lock counter"),
    "figure5": _counter_runner(run_mcs_counter, "MCS-lock counter"),
    "figure6": _run_apps,
    "ablation-reservations": _run_llsc,
    "ablation-dropcopy": _run_dropcopy,
}


def run_instrumented(
    experiment: str,
    config: SimConfig | None = None,
    turns: int = 2,
    blocks: Optional[Iterable[int]] = None,
) -> InstrumentedRun:
    """Run one representative configuration of ``experiment``, recorded.

    Returns the live machine (registry and latency tracker populated) and
    the attached recorder (all event kinds, optionally block-filtered).
    """
    try:
        runner = INSTRUMENTED_EXPERIMENTS[experiment]
    except KeyError:
        known = ", ".join(sorted(INSTRUMENTED_EXPERIMENTS))
        raise ConfigError(
            f"unknown experiment {experiment!r}; choose from: {known}"
        ) from None
    machine, recorder, description = runner(
        config or small_config(n_nodes=4), turns, blocks
    )
    return InstrumentedRun(experiment, description, machine, recorder)
