"""Representative instrumented runs for ``repro stats`` / ``repro trace``.

Full experiments build many machines internally and throw their metrics
away with each; for interactive inspection we instead run one small,
*representative* configuration of each experiment with the full
observability stack attached — an
:class:`~repro.obs.events.EventRecorder`, a
:class:`~repro.obs.spans.SpanBuilder` (causal span graphs per
transaction), and a :class:`~repro.obs.hotspot.HotspotTracker` (per-line
contention) — and hand back the live machine, so its registry, latency
tracker, span graphs, and recorded events can be rendered or exported.

.. code-block:: python

    run = run_instrumented("table1")
    print(run.machine.registry.render())
    print(run.critpath().render())
    print(export_events(run.recorder.events, "chrome"))
    payload = run.payload()          # full repro.run/1 envelope
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from ..apps.synthetic import (
    SyntheticSpec,
    run_lockfree_counter,
    run_mcs_counter,
    run_tts_counter,
)
from ..apps.tclosure import run_transitive_closure
from ..coherence.policy import SyncPolicy
from ..config import SimConfig, small_config
from ..errors import ConfigError
from ..machine.machine import Machine, build_machine
from ..obs.critpath import CritPathAggregator
from ..obs.events import EventRecorder
from ..obs.hotspot import HotspotTracker
from ..obs.schema import make_run_payload
from ..obs.spans import SpanBuilder
from ..sync.variant import PrimitiveVariant

__all__ = [
    "Instruments",
    "InstrumentedRun",
    "INSTRUMENTED_EXPERIMENTS",
    "run_instrumented",
]


@dataclass
class Instruments:
    """The observability stack attached to one machine."""

    recorder: EventRecorder
    spans: SpanBuilder
    hotspots: HotspotTracker


@dataclass
class InstrumentedRun:
    """A finished representative run with its instruments still attached."""

    experiment: str
    description: str
    machine: Machine
    recorder: EventRecorder
    spans: SpanBuilder
    hotspots: HotspotTracker
    #: Wall-clock seconds the run itself took (machine build + program).
    wall_seconds: float = 0.0

    @property
    def events_per_second(self) -> float:
        """Simulated events executed per wall-clock second."""
        if not self.wall_seconds:
            return 0.0
        return self.machine.sim.events_processed / self.wall_seconds

    def critpath(self, worst: int = 8) -> CritPathAggregator:
        """Critical-path attribution over the run's remote transactions."""
        return CritPathAggregator.from_graphs(self.spans.completed,
                                              worst=worst)

    def payload(self, params: Optional[dict[str, Any]] = None,
                top_hotspots: int = 10,
                profile: Optional[dict[str, Any]] = None) -> dict[str, Any]:
        """The run as a full ``repro.run/1`` envelope.

        Includes every optional section: registry ``metrics``, the
        ``latency`` breakdown, ``critpath`` attribution, the
        ``hotspots`` ranking, and — when the run executed under
        :func:`repro.obs.profile.profiled` — the host-time ``profile``
        snapshot; the input ``repro report`` renders.
        """
        return make_run_payload(
            f"instrumented-{self.experiment}",
            params={"nodes": self.machine.n_nodes, **(params or {})},
            results={
                "description": self.description,
                "end_cycle": self.machine.now,
                "events_recorded": len(self.recorder),
                "transactions": len(self.spans.completed),
            },
            metrics=self.machine.registry.snapshot(),
            latency=self.machine.stats.latency.snapshot(),
            critpath=self.critpath().snapshot(),
            hotspots=self.hotspots.snapshot(top_n=top_hotspots),
            perf={
                "wall_seconds": round(self.wall_seconds, 6),
                "events_per_second": round(self.events_per_second, 1),
            },
            profile=profile,
        )


def _instrument(machine: Machine,
                blocks: Optional[Iterable[int]]) -> Instruments:
    """Attach the full observability stack to a live machine.

    The recorder honors the block filter; the span builder and hotspot
    tracker always see everything (a filtered span graph would report
    broken critical paths).
    """
    return Instruments(
        recorder=EventRecorder(machine.events, blocks=blocks),
        spans=SpanBuilder(machine.events),
        hotspots=HotspotTracker(machine.events),
    )


def _run_table1(config: SimConfig, turns: int,
                blocks: Optional[Iterable[int]]) -> tuple[Machine,
                                                          Instruments, str]:
    # The richest Table 1 row: INV store to a remote-exclusive line
    # (4 serialized messages — ownership transferred through the home).
    machine = build_machine(config)
    instruments = _instrument(machine, blocks)
    addr = machine.alloc_sync(SyncPolicy.INV, home=1)

    def put(p, value):
        yield p.store(addr, value)

    machine.spawn(2, put, 1)        # stage: node 2 takes the line exclusive
    machine.run()
    machine.spawn(0, put, 2)        # measure: node 0 steals ownership
    machine.run()
    return machine, instruments, "INV store to a remote-exclusive line"


def _counter_runner(runner, label: str):
    def run(config: SimConfig, turns: int,
            blocks: Optional[Iterable[int]]) -> tuple[Machine,
                                                      Instruments, str]:
        holder: dict = {}

        def observe(machine: Machine) -> None:
            holder["machine"] = machine
            holder["instruments"] = _instrument(machine, blocks)

        contention = min(4, config.machine.n_nodes)
        spec = SyntheticSpec(contention=contention, turns=turns)
        variant = PrimitiveVariant("fap", SyncPolicy.INV)
        runner(variant, spec, config, observe=observe)
        return (holder["machine"], holder["instruments"],
                f"{label}, fetch_and_add/INV, c={contention}, "
                f"{turns} turns")

    return run


def _run_apps(config: SimConfig, turns: int,
              blocks: Optional[Iterable[int]]) -> tuple[Machine,
                                                        Instruments, str]:
    holder: dict = {}

    def observe(machine: Machine) -> None:
        holder["machine"] = machine
        holder["instruments"] = _instrument(machine, blocks)

    variant = PrimitiveVariant("fap", SyncPolicy.INV)
    run_transitive_closure(variant, size=12, config=config, observe=observe)
    return (holder["machine"], holder["instruments"],
            "Transitive Closure (size 12), fetch_and_add/INV")


def _run_llsc(config: SimConfig, turns: int,
              blocks: Optional[Iterable[int]]) -> tuple[Machine,
                                                        Instruments, str]:
    holder: dict = {}

    def observe(machine: Machine) -> None:
        holder["machine"] = machine
        holder["instruments"] = _instrument(machine, blocks)

    contention = min(4, config.machine.n_nodes)
    spec = SyntheticSpec(contention=contention, turns=turns)
    variant = PrimitiveVariant("llsc", SyncPolicy.UNC)
    run_lockfree_counter(variant, spec, config, observe=observe)
    return (holder["machine"], holder["instruments"],
            f"LL/SC counter under UNC (reservations), c={contention}")


def _run_dropcopy(config: SimConfig, turns: int,
                  blocks: Optional[Iterable[int]]) -> tuple[Machine,
                                                            Instruments,
                                                            str]:
    holder: dict = {}

    def observe(machine: Machine) -> None:
        holder["machine"] = machine
        holder["instruments"] = _instrument(machine, blocks)

    contention = min(4, config.machine.n_nodes)
    spec = SyntheticSpec(contention=contention, turns=turns)
    variant = PrimitiveVariant("fap", SyncPolicy.INV, use_drop=True)
    run_lockfree_counter(variant, spec, config, observe=observe)
    return (holder["machine"], holder["instruments"],
            f"fetch_and_Φ counter with drop_copy, c={contention}")


def _run_chaos(config: SimConfig, turns: int,
               blocks: Optional[Iterable[int]]) -> tuple[Machine,
                                                         Instruments, str]:
    import dataclasses

    from ..faults.chaos import run_chaos_point
    from ..faults.plan import DEFAULT_CHAOS_PLAN

    holder: dict = {}

    def observe(machine: Machine) -> None:
        holder["machine"] = machine
        holder["instruments"] = _instrument(machine, blocks)

    cfg = dataclasses.replace(
        config,
        faults=dataclasses.replace(DEFAULT_CHAOS_PLAN, seed=config.seed),
    )
    verdict = run_chaos_point(policy="INV", workload="faa", turns=turns,
                              intensity=1.0, config=cfg, observe=observe)
    status = "all checks ok" if verdict["ok"] else "CHECKS FAILED"
    return (holder["machine"], holder["instruments"],
            f"faulted faa/INV chaos point (fault seed {cfg.seed}), {status}")


INSTRUMENTED_EXPERIMENTS = {
    "table1": _run_table1,
    "chaos": _run_chaos,
    "figure2": _run_apps,
    "figure3": _counter_runner(run_lockfree_counter, "lock-free counter"),
    "figure4": _counter_runner(run_tts_counter, "TTS-lock counter"),
    "figure5": _counter_runner(run_mcs_counter, "MCS-lock counter"),
    "figure6": _run_apps,
    "ablation-reservations": _run_llsc,
    "ablation-dropcopy": _run_dropcopy,
}


def run_instrumented(
    experiment: str,
    config: SimConfig | None = None,
    turns: int = 2,
    blocks: Optional[Iterable[int]] = None,
) -> InstrumentedRun:
    """Run one representative configuration of ``experiment``, recorded.

    Returns the live machine (registry and latency tracker populated)
    plus the attached instruments: the recorder (all event kinds,
    optionally block-filtered), the span builder, and the hotspot
    tracker.
    """
    try:
        runner = INSTRUMENTED_EXPERIMENTS[experiment]
    except KeyError:
        known = ", ".join(sorted(INSTRUMENTED_EXPERIMENTS))
        raise ConfigError(
            f"unknown experiment {experiment!r}; choose from: {known}"
        ) from None
    t0 = time.perf_counter()
    machine, instruments, description = runner(
        config or small_config(n_nodes=4), turns, blocks
    )
    wall = time.perf_counter() - t0
    return InstrumentedRun(
        experiment, description, machine,
        recorder=instruments.recorder,
        spans=instruments.spans,
        hotspots=instruments.hotspots,
        wall_seconds=wall,
    )
