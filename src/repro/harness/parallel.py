"""Parallel sweep execution with a content-addressed result cache.

Every figure and table in the paper is a cross-product of *independent*
simulation points — (primitive variant, sharing-pattern spec, machine
config) triples, each of which builds its own deterministic machine.
This module turns that observation into infrastructure:

* :class:`SweepPoint` — a picklable, hashable-by-content descriptor of
  one simulation point: which runner to call (by its module-qualified
  reference, so worker processes resolve it by import), with which
  variant/spec/config/extra keyword arguments.
* :func:`point_key` — a stable SHA-256 content hash of a point combined
  with a fingerprint of the ``repro`` source tree, so a key identifies
  "this exact simulation under this exact code".
* :class:`ResultCache` — a content-addressed on-disk store mapping point
  keys to their results and per-machine metrics snapshots.  Re-running
  an unchanged point is a cache hit, not a re-simulation; editing any
  simulator source invalidates every key at once.
* :class:`SweepExecutor` / :func:`run_sweep` — execute a list of points
  either serially in-process (``jobs=1``, bit-identical to the historic
  nested-loop drivers) or sharded across a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Results always come
  back in input order, each worker's
  :class:`~repro.obs.registry.MetricsRegistry` snapshot is merged into
  the parent's registry, and progress is published on an
  :class:`~repro.obs.events.EventBus` (``sweep.start`` / ``sweep.point``
  / ``sweep.done``).

Because every point carries its own config (including its RNG seed),
``jobs=1`` and ``jobs=N`` produce byte-identical results; scheduling
order can never leak into measurements.  :func:`derive_point_seed`
additionally offers deterministic per-point seeds derived from the
point's stable content hash, for sweeps that want decorrelated RNG
streams per point regardless of execution order (the paper panels keep
the config's own seed so historic numbers are unchanged).

.. code-block:: python

    points = [
        make_point(run_lockfree_counter, variant=v, spec=s, config=cfg)
        for s in specs for v in variants
    ]
    outcomes = run_sweep(points, jobs=4, cache=ResultCache())
    results = [o.result for o in outcomes]

See ``docs/parallel.md`` for the full design.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import importlib
import inspect
import json
import os
import pathlib
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence, TextIO

from ..apps.common import AppResult
from ..config import SimConfig
from ..errors import ConfigError, SimulationError, WorkerHangError
from ..obs.events import EventBus
from ..obs.registry import MetricsRegistry
from ..obs.telemetry import telemetry_line

__all__ = [
    "SweepPoint",
    "PointOutcome",
    "ResultCache",
    "SweepExecutor",
    "make_point",
    "run_sweep",
    "runner_ref",
    "resolve_runner",
    "point_key",
    "derive_point_seed",
    "code_fingerprint",
    "default_cache_dir",
    "attach_progress_printer",
    "attach_progress_jsonl",
    "attach_progress_writer",
]

CACHE_SCHEMA = "repro.cache/1"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


# ----------------------------------------------------------------------
# Runner references.
# ----------------------------------------------------------------------

def runner_ref(runner: Callable | str) -> str:
    """The stable ``module:qualname`` reference of a point runner.

    Workers resolve runners by import, so a runner must be a module-level
    callable (no lambdas, closures, or instance methods).
    """
    if isinstance(runner, str):
        return runner
    qualname = getattr(runner, "__qualname__", "")
    module = getattr(runner, "__module__", "")
    if not module or not qualname or "<locals>" in qualname:
        raise ConfigError(
            f"sweep runners must be module-level callables, got {runner!r}"
        )
    return f"{module}:{qualname}"


def resolve_runner(ref: str) -> Callable:
    """Import and return the callable a :func:`runner_ref` names."""
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ConfigError(f"malformed runner reference {ref!r}")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ConfigError(f"runner reference {ref!r} is not callable")
    return obj


# ----------------------------------------------------------------------
# Point descriptors and content hashing.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation point of a sweep.

    Attributes:
        runner: ``module:qualname`` reference of the runner callable.
        label: Human-readable progress label.
        variant: Primitive variant, passed as the first positional
            argument when present.
        spec: Sharing-pattern spec, passed positionally after the
            variant when present.
        config: Machine configuration, passed as the ``config`` keyword
            when present.
        kwargs: Extra keyword arguments as a sorted tuple of pairs
            (kept picklable and content-hashable).
        seed: Optional per-point seed override; when set (and a config
            is present) the runner sees ``replace(config, seed=seed)``.
    """

    runner: str
    label: str = ""
    variant: Any = None
    spec: Any = None
    config: Optional[SimConfig] = None
    kwargs: tuple[tuple[str, Any], ...] = ()
    seed: Optional[int] = None


def make_point(
    runner: Callable | str,
    *,
    variant: Any = None,
    spec: Any = None,
    config: Optional[SimConfig] = None,
    label: str = "",
    seed: Optional[int] = None,
    **kwargs: Any,
) -> SweepPoint:
    """Build a :class:`SweepPoint`, deriving a label when none is given."""
    ref = runner_ref(runner)
    if not label:
        parts = [ref.rpartition(":")[2]]
        if variant is not None and hasattr(variant, "label"):
            parts.append(variant.label)
        if spec is not None:
            parts.append(_describe(spec))
        parts.extend(f"{k}={v}" for k, v in sorted(kwargs.items()))
        label = " ".join(parts)
    return SweepPoint(
        runner=ref,
        label=label,
        variant=variant,
        spec=spec,
        config=config,
        kwargs=tuple(sorted(kwargs.items())),
        seed=seed,
    )


def _describe(spec: Any) -> str:
    if dataclasses.is_dataclass(spec):
        fields = dataclasses.asdict(spec)
        return " ".join(f"{k}={v}" for k, v in fields.items())
    return repr(spec)


def _canonical(value: Any) -> Any:
    """A JSON-able, order-stable view of a value for content hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        body = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__class__": type(value).__name__, **body}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot content-hash value of type {type(value)!r}")


_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """A SHA-256 digest of every ``.py`` file in the ``repro`` package.

    Cache keys mix this in so any edit to the simulator invalidates
    every cached result at once.  Computed once per process.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = pathlib.Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def point_key(point: SweepPoint, fingerprint: Optional[str] = None) -> str:
    """The content-addressed cache key of ``point``.

    SHA-256 over the canonical JSON of the point descriptor plus the
    source-tree fingerprint: identical points under identical code share
    a key; any difference in runner, variant, spec, config (including
    the seed), extra kwargs, or simulator source yields a new key.
    """
    material = json.dumps(
        {
            "fingerprint": fingerprint or code_fingerprint(),
            "point": _canonical(point),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode()).hexdigest()


def derive_point_seed(point: SweepPoint, base_seed: Optional[int] = None) -> int:
    """A deterministic per-point seed from the point's content hash.

    Mixes the point descriptor (minus any seed override) with
    ``base_seed`` (default: the point config's seed), so each point of a
    sweep gets a reproducible, execution-order-independent RNG stream
    that still varies with the user's chosen seed.  Pass
    ``reseed=True`` to :func:`run_sweep` to apply it; the paper drivers
    keep the config's own seed so historic numbers are unchanged.
    """
    if base_seed is None:
        base_seed = point.config.seed if point.config is not None else 0
    material = json.dumps(
        {
            "base": base_seed,
            "point": _canonical(dataclasses.replace(point, seed=None)),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big")


# ----------------------------------------------------------------------
# Result encoding (cache payloads are JSON, not pickles).
# ----------------------------------------------------------------------

def _encode_result(value: Any) -> dict[str, Any]:
    if isinstance(value, AppResult):
        body = dataclasses.asdict(value)
        body["contention_histogram"] = {
            str(level): pct
            for level, pct in value.contention_histogram.items()
        }
        return {"__result__": "AppResult", "value": body}
    return {"__result__": "json", "value": value}


def _decode_result(encoded: dict[str, Any]) -> Any:
    kind = encoded.get("__result__")
    if kind == "AppResult":
        body = dict(encoded["value"])
        body["contention_histogram"] = {
            int(level): pct
            for level, pct in body["contention_histogram"].items()
        }
        return AppResult(**body)
    if kind == "json":
        return encoded["value"]
    raise ValueError(f"unknown cached result kind {kind!r}")


# ----------------------------------------------------------------------
# The content-addressed on-disk cache.
# ----------------------------------------------------------------------

def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


class ResultCache:
    """Content-addressed store of point results under a root directory.

    Entries live at ``<root>/<key[:2]>/<key>.json`` in a small envelope
    (schema ``repro.cache/1``) holding the encoded result plus the
    point's metrics snapshot.  Unreadable entries are misses; *corrupt*
    entries (unparsable JSON, wrong schema/key, missing payload) are
    additionally quarantined — moved aside to ``<key>.json.corrupt``
    and counted in :attr:`corrupt`, so recurring corruption is visible
    in ``repro stats`` (``sweep.cache.corrupt``) instead of silently
    re-simulating forever.  Writes are atomic (temp file + rename) so
    concurrent workers cannot tear an entry.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def path_for(self, key: str) -> pathlib.Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict[str, Any]]:
        """The stored payload for ``key``, or None on a miss."""
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            document = json.loads(text)
        except ValueError:
            self._quarantine(path)
            self.misses += 1
            return None
        if (
            not isinstance(document, dict)
            or document.get("schema") != CACHE_SCHEMA
            or document.get("key") != key
            or "payload" not in document
        ):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return document["payload"]

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a corrupt entry aside so it is inspectable, not re-read."""
        self.corrupt += 1
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:  # pragma: no cover - raced or read-only cache
            pass

    def put(self, key: str, payload: dict[str, Any],
            point: Optional[SweepPoint] = None) -> None:
        """Store ``payload`` under ``key`` atomically."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "point": _canonical(point) if point is not None else None,
            "payload": payload,
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(document, sort_keys=True))
        os.replace(tmp, path)
        self.stores += 1


# ----------------------------------------------------------------------
# Point execution (runs in the parent for jobs=1, in workers otherwise).
# ----------------------------------------------------------------------

def _accepts_observe(fn: Callable) -> bool:
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins etc.
        return False
    return "observe" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


def execute_point(point: SweepPoint) -> dict[str, Any]:
    """Run one point; return its encoded result + metrics snapshot.

    This is the unit of work shipped to pool workers, so it must stay a
    module-level function (picklable by reference) and return only
    JSON-able data.
    """
    fn = resolve_runner(point.runner)
    config = point.config
    if point.seed is not None and config is not None:
        config = dataclasses.replace(config, seed=point.seed)
    args: list[Any] = []
    if point.variant is not None:
        args.append(point.variant)
    if point.spec is not None:
        args.append(point.spec)
    kwargs = dict(point.kwargs)
    if config is not None:
        kwargs["config"] = config
    holder: dict[str, Any] = {}
    if _accepts_observe(fn):
        kwargs["observe"] = holder.setdefault("machines", []).append
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    wall = time.perf_counter() - t0
    merged = MetricsRegistry()
    for machine in holder.get("machines", []):
        registry = getattr(machine, "registry", None)
        if registry is not None:
            merged.merge_snapshot(registry.snapshot())
    metrics = merged.snapshot() if len(merged) else {}
    # Per-point host telemetry: forwarded on sweep.point (live per-point
    # throughput for --progress) but never cached — wall numbers belong
    # to this host and run, not to the point's content hash.
    events = metrics.get("sim.events_processed", 0)
    telemetry = {
        "wall_seconds": round(wall, 6),
        "events": events,
        "events_per_second": round(events / wall, 1) if wall > 0 else 0.0,
    }
    return {"result": _encode_result(result), "metrics": metrics,
            "telemetry": telemetry}


# ----------------------------------------------------------------------
# The executor.
# ----------------------------------------------------------------------

@dataclass
class PointOutcome:
    """One resolved sweep point.

    ``telemetry`` holds the executing worker's host-side measurements
    (``wall_seconds``, ``events``, ``events_per_second``); empty for
    cache hits, which did no simulation on this host.  ``error`` is set
    (and ``result`` is None) for a point quarantined after exhausting
    its retries; ``attempts`` counts executions including the
    successful one.
    """

    point: SweepPoint
    result: Any
    metrics: dict[str, Any]
    cached: bool
    key: str
    telemetry: dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    attempts: int = 1


#: Retry backoff sleeps are capped so a deep retry budget cannot stall
#: a sweep for minutes between attempts.
_BACKOFF_CAP = 30.0


class SweepExecutor:
    """Run independent sweep points, optionally in parallel and cached.

    Results are returned in input order regardless of completion order,
    per-point metrics snapshots are merged (input order, so the merged
    registry is deterministic) into :attr:`registry`, and progress is
    emitted on :attr:`events`.

    Failure handling (``docs/robustness.md``): a point whose execution
    raises (or whose worker process dies) is retried up to ``retries``
    times with capped exponential backoff.  A point still running after
    ``point_timeout`` seconds is classified as hung; its pool is killed
    and the point fails immediately — a deterministic hang would only
    hang again, so timeouts are never retried.  With
    ``quarantine=True`` an exhausted point becomes a
    :class:`PointOutcome` with ``error`` set instead of aborting the
    sweep, so one poisoned point cannot sink a thousand-point run.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | str | os.PathLike | None = None,
        events: Optional[EventBus] = None,
        registry: Optional[MetricsRegistry] = None,
        retries: int = 0,
        retry_backoff: float = 0.25,
        point_timeout: Optional[float] = None,
        quarantine: bool = False,
    ) -> None:
        if isinstance(cache, (str, os.PathLike)):
            cache = ResultCache(cache)
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.events = events if events is not None else EventBus()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.retries = max(0, int(retries))
        self.retry_backoff = max(0.0, float(retry_backoff))
        self.point_timeout = point_timeout
        self.quarantine = quarantine

    def run(
        self,
        points: Iterable[SweepPoint],
        reseed: bool = False,
    ) -> list[PointOutcome]:
        """Resolve every point; see the class docstring for guarantees."""
        plan = list(points)
        if reseed:
            plan = [
                dataclasses.replace(p, seed=derive_point_seed(p)) for p in plan
            ]
        total = len(plan)
        self.events.emit("sweep.start", ts=0, total=total, jobs=self.jobs)
        keys = [point_key(p) for p in plan]
        outcomes: list[Optional[PointOutcome]] = [None] * total
        pending: list[int] = []
        done = 0
        for i, (point, key) in enumerate(zip(plan, keys)):
            payload = self.cache.get(key) if self.cache is not None else None
            if payload is not None:
                outcomes[i] = self._outcome(point, key, payload, cached=True)
                done += 1
                self._emit_point(outcomes[i], i, done, total)
            else:
                pending.append(i)
        if pending and self.jobs > 1 and len(pending) > 1:
            done = self._run_pool(plan, keys, pending, outcomes, done, total)
        else:
            for i in pending:
                outcomes[i] = self._execute_with_retry(plan[i], keys[i])
                done += 1
                self._emit_point(outcomes[i], i, done, total)
        resolved = [o for o in outcomes if o is not None]
        self._merge(resolved)
        self.events.emit(
            "sweep.done",
            ts=total,
            total=total,
            cached=sum(o.cached for o in resolved),
            executed=sum(not o.cached for o in resolved),
        )
        return resolved

    # ------------------------------------------------------------------
    # Failure handling.
    # ------------------------------------------------------------------

    def _backoff(self, attempt: int) -> None:
        """Sleep before retry number ``attempt`` (capped exponential)."""
        delay = min(self.retry_backoff * (2 ** (attempt - 1)), _BACKOFF_CAP)
        if delay > 0:
            time.sleep(delay)

    def _failed(
        self, point: SweepPoint, key: str, exc: BaseException, attempts: int,
    ) -> PointOutcome:
        """Quarantine an exhausted point, or abort the sweep."""
        error = f"{type(exc).__name__}: {exc}"
        if not self.quarantine:
            raise SimulationError(
                f"sweep point {point.label!r} failed after {attempts} "
                f"attempt(s): {error}"
            ) from exc
        return PointOutcome(
            point=point, result=None, metrics={}, cached=False, key=key,
            error=error, attempts=attempts,
        )

    def _execute_with_retry(self, point: SweepPoint, key: str) -> PointOutcome:
        attempt = 1
        while True:
            try:
                payload = execute_point(point)
            except Exception as exc:
                if attempt <= self.retries:
                    self._backoff(attempt)
                    attempt += 1
                    continue
                return self._failed(point, key, exc, attempt)
            return self._store(point, key, payload, attempts=attempt)

    def _run_pool(
        self,
        plan: Sequence[SweepPoint],
        keys: Sequence[str],
        pending: Sequence[int],
        outcomes: list,
        done: int,
        total: int,
    ) -> int:
        """Drain ``pending`` through a process pool; returns new ``done``.

        The pool runs futures in submission order, so the oldest
        ``workers`` unfinished futures are the ones (approximately) on
        a core; only those are on the ``point_timeout`` clock.  A hung
        or crashed worker poisons its ``ProcessPoolExecutor``, which
        cannot cancel running futures — both paths therefore kill the
        pool outright, rebuild it, and resubmit the innocent unfinished
        points.
        """
        workers = min(self.jobs, len(pending))
        attempts = {i: 1 for i in pending}
        pool = ProcessPoolExecutor(max_workers=workers)
        futures: dict[Any, int] = {}
        order: list[Any] = []
        deadlines: dict[Any, float] = {}

        def submit(index: int) -> None:
            future = pool.submit(execute_point, plan[index])
            futures[future] = index
            order.append(future)

        def kill_pool() -> None:
            for proc in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    proc.kill()
                except Exception:  # pragma: no cover - already dead
                    pass
            pool.shutdown(wait=False, cancel_futures=True)

        def resolve_failure(index: int, exc: BaseException) -> None:
            nonlocal done
            outcomes[index] = self._failed(
                plan[index], keys[index], exc, attempts[index]
            )
            done += 1
            self._emit_point(outcomes[index], index, done, total)

        try:
            for i in pending:
                submit(i)
            while futures:
                live = [f for f in order if f in futures]
                running = live[:workers]
                timeout = None
                if self.point_timeout is not None:
                    now = time.monotonic()
                    for future in running:
                        deadlines.setdefault(future, now + self.point_timeout)
                    timeout = max(
                        0.0, min(deadlines[f] for f in running) - now
                    )
                finished, _ = wait(
                    set(futures), timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not finished:
                    now = time.monotonic()
                    overdue = [f for f in running
                               if deadlines.get(f, now + 1.0) <= now]
                    if not overdue:
                        continue
                    # Hung workers: fail their points (a deterministic
                    # hang would hang every retry), kill the poisoned
                    # pool, and resubmit the innocent unfinished points.
                    for future in overdue:
                        index = futures.pop(future)
                        deadlines.pop(future, None)
                        resolve_failure(index, WorkerHangError(
                            f"sweep point {plan[index].label!r} still "
                            f"running after {self.point_timeout}s"
                        ))
                    survivors = sorted(futures.values())
                    futures.clear()
                    order.clear()
                    deadlines.clear()
                    kill_pool()
                    pool = ProcessPoolExecutor(max_workers=workers)
                    for index in survivors:
                        submit(index)
                    continue
                broken: Optional[BaseException] = None
                for future in finished:
                    index = futures.pop(future)
                    deadlines.pop(future, None)
                    try:
                        payload = future.result()
                    except BrokenProcessPool as exc:
                        # The dying worker poisons every in-flight
                        # future; finish collecting any real results
                        # from this round, then handle the rest below.
                        futures[future] = index
                        broken = exc
                        continue
                    except Exception as exc:
                        if attempts[index] <= self.retries:
                            attempts[index] += 1
                            self._backoff(attempts[index] - 1)
                            submit(index)
                        else:
                            resolve_failure(index, exc)
                        continue
                    outcomes[index] = self._store(
                        plan[index], keys[index], payload,
                        attempts=attempts[index],
                    )
                    done += 1
                    self._emit_point(outcomes[index], index, done, total)
                if broken is not None:
                    # Which point killed the worker is unknowable from
                    # here, so the crash round counts against every
                    # in-flight point; retries bound the total rounds.
                    crashed = sorted(futures.values())
                    futures.clear()
                    order.clear()
                    deadlines.clear()
                    kill_pool()
                    pool = ProcessPoolExecutor(max_workers=workers)
                    retry: list[int] = []
                    for index in crashed:
                        if attempts[index] <= self.retries:
                            attempts[index] += 1
                            retry.append(index)
                        else:
                            resolve_failure(index, broken)
                    if retry:
                        self._backoff(max(attempts[i] for i in retry) - 1)
                        for index in retry:
                            submit(index)
        finally:
            if futures:
                # Abnormal exit: never block on stuck or dead workers.
                kill_pool()
            else:
                pool.shutdown()
        return done

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _outcome(
        self,
        point: SweepPoint,
        key: str,
        payload: dict[str, Any],
        cached: bool,
        attempts: int = 1,
    ) -> PointOutcome:
        return PointOutcome(
            point=point,
            result=_decode_result(payload["result"]),
            metrics=payload.get("metrics", {}),
            cached=cached,
            key=key,
            telemetry=payload.get("telemetry", {}),
            attempts=attempts,
        )

    def _store(
        self, point: SweepPoint, key: str, payload: dict[str, Any],
        attempts: int = 1,
    ) -> PointOutcome:
        if self.cache is not None:
            # Cache entries are content-addressed simulation outputs;
            # host-side wall measurements don't belong in them.
            self.cache.put(
                key,
                {k: v for k, v in payload.items() if k != "telemetry"},
                point,
            )
        return self._outcome(point, key, payload, cached=False,
                             attempts=attempts)

    def _emit_point(
        self, outcome: PointOutcome, index: int, done: int, total: int
    ) -> None:
        extra: dict[str, Any] = dict(outcome.telemetry)
        if outcome.error is not None:
            extra["error"] = outcome.error
        if outcome.attempts > 1:
            extra["attempts"] = outcome.attempts
        self.events.emit(
            "sweep.point",
            ts=done,
            index=index,
            total=total,
            label=outcome.point.label,
            cached=outcome.cached,
            key=outcome.key,
            **extra,
        )

    def _merge(self, outcomes: Sequence[PointOutcome]) -> None:
        sweep = self.registry
        sweep.counter("sweep.points").inc(len(outcomes))
        for outcome in outcomes:
            if outcome.error is not None:
                sweep.counter("sweep.quarantined").inc()
                continue
            name = "sweep.cache.hits" if outcome.cached else "sweep.executed"
            sweep.counter(name).inc()
            sweep.merge_snapshot(outcome.metrics)
        if self.cache is not None and self.cache.corrupt:
            sweep.counter("sweep.cache.corrupt").value = self.cache.corrupt


def run_sweep(
    points: Iterable[SweepPoint],
    jobs: int = 1,
    cache: ResultCache | str | os.PathLike | None = None,
    events: Optional[EventBus] = None,
    registry: Optional[MetricsRegistry] = None,
    reseed: bool = False,
    retries: int = 0,
    retry_backoff: float = 0.25,
    point_timeout: Optional[float] = None,
    quarantine: bool = False,
) -> list[PointOutcome]:
    """Convenience wrapper: build a :class:`SweepExecutor` and run it."""
    executor = SweepExecutor(
        jobs=jobs, cache=cache, events=events, registry=registry,
        retries=retries, retry_backoff=retry_backoff,
        point_timeout=point_timeout, quarantine=quarantine,
    )
    return executor.run(points, reseed=reseed)


# ----------------------------------------------------------------------
# Progress reporting.
# ----------------------------------------------------------------------

def attach_progress_printer(
    events: EventBus, stream: Optional[TextIO] = None
) -> int:
    """Subscribe a line-per-point progress printer; returns the token.

    Lines go to ``stream`` (default stderr) so machine-readable stdout
    stays clean:

    .. code-block:: text

        [sweep 3/63] lockfree FAP/INV contention=4 ... (317,204 ev/s)
        [sweep 4/63] lockfree FAP/INV contention=8 ... (cached)
        [sweep] done: 60 cached, 3 simulated
    """
    out = stream if stream is not None else sys.stderr

    def on_event(event) -> None:
        if event.kind == "sweep.point":
            if event.data.get("error"):
                suffix = f" (FAILED: {event.data['error']})"
            elif event.data.get("cached"):
                suffix = " (cached)"
            else:
                eps = event.data.get("events_per_second")
                suffix = f" ({eps:,.0f} ev/s)" if eps else ""
            print(
                f"[sweep {event.ts}/{event.data.get('total', '?')}] "
                f"{event.data.get('label', '')}{suffix}",
                file=out,
                flush=True,
            )
        elif event.kind == "sweep.done":
            print(
                f"[sweep] done: {event.data.get('cached', 0)} cached, "
                f"{event.data.get('executed', 0)} simulated",
                file=out,
                flush=True,
            )

    return events.subscribe(on_event, kinds=("sweep.point", "sweep.done"))


def attach_progress_jsonl(
    events: EventBus, stream: Optional[TextIO] = None
) -> int:
    """The machine-readable sibling of :func:`attach_progress_printer`.

    Serializes every ``sweep.*`` event as one JSON line (via the
    telemetry serializer, so consumers parse a single framing), with a
    ``record`` discriminator equal to the event kind:

    .. code-block:: text

        {"jobs":4,"record":"sweep.start","total":63}
        {"cached":false,"events_per_second":317204.0,...,"record":"sweep.point"}
        {"cached":60,"executed":3,"record":"sweep.done","total":63}
    """
    out = stream if stream is not None else sys.stderr

    def on_event(event) -> None:
        record = {"record": event.kind, **event.data}
        if event.kind == "sweep.point":
            record["done"] = event.ts
        print(telemetry_line(record), file=out, flush=True)

    return events.subscribe(
        on_event, kinds=("sweep.start", "sweep.point", "sweep.done")
    )


def attach_progress_writer(
    events: EventBus, progress_format: str = "text",
    stream: Optional[TextIO] = None,
) -> int:
    """Attach the progress reporter named by ``--progress-format``."""
    if progress_format == "jsonl":
        return attach_progress_jsonl(events, stream)
    if progress_format == "text":
        return attach_progress_printer(events, stream)
    raise ConfigError(f"unknown progress format {progress_format!r}")
