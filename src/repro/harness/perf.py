"""Wall-clock performance harness for the simulation kernel.

The simulator is deterministic, so its *results* are regression-tested
bit-for-bit elsewhere (``tools/check_bench_regression.py``); this module
tracks how *fast* those results are produced.  It runs a small set of
fixed-workload microbenchmark kernels, each stressing one layer of the
hot path:

``event_churn``
    The bare :class:`~repro.sim.engine.Simulator`: self-rescheduling
    callback chains with a realistic mix of near (calendar-bucket) and
    far (heap) delays.  No machine model at all — this is the event
    core's ceiling.
``faa_storm``
    A full machine under total contention: every processor hammers one
    ``fetch_and_add`` counter (INV policy), exercising the coherence
    controller, directory, memory queue, and message pool together.
``mesh_saturation``
    The wormhole mesh alone: rounds of all-to-all message blasts through
    the entry/exit port model, no coherence on top.
``table1_mini``
    A shrunk Table 1 sweep — the paper's flagship experiment end to end,
    including machine construction costs.

Each kernel returns a dict of **deterministic proxies** (event counts,
message counts, end cycles, final values).  The harness replays every
kernel ``reps`` times, asserts the proxies are identical on every rep
(catching nondeterminism the moment an optimization introduces it), and
reports best-of-``reps`` wall seconds plus events/second.  One extra
untimed rep runs under :mod:`tracemalloc` to record peak allocations.

``repro perf [--quick] [--json OUT]`` drives this from the CLI; the JSON
output is a standard ``repro.run/1`` envelope (``BENCH_PERF.json`` in
CI) gated by ``tools/check_perf_regression.py``, which fails on any
proxy drift and treats wall-clock numbers as informational.  See
``docs/performance.md`` for how to read the output.
"""

from __future__ import annotations

import gc
import time
import tracemalloc
from typing import Any, Callable, Iterable, Optional

from ..config import small_config
from ..coherence.policy import SyncPolicy
from ..machine.machine import build_machine
from ..network.mesh import WormholeMesh
from ..network.message import Message, MessageType, Unit
from ..obs.schema import make_run_payload
from ..sim.engine import Simulator
from .report import render_table
from .table1 import run_table1

__all__ = [
    "PERF_KERNELS",
    "MEM_BUDGETS_KIB",
    "run_perf",
    "perf_payload",
    "render_perf",
]

#: Delay mix for the event-churn kernel: dominated by the small delays a
#: real machine schedules (hits, occupancies, hops), with one far delay
#: so the heap back end and the calendar/heap merge path stay hot.
_CHURN_DELAYS = (1, 2, 4, 0, 8, 3, 300, 5)


def _event_churn(quick: bool) -> dict[str, Any]:
    """Self-rescheduling callback chains on a bare simulator."""
    budget = 60_000 if quick else 240_000
    sim = Simulator()
    remaining = [budget]
    delays = _CHURN_DELAYS
    schedule = sim.schedule

    def tick(_token: int) -> None:
        left = remaining[0]
        if left:
            remaining[0] = left - 1
            schedule(delays[left & 7], tick, left)

    for chain in range(16):
        schedule(chain & 3, tick, chain)
    sim.run()
    return {"end_cycle": sim.now, "events": sim.events_processed}


def _faa_storm(quick: bool) -> dict[str, Any]:
    """Every processor increments one INV-policy counter, full tilt."""
    nodes, turns = (8, 24) if quick else (16, 96)
    m = build_machine(small_config(n_nodes=nodes))
    addr = m.alloc_sync(SyncPolicy.INV, home=1)

    def prog(p):
        for _ in range(turns):
            yield p.fetch_add(addr, 1)

    m.spawn_all(prog)
    end = m.run()
    return {
        "end_cycle": end,
        "events": m.sim.events_processed,
        "messages": m.mesh.stats.messages,
        "flits": m.mesh.stats.flits,
        "final_value": m.read_word(addr),
    }


def _mesh_saturation(quick: bool) -> dict[str, Any]:
    """Rounds of all-to-all blasts through the bare wormhole mesh."""
    rounds = 48 if quick else 200
    n_nodes = 16
    sim = Simulator()
    mesh = WormholeMesh(sim, small_config(n_nodes=n_nodes))
    delivered = [0]

    def sink(msg: Message) -> None:
        delivered[0] += 1
        Message.release(msg)

    for node in range(n_nodes):
        mesh.register(node, Unit.HOME, sink)

    def blast(r: int) -> None:
        for src in range(n_nodes):
            dst = (src + r + 1) % n_nodes
            mesh.send(
                Message.acquire(MessageType.GETX, src, dst, Unit.HOME, src)
            )

    for r in range(rounds):
        sim.schedule(r * 3, blast, r)
    sim.run()
    return {
        "end_cycle": sim.now,
        "events": sim.events_processed,
        "messages": mesh.stats.messages + mesh.stats.local_messages,
        "flits": mesh.stats.flits,
        "delivered": delivered[0],
    }


def _table1_mini(quick: bool) -> dict[str, Any]:
    """The paper's Table 1 sweep at a reduced node count."""
    config = None if quick else small_config(n_nodes=16)
    chains = run_table1(config=config)
    return {"chains": dict(chains)}


def _mesh_64_sharded(quick: bool) -> dict[str, Any]:
    """Conservative-window sharding of one contended 64-node machine.

    Runs the golden contention workload serial (``shards=1``) and split
    four ways (inline backend: pure coordination cost, no IPC), asserts
    the two runs are bit-identical, and reports the sharded run's shape
    (window count, boundary traffic) as deterministic proxies.
    """
    from .shardrun import run_shard

    nodes, turns = (16, 4) if quick else (64, 8)
    config = small_config(n_nodes=nodes)
    serial = run_shard(config, workload="golden_contention", shards=1,
                       turns=turns, backend="inline")
    sharded = run_shard(config, workload="golden_contention", shards=4,
                        turns=turns, backend="inline")
    return {
        "events": serial.results["events"],
        "end_cycle": serial.results["end_time"],
        "final_match": serial.results["match"],
        "identical": (serial.results == sharded.results
                      and serial.metrics == sharded.metrics),
        "windows": sharded.info["windows"],
        "boundary_messages": sharded.info["boundary_messages"],
    }


def _shard_scaling(quick: bool) -> dict[str, Any]:
    """Wall-clock scaling of ``--shards`` on a region-local workload.

    The ``local_faa`` workload has zero boundary traffic, so wide
    windows are safe and each worker simulates an independent slice —
    the configuration where sharding pays.  Quick mode steps the
    regions inline (determinism check, no processes); full mode forks
    one worker per region on a 256-node mesh and reports measured
    walls and speedups under ``_info`` (host-dependent, never gated —
    on a single-core host the speedup is honestly below 1).
    """
    from .shardrun import run_shard

    if quick:
        nodes, turns, backend, shard_counts = 64, 20, "inline", (1, 4)
    else:
        nodes, turns, backend, shard_counts = 256, 40, "process", (1, 2, 4)
    config = small_config(n_nodes=nodes)
    serial = run_shard(config, workload="local_faa", shards=1,
                       turns=turns, backend="inline", window=1 << 20)
    walls: dict[str, float] = {}
    identical = True
    for shards in shard_counts:
        t0 = time.perf_counter()
        outcome = run_shard(config, workload="local_faa", shards=shards,
                            turns=turns,
                            backend="inline" if shards == 1 else backend,
                            window=1 << 20)
        walls[f"x{shards}"] = time.perf_counter() - t0
        identical = identical and (outcome.results == serial.results
                                   and outcome.metrics == serial.metrics)
    events = serial.results["events"]
    info = {f"wall_{k}": round(v, 6) for k, v in walls.items()}
    info.update({
        f"events_per_second_{k}": round(events / v) if v else None
        for k, v in walls.items()
    })
    base = walls.get("x1")
    for k, v in walls.items():
        if k != "x1" and base and v:
            info[f"speedup_{k}"] = round(base / v, 3)
    return {
        "events": events,
        "end_cycle": serial.results["end_time"],
        "final_match": serial.results["match"],
        "identical": identical,
        "_info": info,
    }


def _registry_sum(machine, suffix: str) -> int:
    """Sum one per-node counter family from the machine's registry."""
    snap = machine.registry.snapshot()
    return sum(v for k, v in snap.items() if k.endswith(suffix))


def _mesh_1024(quick: bool) -> dict[str, Any]:
    """Construction + storms on the 1024-node (32x32 torus) machine.

    The scale configuration a real 1024-node machine would use: torus
    links, limited-pointer (Dir_8_B) directory.  Phase one is the
    paper's winning recipe at scale — every processor hits one uncached
    ``fetch_and_add`` counter.  Phase two puts a smaller crowd on an
    INV-policy counter, overflowing the pointer capacity so the
    directory broadcasts — the worst-case fan-out an imprecise
    representation pays, with the spurious-target volume reported as a
    deterministic proxy.  The tracemalloc window around this kernel
    covers machine construction, so its budget gates the constant-memory
    claim for topology + directory state.
    """
    from ..config import scale_config

    inv_crowd, turns = (16, 1) if quick else (48, 2)
    config = scale_config(1024, topology="torus", directory="limited")
    t0 = time.perf_counter()
    m = build_machine(config)
    build_wall = time.perf_counter() - t0
    unc = m.alloc_sync(SyncPolicy.UNC, home=0)

    def unc_prog(p):
        for _ in range(turns):
            yield p.fetch_add(unc, 1)

    m.spawn_all(unc_prog)
    unc_end = m.run()
    # Readers first, so the directory accumulates `inv_crowd` sharers —
    # past the 8 pointers, the Dir_8_B entry overflows.  The writer's
    # fetch_and_add then invalidates via broadcast: 1023 INVs for a
    # handful of true sharers, all counted in spurious_targets.
    inv = m.alloc_sync(SyncPolicy.INV, home=1)

    def reader(p):
        yield p.load(inv)

    def writer(p):
        for _ in range(turns):
            yield p.fetch_add(inv, 1)

    for pid in range(2, 2 + inv_crowd):
        m.spawn(pid, reader)
    m.run()
    m.spawn(0, writer)
    end = m.run()
    return {
        "end_cycle": end,
        "unc_end_cycle": unc_end,
        "events": m.sim.events_processed,
        "messages": m.mesh.stats.messages,
        "unc_final": m.read_word(unc),
        "inv_final": m.read_word(inv),
        "spurious_targets": _registry_sum(m, ".spurious_targets"),
        "imprecise_fanouts": _registry_sum(m, ".imprecise_fanouts"),
        "_info": {"build_wall_seconds": round(build_wall, 6)},
    }


_Kernel = Callable[[bool], dict[str, Any]]

PERF_KERNELS: dict[str, _Kernel] = {
    "event_churn": _event_churn,
    "faa_storm": _faa_storm,
    "mesh_saturation": _mesh_saturation,
    "table1_mini": _table1_mini,
    "mesh_64_sharded": _mesh_64_sharded,
    "shard_scaling": _shard_scaling,
    "mesh_1024": _mesh_1024,
}

#: Absolute peak-allocation budgets per kernel, in KiB, gated by
#: ``tools/check_perf_regression.py`` on every CI run (on top of the
#: ±10% drift band against the committed baseline).  These are
#: deliberately loose ceilings — about 2x the measured peaks — meant to
#: catch structural regressions (an O(N^2) table sneaking back into the
#: topology, per-node state growing a dimension), not noise.  The
#: ``mesh_1024`` budget is the headline: a 1024-node machine must keep
#: construction + two storms under ~32 MiB.
MEM_BUDGETS_KIB: dict[str, int] = {
    "event_churn": 512,
    "faa_storm": 4_096,
    "mesh_saturation": 1_024,
    "table1_mini": 8_192,
    "mesh_64_sharded": 4_096,
    "shard_scaling": 16_384,
    "mesh_1024": 32_768,
}


def run_perf(
    quick: bool = False,
    reps: Optional[int] = None,
    kernels: Optional[Iterable[str]] = None,
) -> dict[str, Any]:
    """Run the microbenchmark kernels; return the results tree.

    Args:
        quick: Use the small workloads (CI smoke; seconds, not minutes).
        reps: Timed repetitions per kernel (best-of).  Defaults to 2 in
            quick mode, 3 otherwise.
        kernels: Subset of :data:`PERF_KERNELS` names; all by default.

    Raises:
        RuntimeError: if any kernel's deterministic proxies differ
            between repetitions.
    """
    if reps is None:
        reps = 2 if quick else 3
    names = list(PERF_KERNELS) if kernels is None else list(kernels)
    out: dict[str, Any] = {}
    for name in names:
        fn = PERF_KERNELS[name]
        # One untimed rep under tracemalloc: allocation tracking slows
        # execution several-fold, so it never shares a rep with timing.
        # Collect first so the peak doesn't depend on whether a GC pass
        # happens to reclaim earlier kernels' garbage mid-measurement —
        # peak_alloc_kib is gated at ±10% by
        # tools/check_perf_regression.py and must be stable run to run.
        gc.collect()
        tracemalloc.start()
        proxies = fn(quick)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # A kernel may stash host-side measurements (wall-based speedup
        # ratios, per-variant throughput) under "_info"; they are
        # reported alongside the proxies but excluded from the
        # determinism comparison and never gated.
        info = proxies.pop("_info", None)
        best: Optional[float] = None
        for _ in range(reps):
            t0 = time.perf_counter()
            again = fn(quick)
            wall = time.perf_counter() - t0
            info = again.pop("_info", info)
            if again != proxies:
                raise RuntimeError(
                    f"perf kernel {name!r} is nondeterministic: "
                    f"{again!r} != {proxies!r}"
                )
            if best is None or wall < best:
                best = wall
        events = proxies.get("events")
        peak_kib = round(peak / 1024, 1)
        budget = MEM_BUDGETS_KIB.get(name)
        if budget is not None and peak_kib > budget:
            raise RuntimeError(
                f"perf kernel {name!r} peaked at {peak_kib:,.0f} KiB, "
                f"over its {budget:,} KiB budget"
            )
        out[name] = {
            "wall_seconds": round(best, 6),
            "events_per_second": (
                round(events / best) if events and best else None
            ),
            "peak_alloc_kib": peak_kib,
            "budget_kib": budget,
            "reps": reps,
            "proxies": proxies,
        }
        if info is not None:
            out[name]["info"] = info
    return {"mode": "quick" if quick else "full", "kernels": out}


def perf_payload(results: dict[str, Any]) -> dict[str, Any]:
    """Wrap :func:`run_perf` results in a ``repro.run/1`` envelope."""
    return make_run_payload(
        "perf",
        params={"mode": results["mode"]},
        results=results["kernels"],
    )


def render_perf(results: dict[str, Any]) -> str:
    """Render the results tree as an aligned monospace table."""
    headers = ["kernel", "wall (s)", "events/s", "peak alloc (KiB)"]
    rows = []
    for name, r in results["kernels"].items():
        eps = r["events_per_second"]
        rows.append(
            [
                name,
                f"{r['wall_seconds']:.4f}",
                f"{eps:,}" if eps else "-",
                f"{r['peak_alloc_kib']:,.0f}",
            ]
        )
    title = f"perf microbenchmarks ({results['mode']} mode, best of reps)"
    return render_table(headers, rows, title=title)
