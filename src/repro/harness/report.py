"""Plain-text rendering of experiment results."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["render_table", "render_histogram"]


def _fmt_float(value: float) -> str:
    """One decimal place, degrading to significant digits near zero.

    A fixed ``%.1f`` renders any rate below 0.05 as ``0.0`` —
    indistinguishable from a true zero.  Keep the fixed format where it
    is faithful and fall back to two significant digits where it would
    erase a nonzero value.
    """
    text = f"{value:.1f}"
    if float(text) == 0.0 and value != 0.0:
        return f"{value:.2g}"
    return text


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return _fmt_float(value)
    return str(value)


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_histogram(
    histogram: dict[int, float], title: str = "", width: int = 40
) -> str:
    """Render a contention histogram as a horizontal bar chart."""
    lines = []
    if title:
        lines.append(title)
    peak = max(histogram.values(), default=0.0)
    for level in sorted(histogram):
        pct = histogram[level]
        bar = "#" * max(1, round(width * pct / peak)) if peak and pct > 0 else ""
        lines.append(f"{level:4d} | {_fmt_float(pct):>5s}% {bar}")
    return "\n".join(lines)
