"""Conservative-window sharded execution of one machine.

One simulated machine is split into contiguous node regions
(:mod:`repro.network.partition`), each region running on its own
:class:`~repro.machine.machine.Machine` instance with a
:class:`~repro.network.shardmesh.ShardedWormholeMesh`.  A coordinator
advances all regions in lockstep **windows**:

1. Compute ``g`` — the earliest pending event time across all regions,
   including boundary messages still in flight.
2. Run every region up to ``g + lookahead - 1`` (exclusive of
   ``g + lookahead``).  The lookahead is the minimum number of cycles a
   message needs to cross between regions, so nothing sent inside the
   window can *arrive* inside it: regions never see a message late.
3. Exchange outboxes; boundary messages are injected into their
   destination region's arrival buffers before the next window.

Same-cycle cross-boundary arrivals are ordered by the arrival buffers'
canonical ``(tail_arrival, send_time, src, src_seq)`` keys, not by which
region delivered first — so the merged execution is **bit-identical**
for every shard count, including ``shards=1`` (the reference the CI
determinism job diffs against).  Registries merge commutatively
(region order), and final counter values are resolved from per-region
claims (:func:`repro.harness.shardwork.resolve_claims`).

Backends: ``inline`` steps every region in this process (zero IPC —
what the determinism tests and quick perf kernels use); ``process``
forks one worker per region connected by pipes (what ``--shards`` uses
for wall-clock speedup on multicore hosts).

Observability (:mod:`repro.obs.shardobs`): pass ``obs=`` a
:class:`~repro.obs.shardobs.ShardObsOptions` to collect span records, a
host-time profile, and telemetry beats *inside* each worker — over
either backend — shipped with the finish payload and merged here.  The
coordinator itself always measures its synchronization shape (windows,
lookahead utilization, per-shard busy/blocked wall, traffic matrix,
queue depths) into :attr:`ShardOutcome.shard`, and emits one
``shard.progress`` record per window on the optional ``telemetry``
writer / ``events`` bus.  With ``obs=None`` the workers attach nothing:
the simulators stay in their fast dispatch loop and results/metrics are
bit-identical to an unobserved run.
"""

from __future__ import annotations

import multiprocessing
import threading
import traceback
from dataclasses import dataclass, field
from time import monotonic, perf_counter, sleep
from typing import Any, Optional

from ..config import SimConfig
from ..errors import (
    ConfigError,
    DeadlockError,
    SimulationError,
    WorkerCrashError,
    WorkerHangError,
)
from ..machine.machine import build_machine
from ..network.partition import RegionPlan, make_plan
from ..obs.profile import ComponentProfiler, profiled
from ..obs.registry import MetricsRegistry
from ..obs.shardobs import (
    BeatBuffer,
    ShardObsOptions,
    ShardSpanCollector,
    stitched_critpath,
)
from ..obs.telemetry import Heartbeat
from .shardwork import collect_claims, get_workload, resolve_claims

__all__ = ["ShardOutcome", "run_shard"]

#: Window width used when there is a single region: no cross traffic
#: exists, so any width is safe and bigger windows mean fewer rounds.
_SOLO_WINDOW = 1 << 20

#: Worker heartbeat period (seconds) when a window watchdog is armed.
#: Beats classify an overdue worker as hung-but-alive vs crashed; they
#: never extend the deadline (a live heartbeat thread says nothing
#: about the simulation loop making progress).
_HEARTBEAT_PERIOD = 0.5

#: Poll granularity of the watchdog receive loop, seconds.
_POLL_STEP = 0.05

#: Cap on the exponential retry backoff, seconds.
_BACKOFF_CAP = 30.0


@dataclass
class ShardOutcome:
    """One sharded run's merged, shard-count-invariant outputs.

    ``results`` and ``metrics`` are pure simulation outputs (identical
    for every shard count and backend), and so is ``critpath`` — the
    stitched critical-path blame when span collection was enabled.
    ``info`` describes the run's *shape* (window count, lookahead,
    boundary traffic, backend) and belongs in the envelope's ``perf``
    section; ``shard`` is the host-dependent sync-metrics section
    (wall times, traffic matrix, merged profile, stitch/telemetry
    stats).  Determinism diffs strip both.  ``graphs`` holds the
    stitched :class:`~repro.obs.spans.TxnSpanGraph` objects for callers
    that want more than the aggregate.
    """

    results: dict[str, Any]
    metrics: dict[str, Any]
    info: dict[str, Any]
    arrival_logs: list[list[tuple]] = field(default_factory=list)
    shard: Optional[dict[str, Any]] = None
    critpath: Optional[dict[str, Any]] = None
    graphs: list[Any] = field(default_factory=list)


# ----------------------------------------------------------------------
# One region's worker (used directly inline, or inside a forked process).
# ----------------------------------------------------------------------

class _ShardWorker:
    """Owns one region's machine; steps it window by window."""

    def __init__(
        self,
        config: SimConfig,
        regions: tuple[tuple[int, ...], ...],
        index: int,
        workload_name: str,
        turns: int,
        log_arrivals: bool = False,
        obs: Optional[ShardObsOptions] = None,
    ) -> None:
        self.profiler: Optional[ComponentProfiler] = None
        self.collector: Optional[ShardSpanCollector] = None
        self.beats: Optional[BeatBuffer] = None
        self.busy_seconds = 0.0
        if obs is not None and obs.profile:
            # The simulator picks up the active profiler at
            # construction, so the session only needs to span the build.
            self.profiler = ComponentProfiler()
            with profiled(self.profiler):
                self.machine = build_machine(config, region=regions[index])
        else:
            self.machine = build_machine(config, region=regions[index])
        if log_arrivals:
            self.machine.mesh.arrival_log = []
        if obs is not None and obs.spans:
            self.collector = ShardSpanCollector(self.machine.events)
            self.machine.mesh.span_log = self.collector.records
        if obs is not None and obs.telemetry_every > 0:
            self.beats = BeatBuffer()
            Heartbeat(self.machine, every=obs.telemetry_every,
                      writer=self.beats)
        workload = get_workload(workload_name)
        self.ctx = workload.setup(self.machine, turns)
        workload.spawn(self.machine, self.ctx, turns)

    def next_time(self) -> Optional[int]:
        return self.machine.sim.next_event_time()

    def step(
        self, until: int, inbox: list
    ) -> tuple[Optional[int], list, int, int]:
        """Run one window; reply (next event, outbox, events, depth)."""
        t0 = perf_counter()
        mesh = self.machine.mesh
        if inbox:
            mesh.inject(inbox)
        sim = self.machine.sim
        sim.run(until=until)
        self.busy_seconds += perf_counter() - t0
        outbox = mesh.take_outbox()
        return (sim.next_event_time(), outbox, sim.events_processed,
                mesh.in_flight())

    def finish(self) -> dict[str, Any]:
        machine = self.machine
        finish_times = [
            node.processor.finish_time
            for node in machine.nodes
            if node is not None and node.processor.finish_time is not None
        ]
        blocked = [
            node.processor.process.name
            for node in machine.nodes
            if node is not None
            and node.processor.process is not None
            and not node.processor.process.done
        ]
        return {
            "claims": collect_claims(machine, self.ctx),
            "expected": self.ctx["expected"],
            "snapshot": machine.registry.snapshot(),
            "running": machine._running_programs,
            "blocked": blocked,
            "finish_time": max(finish_times) if finish_times else 0,
            "arrivals": machine.mesh.arrival_log,
            "events": machine.sim.events_processed,
            "busy_seconds": self.busy_seconds,
            "records": (self.collector.records
                        if self.collector is not None else None),
            "profile": (self.profiler.snapshot()
                        if self.profiler is not None else None),
            "beats": self.beats.records if self.beats is not None else [],
        }


# ----------------------------------------------------------------------
# Backends.
# ----------------------------------------------------------------------

class _InlineBackend:
    """All regions stepped in this process (no IPC, no pickling)."""

    def __init__(self, config, plan, workload, turns, log_arrivals, obs,
                 window_timeout=None):
        # window_timeout is accepted for signature parity with the
        # process backend; an inline run cannot hang asynchronously.
        self.workers = [
            _ShardWorker(config, plan.regions, i, workload, turns,
                         log_arrivals, obs)
            for i in range(plan.n_shards)
        ]

    def start(self) -> list[Optional[int]]:
        return [w.next_time() for w in self.workers]

    def step_all(self, until, inboxes):
        return [
            w.step(until, inbox)
            for w, inbox in zip(self.workers, inboxes)
        ]

    def finish_all(self) -> list[dict[str, Any]]:
        return [w.finish() for w in self.workers]

    def close(self) -> None:
        pass


#: Parent-side pipe ends created so far, so each forked worker can close
#: the ones it inherited: a leaked duplicate would keep a sibling's pipe
#: open and turn the coordinator's ``conn.close()`` EOF signal (prompt
#: worker exit, fast ``close()``) into a 5s join timeout per worker.
_PARENT_CONNS: list[Any] = []


def _worker_main(conn, config, regions, index, workload, turns,
                 log_arrivals, obs, heartbeat: float = 0.0) -> None:
    """Pipe-served region worker (child process entry point).

    When ``heartbeat`` is positive a daemon thread sends ``("beat", t)``
    records every ``heartbeat`` seconds so the coordinator's window
    watchdog can tell a hung-but-alive worker from a dead one.  All pipe
    writes are serialized through one lock — a beat must never interleave
    bytes with a reply.
    """
    for inherited in _PARENT_CONNS:
        try:
            inherited.close()
        except OSError:  # pragma: no cover
            pass
    _PARENT_CONNS.clear()
    lock = threading.Lock()
    stop = threading.Event()

    def send(item) -> None:
        with lock:
            conn.send(item)

    if heartbeat > 0:
        def _beat() -> None:
            while not stop.wait(heartbeat):
                try:
                    send(("beat", monotonic()))
                except OSError:  # pragma: no cover - parent gone
                    return

        threading.Thread(target=_beat, daemon=True).start()
    try:
        worker = _ShardWorker(config, regions, index, workload, turns,
                              log_arrivals, obs)
        send(("ready", worker.next_time()))
        while True:
            request = conn.recv()
            if request[0] == "step":
                send(("stepped", worker.step(request[1], request[2])))
            elif request[0] == "finish":
                send(("finished", worker.finish()))
                return
            else:  # pragma: no cover - protocol misuse
                raise SimulationError(f"unknown request {request[0]!r}")
    except Exception as exc:
        try:
            send(("error",
                  f"{type(exc).__name__}: {exc}\n"
                  f"{traceback.format_exc()}"))
        except OSError:  # pragma: no cover - parent already gone
            pass
    finally:
        stop.set()
        with lock:
            conn.close()


class _ProcessBackend:
    """One forked process per region, star-connected by pipes.

    With ``window_timeout`` set, every reply wait runs under a
    wall-clock watchdog: the workers heartbeat every
    :data:`_HEARTBEAT_PERIOD` seconds, and an overdue reply is
    classified as :class:`~repro.errors.WorkerHangError` (process alive
    — heartbeats only prove liveness, they never extend the deadline)
    or :class:`~repro.errors.WorkerCrashError` (process dead / pipe
    EOF).  Both are retryable by :func:`run_shard`.
    """

    def __init__(self, config, plan, workload, turns, log_arrivals, obs,
                 window_timeout=None):
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self.window_timeout = window_timeout
        heartbeat = _HEARTBEAT_PERIOD if window_timeout is not None else 0.0
        self.conns = []
        self.procs = []
        try:
            for i in range(plan.n_shards):
                parent, child = ctx.Pipe()
                # Registered before the fork so the child (which clones
                # this module's globals) can close the inherited ends.
                _PARENT_CONNS.append(parent)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child, config, plan.regions, i, workload, turns,
                          log_arrivals, obs, heartbeat),
                    daemon=True,
                )
                proc.start()
                child.close()
                self.conns.append(parent)
                self.procs.append(proc)
        finally:
            _PARENT_CONNS.clear()

    def _cleanup_for(self, exc: SimulationError) -> None:
        """Tear the pool down without masking the failure being raised.

        The run is being aborted, so surviving workers are terminated
        up front rather than waiting out ``close()``'s graceful join —
        a hung sibling would otherwise stall every retry by 5s.
        """
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
        try:
            self.close()
        except SimulationError:  # pragma: no cover - unkillable leftover
            pass
        raise exc

    def _crashed(self, index: int) -> None:
        proc = self.procs[index]
        proc.join(timeout=1)
        self._cleanup_for(WorkerCrashError(
            f"shard worker {index} (pid {proc.pid}) died mid-window "
            f"(exitcode {proc.exitcode})"
        ))

    def _hung(self, index: int, last_beat: Optional[float]) -> None:
        age = (f"{monotonic() - last_beat:.1f}s ago"
               if last_beat is not None else "never seen")
        self._cleanup_for(WorkerHangError(
            f"shard worker {index} (pid {self.procs[index].pid}) exceeded "
            f"the {self.window_timeout}s window watchdog while alive "
            f"(last heartbeat: {age})"
        ))

    def _recv(self, index: int, want: str):
        conn = self.conns[index]
        timeout = self.window_timeout
        deadline = None if timeout is None else monotonic() + timeout
        last_beat: Optional[float] = None
        while True:
            try:
                if deadline is not None:
                    remaining = deadline - monotonic()
                    if remaining <= 0:
                        if not self.procs[index].is_alive():
                            self._crashed(index)
                        self._hung(index, last_beat)
                    if not conn.poll(min(remaining, _POLL_STEP)):
                        continue
                kind, payload = conn.recv()
            except (EOFError, OSError):
                self._crashed(index)
            if kind == "beat":
                last_beat = payload
                continue
            if kind == "error":
                self._cleanup_for(
                    SimulationError(f"shard worker failed:\n{payload}")
                )
            if kind != want:  # pragma: no cover - protocol misuse
                self._cleanup_for(
                    SimulationError(f"expected {want!r}, got {kind!r}")
                )
            return payload

    def start(self) -> list[Optional[int]]:
        return [self._recv(i, "ready") for i in range(len(self.conns))]

    def step_all(self, until, inboxes):
        for conn, inbox in zip(self.conns, inboxes):
            conn.send(("step", until, inbox))
        return [self._recv(i, "stepped") for i in range(len(self.conns))]

    def finish_all(self) -> list[dict[str, Any]]:
        for conn in self.conns:
            conn.send(("finish",))
        return [self._recv(i, "finished") for i in range(len(self.conns))]

    def close(self) -> None:
        """Tear down workers, escalating join -> terminate -> kill.

        Idempotent.  A worker that survives ``kill()`` (unkillable — for
        example stuck in the kernel) is surfaced as
        :class:`~repro.errors.SimulationError` listing the leaked pids
        instead of being silently abandoned.
        """
        conns, self.conns = self.conns, []
        procs, self.procs = self.procs, []
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        leaked = []
        for proc in procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
            if proc.is_alive():  # pragma: no cover - terminate ignored
                proc.kill()
                proc.join(timeout=2)
            if proc.is_alive():  # pragma: no cover - unkillable
                leaked.append(proc.pid)
        if leaked:  # pragma: no cover - unkillable workers
            raise SimulationError(
                f"shard worker process(es) leaked after kill: pids {leaked}"
            )


_BACKENDS = {"inline": _InlineBackend, "process": _ProcessBackend}


# ----------------------------------------------------------------------
# The coordinator.
# ----------------------------------------------------------------------

def run_shard(
    config: SimConfig,
    workload: str = "golden_contention",
    shards: int = 1,
    turns: int = 8,
    backend: str = "inline",
    cuts: tuple[int, ...] | None = None,
    plan: RegionPlan | None = None,
    log_arrivals: bool = False,
    window: int | None = None,
    obs: Optional[ShardObsOptions] = None,
    telemetry: Optional[Any] = None,
    events: Optional[Any] = None,
    retries: int = 1,
    retry_backoff: float = 0.25,
    window_timeout: Optional[float] = None,
) -> ShardOutcome:
    """Run ``workload`` on a machine split into ``shards`` regions.

    Returns a :class:`ShardOutcome` whose ``results`` and ``metrics``
    are identical for every ``shards``/``backend`` choice.  ``plan``
    (or ``cuts``) overrides the default even partition — the property
    tests use it to explore arbitrary contiguous region splits.

    ``window`` widens the synchronization window beyond the safe
    lookahead — an assertion by the caller that the workload's traffic
    never crosses regions (e.g. ``local_faa``).  It trades rounds for
    throughput; it can never trade correctness for throughput, because
    a boundary message arriving inside a too-wide window raises
    :class:`~repro.errors.SimulationError` instead of being delivered
    late.

    ``obs`` enables in-worker observability (spans / profile /
    telemetry beats; see :class:`~repro.obs.shardobs.ShardObsOptions`),
    ``telemetry`` receives one ``shard.progress`` JSONL record per
    window (plus the workers' shipped heartbeats), and ``events`` is an
    optional coordinator-side :class:`~repro.obs.events.EventBus` for
    the same per-window progress.  All three default to off, leaving
    the workers unobserved.

    Self-healing (``process`` backend; see ``docs/robustness.md``):
    ``window_timeout`` arms a per-reply wall-clock watchdog backed by a
    worker heartbeat that classifies an overdue window as
    :class:`~repro.errors.WorkerHangError` (alive but stuck) or
    :class:`~repro.errors.WorkerCrashError` (process died / pipe EOF).
    Because the simulation is deterministic, either failure is safely
    retried from scratch up to ``retries`` times with capped exponential
    backoff (``retry_backoff * 2**(attempt-1)``, capped at
    :data:`_BACKOFF_CAP` seconds), emitting a ``shard.retry`` event per
    attempt; a retried run produces the same :class:`ShardOutcome` as an
    unperturbed one, except for ``info["attempts"]``.
    """
    if backend not in _BACKENDS:
        known = ", ".join(sorted(_BACKENDS))
        raise ConfigError(f"unknown backend {backend!r} (known: {known})")
    if plan is None:
        plan = make_plan(config, shards, cuts)
    else:
        plan.validate()
    get_workload(workload)  # fail fast on unknown names
    if obs is not None and not obs.enabled:
        obs = None

    retries = max(0, int(retries))
    attempt = 1
    while True:
        try:
            outcome = _run_shard_once(
                config, workload, turns, backend, plan, log_arrivals,
                window, obs, telemetry, events, window_timeout,
            )
        except (WorkerCrashError, WorkerHangError) as exc:
            if attempt > retries:
                raise
            reason = f"{type(exc).__name__}: {exc}"
            if events is not None and getattr(events, "active", False):
                events.emit("shard.retry", 0, attempt=attempt,
                            reason=reason)
            if telemetry is not None:
                telemetry.write({"record": "shard.retry",
                                 "attempt": attempt, "reason": reason})
            sleep(min(retry_backoff * 2 ** (attempt - 1), _BACKOFF_CAP))
            attempt += 1
            continue
        outcome.info["attempts"] = attempt
        return outcome


def _run_shard_once(
    config: SimConfig,
    workload: str,
    turns: int,
    backend: str,
    plan: RegionPlan,
    log_arrivals: bool,
    window: int | None,
    obs: Optional[ShardObsOptions],
    telemetry: Optional[Any],
    events: Optional[Any],
    window_timeout: Optional[float],
) -> ShardOutcome:
    """One attempt of the coordinator loop (see :func:`run_shard`)."""
    membership = plan.membership()
    n_shards = plan.n_shards
    width = plan.lookahead if n_shards > 1 else _SOLO_WINDOW
    if window is not None and window > width:
        width = window

    runner = _BACKENDS[backend](config, plan, workload, turns,
                                log_arrivals, obs,
                                window_timeout=window_timeout)
    windows = 0
    boundary_messages = 0
    traffic = [[0] * n_shards for _ in range(n_shards)]
    max_outbox = 0
    max_depth = 0
    advance_total = 0
    prev_g: Optional[int] = None
    last_events = [0] * n_shards
    live = telemetry is not None or (events is not None
                                     and getattr(events, "active", False))
    loop_wall = 0.0
    try:
        next_times = runner.start()
        inboxes: list[list] = [[] for _ in range(n_shards)]
        loop_t0 = perf_counter()
        last_beat = loop_t0
        while True:
            g: Optional[int] = None
            for t in next_times:
                if t is not None and (g is None or t < g):
                    g = t
            for inbox in inboxes:
                for entry in inbox:
                    if g is None or entry[0] < g:
                        g = entry[0]
            if g is None:
                break
            until = g + width - 1
            stepped = runner.step_all(until, inboxes)
            next_times = [s[0] for s in stepped]
            inboxes = [[] for _ in range(n_shards)]
            for src_shard, (_, outbox, _, depth) in enumerate(stepped):
                for entry in outbox:
                    dst_shard = membership[entry[4]]
                    traffic[src_shard][dst_shard] += 1
                    inboxes[dst_shard].append(entry)
                boundary_messages += len(outbox)
                if len(outbox) > max_outbox:
                    max_outbox = len(outbox)
                if depth > max_depth:
                    max_depth = depth
            if prev_g is not None:
                advance_total += g - prev_g
            prev_g = g
            windows += 1
            deltas = [s[2] - e for s, e in zip(stepped, last_events)]
            last_events = [s[2] for s in stepped]
            if live:
                now_wall = perf_counter()
                dt = now_wall - last_beat
                last_beat = now_wall
                eps = [round(d / dt, 1) if dt > 0 else 0.0 for d in deltas]
                in_flight = sum(len(inbox) for inbox in inboxes)
                if telemetry is not None:
                    telemetry.write({
                        "record": "shard.progress", "window": windows,
                        "bound": g, "until": until, "events": last_events,
                        "events_per_second": eps, "in_flight": in_flight,
                    })
                if events is not None and events.active:
                    events.emit("shard.progress", g, window=windows,
                                bound=g, until=until, events=last_events,
                                events_per_second=eps, in_flight=in_flight)
        loop_wall = perf_counter() - loop_t0
        finished = runner.finish_all()
    finally:
        runner.close()

    running = sum(f["running"] for f in finished)
    if running > 0:
        blocked = [name for f in finished for name in f["blocked"]]
        raise DeadlockError(
            f"sharded run drained with {running} program(s) blocked: "
            f"{blocked[:8]}"
        )
    merged = MetricsRegistry()
    for f in finished:
        merged.merge_snapshot(f["snapshot"])
    metrics = merged.snapshot()
    counters = resolve_claims([f["claims"] for f in finished])
    expected = finished[0]["expected"]
    results = {
        "workload": workload,
        "counters": counters,
        "expected": expected,
        "match": counters == expected,
        "end_time": max(f["finish_time"] for f in finished),
        "events": metrics.get("sim.events_processed", 0),
    }
    info = {
        "shards": n_shards,
        "backend": backend,
        "lookahead": plan.lookahead,
        "windows": windows,
        "boundary_messages": boundary_messages,
    }

    # Sync metrics: the coordinator's own shape + per-shard wall split.
    busy = [float(f.get("busy_seconds", 0.0)) for f in finished]
    shard_section: dict[str, Any] = {
        "sync": {
            "shards": n_shards,
            "backend": backend,
            "lookahead": plan.lookahead,
            "window": width,
            "windows": windows,
            "boundary_messages": boundary_messages,
            "avg_window_advance": (round(advance_total / (windows - 1), 3)
                                   if windows > 1 else float(width)),
            "lookahead_utilization": (
                round(advance_total / ((windows - 1) * width), 4)
                if windows > 1 else 1.0
            ),
            "wall_seconds": round(loop_wall, 6),
            "traffic_matrix": traffic,
            "max_outbox_depth": max_outbox,
            "max_arrival_depth": max_depth,
            "per_shard": [
                {
                    "shard": i,
                    "nodes": len(plan.regions[i]),
                    "events": int(f.get("events", 0)),
                    "busy_seconds": round(b, 6),
                    "blocked_seconds": round(max(0.0, loop_wall - b), 6),
                    "busy_share": (round(b / loop_wall, 4)
                                   if loop_wall > 0 else 0.0),
                }
                for i, (f, b) in enumerate(zip(finished, busy))
            ],
        },
    }

    profile_snapshot = None
    if obs is not None and obs.profile:
        merged_prof = ComponentProfiler()
        for f in finished:
            if f.get("profile"):
                merged_prof.merge_snapshot(f["profile"])
        profile_snapshot = merged_prof.snapshot()
        shard_section["profile"] = profile_snapshot

    if obs is not None and obs.telemetry_every > 0:
        beats_per_shard = [len(f.get("beats") or []) for f in finished]
        if telemetry is not None:
            for i, f in enumerate(finished):
                for beat in f.get("beats") or []:
                    telemetry.write({**beat, "shard": i})
        shard_section["telemetry"] = {
            "every": obs.telemetry_every,
            "beats": sum(beats_per_shard),
            "per_shard": beats_per_shard,
        }

    critpath = None
    graphs: list[Any] = []
    if obs is not None and obs.spans:
        critpath, graphs, stitch_stats = stitched_critpath(
            [f.get("records") or [] for f in finished]
        )
        shard_section["stitch"] = stitch_stats

    arrival_logs = [f["arrivals"] for f in finished] if log_arrivals else []
    return ShardOutcome(results=results, metrics=metrics, info=info,
                        arrival_logs=arrival_logs, shard=shard_section,
                        critpath=critpath, graphs=graphs)
