"""Workloads runnable under intra-run sharding.

A :class:`ShardWorkload` is a workload whose setup, programs, and result
collection all work when the machine is split into regions
(:mod:`repro.harness.shardrun`):

* ``setup`` runs identically on **every** shard — allocation is pure
  address arithmetic, so all shards agree on every address, while
  initializing writes homed outside the shard's region are no-ops.
* Programs are spawned for **all** pids on every shard; out-of-region
  spawns are no-ops, so the same code expresses the whole machine's work.
* ``collect`` reports picklable *claims* about final counter values
  (in-region exclusive cache copies, in-region home memory words);
  ``resolve`` on the coordinator prefers the unique exclusive-cache
  claim over home memory, mirroring ``Machine.read_word``.

Workloads avoid the features the sharded runner does not support: magic
barriers (each region's :class:`~repro.processor.magic.BarrierManager`
would wait for arrivals that happen in other regions) and the
order-sensitive write-run/contention instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..cache.line import LineState
from ..coherence.policy import SyncPolicy
from ..errors import ConfigError
from ..machine.machine import Machine
from ..memory.directory import DirState

__all__ = ["ShardWorkload", "SHARD_WORKLOADS", "get_workload"]


@dataclass(frozen=True)
class ShardWorkload:
    """One shard-safe workload: setup + program + expected values."""

    name: str
    description: str
    #: (machine, turns) -> context dict with at least ``counters`` (word
    #: addresses) and ``expected`` (final values, same order).
    setup: Callable[[Machine, int], dict[str, Any]]
    #: (proc, ctx, turns) -> program generator for one processor.
    program: Callable[..., Any]

    def spawn(self, machine: Machine, ctx: dict[str, Any], turns: int) -> None:
        """Start the workload's program on every (in-region) processor."""
        machine.spawn_all(self.program, ctx, turns)


# ----------------------------------------------------------------------
# Result collection across regions.
# ----------------------------------------------------------------------

def collect_claims(machine: Machine, ctx: dict[str, Any]) -> list[dict]:
    """This shard's knowledge of each counter's final value.

    For every counter: the value of an in-region EXCLUSIVE cache copy
    (at most one cache in the whole machine holds one), and — when the
    home is in-region — the home memory word plus directory state.
    """
    claims: list[dict] = []
    region = machine.region
    for addr in ctx["counters"]:
        block = machine.block_of(addr)
        offset = machine.offset_of(addr)
        home = machine.home_of(block)
        claim: dict[str, Any] = {"cache": None, "memory": None, "dir": None}
        for node in machine.nodes:
            if node is None:
                continue
            line = node.controller.cache.lookup(block, touch=False)
            if line is not None and line.state is LineState.EXCLUSIVE:
                claim["cache"] = line.read_word(offset)
        if region is None or home in region:
            entry = machine.nodes[home].home.directory.entry(block)
            claim["dir"] = entry.state.name
            claim["memory"] = machine.nodes[home].memory.read_word(
                block, offset
            )
        claims.append(claim)
    return claims


def resolve_claims(per_worker: list[list[dict]]) -> list[int]:
    """Merge per-shard claims into final counter values.

    An exclusive cache copy (unique machine-wide) wins; otherwise home
    memory is authoritative.  Raises if the claims are inconsistent —
    that would mean the shards disagree about the machine's final state.
    """
    if not per_worker:
        raise ConfigError("no worker claims to resolve")
    n = len(per_worker[0])
    values: list[int] = []
    for i in range(n):
        cache_vals = [w[i]["cache"] for w in per_worker
                      if w[i]["cache"] is not None]
        mem_vals = [w[i]["memory"] for w in per_worker
                    if w[i]["memory"] is not None]
        dir_states = [w[i]["dir"] for w in per_worker
                      if w[i]["dir"] is not None]
        if len(cache_vals) > 1 or len(mem_vals) != 1:
            raise ConfigError(
                f"inconsistent claims for counter {i}: "
                f"{len(cache_vals)} exclusive copies, "
                f"{len(mem_vals)} home claims"
            )
        if cache_vals and dir_states == [DirState.EXCLUSIVE.name]:
            values.append(cache_vals[0])
        elif cache_vals and DirState.EXCLUSIVE.name not in dir_states:
            # A stale exclusive line with the directory disagreeing
            # would be a coherence bug; surface it rather than guess.
            raise ConfigError(
                f"counter {i}: exclusive cache copy but directory says "
                f"{dir_states}"
            )
        elif cache_vals:
            values.append(cache_vals[0])
        else:
            values.append(mem_vals[0])
    return values


# ----------------------------------------------------------------------
# The workloads.
# ----------------------------------------------------------------------

def _golden_setup(machine: Machine, turns: int) -> dict[str, Any]:
    n = machine.n_nodes
    k = max(2, n // 4)
    counters = []
    for i in range(k):
        home = (i * 3) % n  # spread homes so boundary traffic is real
        counters.append(machine.alloc_sync(SyncPolicy.INV, home=home))
    expected = [0] * k
    for pid in range(n):
        for t in range(turns):
            expected[(pid + t) % k] += 1
    return {"counters": counters, "expected": expected}


def _golden_program(proc, ctx, turns):
    counters = ctx["counters"]
    k = len(counters)
    for t in range(turns):
        yield proc.think((proc.pid * 7 + t * 13) % 23 + 1)
        yield proc.fetch_add(counters[(proc.pid + t) % k], 1)


def _uniform_setup(machine: Machine, turns: int) -> dict[str, Any]:
    n = machine.n_nodes
    hot = machine.alloc_sync(SyncPolicy.INV, home=n // 2)
    return {"counters": [hot], "expected": [n * turns]}


def _uniform_program(proc, ctx, turns):
    hot = ctx["counters"][0]
    for _ in range(turns):
        yield proc.fetch_add(hot, 1)


SHARD_WORKLOADS: dict[str, ShardWorkload] = {
    w.name: w
    for w in (
        ShardWorkload(
            name="golden_contention",
            description=(
                "Rotating fetch&adds over n/4 INV counters with spread "
                "homes and per-pid think jitter — the CI determinism "
                "golden workload."
            ),
            setup=_golden_setup,
            program=_golden_program,
        ),
        ShardWorkload(
            name="uniform_faa",
            description=(
                "Every processor hammers one hot INV counter — maximum "
                "contention, maximum cross-region traffic."
            ),
            setup=_uniform_setup,
            program=_uniform_program,
        ),
    )
}


def _local_setup(machine: Machine, turns: int) -> dict[str, Any]:
    n = machine.n_nodes
    counters = [
        machine.alloc_sync(SyncPolicy.INV, home=pid) for pid in range(n)
    ]
    return {"counters": counters, "expected": [turns] * n}


def _local_program(proc, ctx, turns):
    mine = ctx["counters"][proc.pid]
    for _ in range(turns):
        yield proc.fetch_add(mine, 1)


SHARD_WORKLOADS["local_faa"] = ShardWorkload(
    name="local_faa",
    description=(
        "Each processor fetch&adds a counter homed at its own node — "
        "zero boundary traffic under any contiguous partition, so wide "
        "windows are safe (``--window``) and sharding scales with "
        "cores.  The shard_scaling perf kernel's workload."
    ),
    setup=_local_setup,
    program=_local_program,
)


def get_workload(name: str) -> ShardWorkload:
    """Look up a shard workload by name."""
    try:
        return SHARD_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(SHARD_WORKLOADS))
        raise ConfigError(
            f"unknown shard workload {name!r} (known: {known})"
        ) from None
