"""Generic parameter sweeps with CSV export.

A thin layer over the figure drivers for users who want the raw data
rather than the paper's exact panels: cross-product sweeps of primitive
variants × sharing-pattern specs over any of the counter applications,
exported as CSV for external plotting.

.. code-block:: python

    rows = sweep_counter(
        run_lockfree_counter,
        SimConfig().with_nodes(16),
        variants=figure_variants(),
        specs=[SyntheticSpec(contention=c) for c in (1, 2, 4)],
        jobs=4,
    )
    write_csv("lockfree.csv", rows)

The cross-product runs through :mod:`repro.harness.parallel`: ``jobs``
shards points across worker processes and ``cache`` memoizes them,
without changing the resulting rows.
"""

from __future__ import annotations

import csv
import pathlib
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..apps.common import AppResult
from ..apps.synthetic import SyntheticSpec
from ..config import SimConfig
from ..obs.events import EventBus
from ..sync.variant import PrimitiveVariant
from .parallel import ResultCache, make_point, run_sweep

__all__ = ["SweepRow", "sweep_counter", "write_csv", "rows_as_dicts"]


@dataclass(frozen=True)
class SweepRow:
    """One (variant, spec) measurement."""

    variant: str
    family: str
    policy: str
    use_lx: bool
    use_drop: bool
    contention: int
    write_run: float
    turns: int
    updates: int
    cycles: int
    avg_cycles: float
    measured_write_run: float

    @classmethod
    def from_result(
        cls, variant: PrimitiveVariant, spec: SyntheticSpec, result: AppResult
    ) -> "SweepRow":
        """Flatten one application result."""
        return cls(
            variant=variant.label,
            family=variant.family,
            policy=variant.policy.value,
            use_lx=variant.use_lx,
            use_drop=variant.use_drop,
            contention=spec.contention,
            write_run=spec.write_run,
            turns=spec.turns,
            updates=result.updates,
            cycles=result.cycles,
            avg_cycles=result.avg_cycles,
            measured_write_run=result.write_run,
        )


def sweep_counter(
    runner: Callable[[PrimitiveVariant, SyntheticSpec, SimConfig], AppResult],
    config: SimConfig,
    variants: Sequence[PrimitiveVariant],
    specs: Sequence[SyntheticSpec],
    jobs: int = 1,
    cache: ResultCache | None = None,
    events: Optional[EventBus] = None,
) -> list[SweepRow]:
    """Run ``runner`` over the full variants × specs cross-product."""
    points = [
        make_point(runner, variant=variant, spec=spec, config=config)
        for spec in specs
        for variant in variants
    ]
    outcomes = iter(run_sweep(points, jobs=jobs, cache=cache, events=events))
    rows = []
    for spec in specs:
        for variant in variants:
            rows.append(
                SweepRow.from_result(variant, spec, next(outcomes).result)
            )
    return rows


def rows_as_dicts(rows: Iterable[SweepRow]) -> list[dict]:
    """Rows as plain dictionaries (stable column order)."""
    from dataclasses import asdict

    return [asdict(row) for row in rows]


def write_csv(path: str | pathlib.Path, rows: Sequence[SweepRow]) -> None:
    """Write sweep rows to ``path`` as CSV with a header.

    Parent directories are created as needed (like
    :func:`repro.obs.schema.dump_run`).
    """
    if not rows:
        raise ValueError("no rows to write")
    dicts = rows_as_dicts(rows)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(dicts[0]))
        writer.writeheader()
        writer.writerows(dicts)
