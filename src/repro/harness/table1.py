"""Table 1: serialized network messages for stores, by policy and state.

The paper's Table 1:

====================================  =====
store target                          msgs
====================================  =====
UNC                                   2
INV to cached exclusive               0
INV to remote exclusive               4
INV to remote shared                  3
INV to uncached                       2
UPD to cached                         3
UPD to uncached                       2
====================================  =====

These are protocol properties, so our reproduction asserts them *exactly*.
Each row is measured by staging the directory/caches into the named state
with a preparatory access from another node, then issuing the store from
the requesting node and reading the serialized-chain counter of its
transaction.
"""

from __future__ import annotations

from ..coherence.policy import SyncPolicy
from ..config import SimConfig, small_config
from ..machine.machine import Machine, build_machine

__all__ = ["TABLE1_EXPECTED", "run_table1"]

TABLE1_EXPECTED: dict[str, int] = {
    "UNC": 2,
    "INV to cached exclusive": 0,
    "INV to remote exclusive": 4,
    "INV to remote shared": 3,
    "INV to uncached": 2,
    "UPD to cached": 3,
    "UPD to uncached": 2,
}

_REQUESTER = 0
_OTHER = 2
_HOME = 1


def _machine(config: SimConfig | None) -> Machine:
    return build_machine(config or small_config(n_nodes=4))


def _store_once(machine: Machine, pid: int, addr: int, value: int) -> None:
    """Run a single store by ``pid`` to completion."""

    def program(p, addr=addr, value=value):
        yield p.store(addr, value)

    machine.spawn(pid, program)
    machine.run()


def _load_once(machine: Machine, pid: int, addr: int) -> None:
    def program(p, addr=addr):
        yield p.load(addr)

    machine.spawn(pid, program)
    machine.run()


def _measured_chain(machine: Machine, pid: int) -> int:
    return machine.nodes[pid].controller.last_chain


def run_table1(config: SimConfig | None = None) -> dict[str, int]:
    """Measure every Table 1 row; return {row label: serialized messages}."""
    results: dict[str, int] = {}

    # UNC: every store is two messages (request + reply), always.
    machine = _machine(config)
    addr = machine.alloc_sync(SyncPolicy.UNC, home=_HOME)
    _store_once(machine, _REQUESTER, addr, 1)
    results["UNC"] = _measured_chain(machine, _REQUESTER)

    # INV to cached exclusive: second store hits the owned line.
    machine = _machine(config)
    addr = machine.alloc_sync(SyncPolicy.INV, home=_HOME)
    _store_once(machine, _REQUESTER, addr, 1)
    _store_once(machine, _REQUESTER, addr, 2)
    results["INV to cached exclusive"] = _measured_chain(machine, _REQUESTER)

    # INV to remote exclusive: another node owns the line; ownership is
    # transferred through the home (4 serialized messages).
    machine = _machine(config)
    addr = machine.alloc_sync(SyncPolicy.INV, home=_HOME)
    _store_once(machine, _OTHER, addr, 1)
    _store_once(machine, _REQUESTER, addr, 2)
    results["INV to remote exclusive"] = _measured_chain(machine, _REQUESTER)

    # INV to remote shared: another node holds a read-only copy; the home
    # invalidates it and the sharer acks the requester (3 serialized).
    machine = _machine(config)
    addr = machine.alloc_sync(SyncPolicy.INV, home=_HOME)
    _load_once(machine, _OTHER, addr)
    _store_once(machine, _REQUESTER, addr, 2)
    results["INV to remote shared"] = _measured_chain(machine, _REQUESTER)

    # INV to uncached: the line is in memory only (2 serialized).
    machine = _machine(config)
    addr = machine.alloc_sync(SyncPolicy.INV, home=_HOME)
    _store_once(machine, _REQUESTER, addr, 1)
    results["INV to uncached"] = _measured_chain(machine, _REQUESTER)

    # UPD to cached: another node holds a copy; the memory applies the
    # store and the sharer acknowledges the update to the requester.
    machine = _machine(config)
    addr = machine.alloc_sync(SyncPolicy.UPD, home=_HOME)
    _load_once(machine, _OTHER, addr)
    _store_once(machine, _REQUESTER, addr, 2)
    results["UPD to cached"] = _measured_chain(machine, _REQUESTER)

    # UPD to uncached: no copies anywhere; request + reply only.
    machine = _machine(config)
    addr = machine.alloc_sync(SyncPolicy.UPD, home=_HOME)
    _store_once(machine, _REQUESTER, addr, 1)
    results["UPD to uncached"] = _measured_chain(machine, _REQUESTER)

    return results
