"""Table 1: serialized network messages for stores, by policy and state.

The paper's Table 1:

====================================  =====
store target                          msgs
====================================  =====
UNC                                   2
INV to cached exclusive               0
INV to remote exclusive               4
INV to remote shared                  3
INV to uncached                       2
UPD to cached                         3
UPD to uncached                       2
====================================  =====

These are protocol properties, so our reproduction asserts them *exactly*.
Each row is measured by staging the directory/caches into the named state
with a preparatory access from another node, then issuing the store from
the requesting node and reading the serialized-chain counter of its
transaction.

Rows are independent (each stages its own fresh machine), so
:func:`run_table1` runs them through the parallel sweep executor — one
:class:`~repro.harness.parallel.SweepPoint` per row — and ``jobs``/
``cache`` shard and memoize them.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..coherence.policy import SyncPolicy
from ..config import SimConfig, small_config
from ..errors import ConfigError
from ..machine.machine import Machine, build_machine
from ..obs.events import EventBus
from .parallel import ResultCache, make_point, run_sweep

__all__ = ["TABLE1_EXPECTED", "run_table1", "run_table1_row"]

TABLE1_EXPECTED: dict[str, int] = {
    "UNC": 2,
    "INV to cached exclusive": 0,
    "INV to remote exclusive": 4,
    "INV to remote shared": 3,
    "INV to uncached": 2,
    "UPD to cached": 3,
    "UPD to uncached": 2,
}

_REQUESTER = 0
_OTHER = 2
_HOME = 1

# Preparatory accesses that stage each row's directory/cache state
# before the measured store, as (op, pid, value) triples:
#
# * UNC / "to uncached": no staging — the line is in memory only.
# * "INV to cached exclusive": the requester's own first store takes the
#   line exclusive, so the measured second store hits the owned line.
# * "INV to remote exclusive": another node owns the line; ownership is
#   transferred through the home (4 serialized messages).
# * "INV to remote shared": another node holds a read-only copy; the
#   home invalidates it and the sharer acks the requester (3 serialized).
# * "UPD to cached": another node holds a copy; the memory applies the
#   store and the sharer acknowledges the update to the requester.
_TABLE1_ROWS: dict[str, tuple[SyncPolicy, tuple[tuple[str, int, int], ...], int]] = {
    "UNC": (SyncPolicy.UNC, (), 1),
    "INV to cached exclusive": (SyncPolicy.INV, (("store", _REQUESTER, 1),), 2),
    "INV to remote exclusive": (SyncPolicy.INV, (("store", _OTHER, 1),), 2),
    "INV to remote shared": (SyncPolicy.INV, (("load", _OTHER, 0),), 2),
    "INV to uncached": (SyncPolicy.INV, (), 1),
    "UPD to cached": (SyncPolicy.UPD, (("load", _OTHER, 0),), 2),
    "UPD to uncached": (SyncPolicy.UPD, (), 1),
}


def _machine(config: SimConfig | None) -> Machine:
    return build_machine(config or small_config(n_nodes=4))


def _store_once(machine: Machine, pid: int, addr: int, value: int) -> None:
    """Run a single store by ``pid`` to completion."""

    def program(p, addr=addr, value=value):
        yield p.store(addr, value)

    machine.spawn(pid, program)
    machine.run()


def _load_once(machine: Machine, pid: int, addr: int) -> None:
    def program(p, addr=addr):
        yield p.load(addr)

    machine.spawn(pid, program)
    machine.run()


def _measured_chain(machine: Machine, pid: int) -> int:
    return machine.nodes[pid].controller.last_chain


def run_table1_row(
    row: str,
    config: SimConfig | None = None,
    observe: Optional[Callable[[Machine], None]] = None,
) -> int:
    """Measure one Table 1 row on a fresh machine; return its chain length.

    ``observe``, if given, is called with the freshly built machine before
    any program runs — attach :mod:`repro.obs` recorders there.
    """
    try:
        policy, preps, value = _TABLE1_ROWS[row]
    except KeyError:
        known = ", ".join(_TABLE1_ROWS)
        raise ConfigError(f"unknown Table 1 row {row!r}; rows: {known}") from None
    machine = _machine(config)
    if observe is not None:
        observe(machine)
    addr = machine.alloc_sync(policy, home=_HOME)
    for op, pid, prep_value in preps:
        if op == "store":
            _store_once(machine, pid, addr, prep_value)
        else:
            _load_once(machine, pid, addr)
    _store_once(machine, _REQUESTER, addr, value)
    return _measured_chain(machine, _REQUESTER)


def run_table1(
    config: SimConfig | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    events: Optional[EventBus] = None,
) -> dict[str, int]:
    """Measure every Table 1 row; return {row label: serialized messages}."""
    effective = config or small_config(n_nodes=4)
    points = [
        make_point(run_table1_row, config=effective,
                   label=f"table1: {row}", row=row)
        for row in TABLE1_EXPECTED
    ]
    outcomes = run_sweep(points, jobs=jobs, cache=cache, events=events)
    return {
        row: outcome.result
        for row, outcome in zip(TABLE1_EXPECTED, outcomes)
    }
