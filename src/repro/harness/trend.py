"""Summarize the nightly benchmark trend history.

The nightly workflow appends one dated record per run to
``BENCH_trend.jsonl`` (see ``.github/workflows/nightly.yml``):

.. code-block:: json

    {"date": "2026-08-08T03:47:00Z", "sha": "…",
     "kernels": {"event_core": {"wall_seconds": 1.2,
                                "events_per_second": 800000.0,
                                "peak_alloc_kib": 512, "info": "…"}},
     "benchmarks": {"table1": {"wall_seconds": 3.4, "…": "…"}}}

``repro trend BENCH_trend.jsonl`` turns that history into a per-kernel
delta table: the latest record against the **median of all prior
records** (median, not mean, so one noisy night cannot move the
baseline).  A kernel is *flagged* when its wall time grew — or its
throughput dropped — by more than ``threshold_pct`` percent; flags are
advisory by default (``--strict`` makes them exit 1) because nightly
runners are noisy and the bit-exact gates live elsewhere
(``tools/check_bench_regression.py``).

Stdlib only, tolerant of the realities of an append-only history file:
blank and corrupt lines are skipped (and counted), kernels may appear
or disappear between nights, and a single-record history renders with
no deltas rather than failing.
"""

from __future__ import annotations

import json
import pathlib
import statistics
from typing import Any, Optional

from ..errors import ConfigError
from ..obs.schema import make_run_payload
from .report import render_table

__all__ = [
    "load_trend",
    "summarize_trend",
    "render_trend",
    "trend_payload",
]


def load_trend(path, last: int = 0) -> list[dict[str, Any]]:
    """Read ``BENCH_trend.jsonl``; skip blank/corrupt lines.

    ``last`` keeps only the trailing N records (0 = all).  Blank and
    unparsable lines are dropped silently — an append-only history that
    survived a cache eviction or a truncated write should degrade to
    fewer records, not fail the whole summary.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigError(f"trend history not found: {path}")
    records: list[dict[str, Any]] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            records.append(record)
    if last > 0:
        records = records[-last:]
    return records


def _median(values: list[float]) -> Optional[float]:
    cleaned = [float(v) for v in values if isinstance(v, (int, float))]
    return statistics.median(cleaned) if cleaned else None


def _delta_pct(latest: Any, baseline: Optional[float]) -> Optional[float]:
    if baseline is None or not baseline:
        return None
    if not isinstance(latest, (int, float)):
        return None
    return round(100.0 * (float(latest) - baseline) / baseline, 2)


def _series(records: list[dict[str, Any]], section: str, name: str,
            field: str) -> list[float]:
    return [rec.get(section, {}).get(name, {}).get(field)
            for rec in records]


def summarize_trend(
    records: list[dict[str, Any]], threshold_pct: float = 10.0
) -> dict[str, Any]:
    """Latest record vs the median of the prior ones, per kernel.

    Returns a JSON-able summary: ``kernels`` / ``benchmarks`` maps of
    ``{latest fields, *_median, *_delta_pct, samples, flagged}`` plus a
    flat ``regressions`` list of human-readable flag strings (empty when
    clean, or when there is no history to compare against).
    """
    summary: dict[str, Any] = {
        "records": len(records),
        "threshold_pct": threshold_pct,
        "first_date": records[0].get("date") if records else None,
        "last_date": records[-1].get("date") if records else None,
        "sha": records[-1].get("sha") if records else None,
        "kernels": {},
        "benchmarks": {},
        "regressions": [],
    }
    if not records:
        return summary
    latest, prior = records[-1], records[:-1]

    for name in sorted(latest.get("kernels", {})):
        kernel = latest["kernels"][name]
        row: dict[str, Any] = {
            "wall_seconds": kernel.get("wall_seconds"),
            "events_per_second": kernel.get("events_per_second"),
            "peak_alloc_kib": kernel.get("peak_alloc_kib"),
            "samples": 0,
            "flagged": False,
        }
        for field in ("wall_seconds", "events_per_second",
                      "peak_alloc_kib"):
            series = [v for v in _series(prior, "kernels", name, field)
                      if isinstance(v, (int, float))]
            median = _median(series)
            row[f"{field}_median"] = median
            row[f"{field}_delta_pct"] = _delta_pct(kernel.get(field),
                                                   median)
            if field == "wall_seconds":
                row["samples"] = len(series)
        wall_up = row["wall_seconds_delta_pct"]
        eps_down = row["events_per_second_delta_pct"]
        if wall_up is not None and wall_up > threshold_pct:
            row["flagged"] = True
            summary["regressions"].append(
                f"kernel {name}: wall +{wall_up}% vs median of "
                f"{row['samples']} prior run(s)")
        if eps_down is not None and eps_down < -threshold_pct:
            row["flagged"] = True
            summary["regressions"].append(
                f"kernel {name}: throughput {eps_down}% vs median of "
                f"{row['samples']} prior run(s)")
        summary["kernels"][name] = row

    for name in sorted(latest.get("benchmarks", {})):
        bench = latest["benchmarks"][name]
        series = [v for v in _series(prior, "benchmarks", name,
                                     "wall_seconds")
                  if isinstance(v, (int, float))]
        median = _median(series)
        delta = _delta_pct(bench.get("wall_seconds"), median)
        row = {
            "wall_seconds": bench.get("wall_seconds"),
            "wall_seconds_median": median,
            "wall_seconds_delta_pct": delta,
            "samples": len(series),
            "flagged": delta is not None and delta > threshold_pct,
        }
        if row["flagged"]:
            summary["regressions"].append(
                f"benchmark {name}: wall +{delta}% vs median of "
                f"{len(series)} prior run(s)")
        summary["benchmarks"][name] = row
    return summary


def _fmt(value: Any, spec: str = ",.3f") -> str:
    if not isinstance(value, (int, float)):
        return "-"
    return format(value, spec)


def _fmt_delta(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:+.1f}%"


def render_trend(summary: dict[str, Any]) -> str:
    """Readable report for ``repro trend``."""
    header = (f"trend — {summary['records']} record(s)"
              + (f", {summary['first_date']} → {summary['last_date']}"
                 if summary["records"] else ""))
    if not summary["records"]:
        return header + "\n  (no trend history yet)"
    sections = [header]
    if summary["kernels"]:
        rows = [
            [name, _fmt(row["wall_seconds"]),
             _fmt_delta(row["wall_seconds_delta_pct"]),
             _fmt(row["events_per_second"], ",.0f"),
             _fmt_delta(row["events_per_second_delta_pct"]),
             _fmt(row["peak_alloc_kib"], ",.0f"),
             str(row["samples"]),
             "FLAG" if row["flagged"] else ""]
            for name, row in summary["kernels"].items()
        ]
        sections.append(render_table(
            ["kernel", "wall s", "Δwall", "ev/s", "Δev/s", "peak KiB",
             "n", ""],
            rows, title="perf kernels: latest vs trailing median"))
    if summary["benchmarks"]:
        rows = [
            [name, _fmt(row["wall_seconds"]),
             _fmt_delta(row["wall_seconds_delta_pct"]),
             str(row["samples"]),
             "FLAG" if row["flagged"] else ""]
            for name, row in summary["benchmarks"].items()
        ]
        sections.append(render_table(
            ["benchmark", "wall s", "Δwall", "n", ""],
            rows, title="gated benchmarks: latest vs trailing median"))
    if summary["regressions"]:
        sections.append("regressions flagged "
                        f"(>{summary['threshold_pct']:g}%):\n" +
                        "\n".join(f"  {line}"
                                  for line in summary["regressions"]))
    else:
        sections.append(
            f"no regressions beyond {summary['threshold_pct']:g}% "
            f"of the trailing median")
    return "\n\n".join(sections)


def trend_payload(summary: dict[str, Any]) -> dict[str, Any]:
    """Wrap the summary in the standard ``repro.run/1`` envelope."""
    return make_run_payload(
        "trend",
        params={"records": summary["records"],
                "threshold_pct": summary["threshold_pct"]},
        results=summary,
    )
