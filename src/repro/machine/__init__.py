"""The assembled DSM multiprocessor."""

from .address import AddressSpace
from .machine import Machine, Node, build_machine

__all__ = ["AddressSpace", "Machine", "Node", "build_machine"]
