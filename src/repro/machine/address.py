"""The physical address space and its allocator.

Addresses are plain integers.  Memory is block-interleaved across the
nodes: block ``b`` is homed at node ``b % n_nodes``, as on DASH-class
machines.  The allocator carves two disjoint regions:

* a *singles* region for synchronization variables, where each allocation
  receives its own cache block (no false sharing) homed at a caller-chosen
  node;
* an *array* region for bulk data, where consecutive blocks are allocated
  contiguously (their homes rotate across the nodes naturally).
"""

from __future__ import annotations

from ..config import MachineConfig
from ..errors import AddressError

__all__ = ["AddressSpace"]

_ARRAY_REGION_BLOCK = 1 << 20
"""First block of the bulk-array region; singles stay below this."""


class AddressSpace:
    """Address arithmetic plus a simple two-region block allocator."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.n_nodes = config.n_nodes
        self.block_size = config.block_size
        self.word_size = config.word_size
        self.block_bits = config.block_bits
        # Next per-home block index k (block = k * n_nodes + home).
        self._next_single = [0] * self.n_nodes
        self._next_array_block = _ARRAY_REGION_BLOCK

    # ------------------------------------------------------------------
    # Address arithmetic.
    # ------------------------------------------------------------------

    def block_of(self, addr: int) -> int:
        """Block number containing ``addr``."""
        if addr < 0:
            raise AddressError(f"negative address {addr}")
        return addr >> self.block_bits

    def offset_of(self, addr: int) -> int:
        """Word offset of ``addr`` within its block."""
        if addr % self.word_size:
            raise AddressError(f"address {addr:#x} is not word aligned")
        return (addr & (self.block_size - 1)) // self.word_size

    def home_of(self, block: int) -> int:
        """Home node of ``block`` (block-interleaved memory)."""
        return block % self.n_nodes

    def addr_of(self, block: int, offset: int = 0) -> int:
        """Address of word ``offset`` within ``block``."""
        if not 0 <= offset < self.config.words_per_block:
            raise AddressError(f"word offset {offset} outside block")
        return (block << self.block_bits) + offset * self.word_size

    # ------------------------------------------------------------------
    # Allocation.
    # ------------------------------------------------------------------

    def alloc_block(self, home: int | None = None) -> int:
        """Allocate one private block; return its base address.

        Synchronization variables get whole blocks to avoid false sharing
        (the usual practice on real machines).  ``home`` selects the node
        whose memory holds the block; defaults to node 0.
        """
        if home is None:
            home = 0
        if not 0 <= home < self.n_nodes:
            raise AddressError(f"home {home} outside machine of {self.n_nodes}")
        k = self._next_single[home]
        self._next_single[home] = k + 1
        block = k * self.n_nodes + home
        if block >= _ARRAY_REGION_BLOCK:
            raise AddressError("singles region exhausted")
        return block << self.block_bits

    def alloc_array(self, n_words: int) -> int:
        """Allocate ``n_words`` contiguous words; return the base address.

        Blocks are consecutive, so their home nodes interleave round-robin
        — the distribution a compiler/OS would produce for a large shared
        array.
        """
        if n_words <= 0:
            raise AddressError("array allocation must be positive")
        words_per_block = self.config.words_per_block
        n_blocks = -(-n_words // words_per_block)
        base_block = self._next_array_block
        self._next_array_block += n_blocks
        return base_block << self.block_bits
