"""The assembled multiprocessor.

:func:`build_machine` wires up, per node: a processor shell, a cache
controller, a memory module, a directory, and a home-node protocol engine,
all connected by one wormhole mesh.  The resulting :class:`Machine` is the
top-level object experiments use:

.. code-block:: python

    machine = build_machine(SimConfig())
    counter = machine.alloc_sync(SyncPolicy.INV, home=0)

    def program(p, counter):
        for _ in range(10):
            yield p.fetch_add(counter, 1)

    machine.spawn_all(program, counter)
    machine.run()
    assert machine.read_word(counter) == 10 * machine.n_nodes
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from ..coherence.controller import CacheController
from ..coherence.home import HomeNode
from ..coherence.policy import SyncPolicy
from ..config import SimConfig
from ..errors import AddressError, DeadlockError
from ..faults.plan import FaultInjector
from ..memory.directory import Directory, DirState
from ..memory.module import MemoryModule
from ..memory.reservations import make_reservation_table
from ..network.mesh import WormholeMesh
from ..network.shardmesh import ShardedWormholeMesh
from ..obs.events import EventBus
from ..obs.registry import MetricsRegistry
from ..obs.telemetry import maybe_attach as _maybe_attach_telemetry
from ..processor.api import Proc
from ..processor.magic import BarrierManager
from ..processor.processor import Processor
from ..sim.engine import Simulator
from ..stats.collect import MachineStats
from .address import AddressSpace

__all__ = ["Node", "Machine", "build_machine"]


@dataclass
class Node:
    """One processing node: processor + cache + memory slice + home."""

    index: int
    processor: Processor
    controller: CacheController
    memory: MemoryModule
    home: HomeNode


class Machine:
    """A directory-based cache-coherent DSM multiprocessor.

    When ``region`` is given (an iterable of node indices), the machine
    is one shard of a larger run: only the region's nodes get real
    components, the mesh is a :class:`ShardedWormholeMesh` that queues
    boundary-crossing messages for the window coordinator, and spawns /
    initializing writes addressed to out-of-region nodes become no-ops
    (the region owning those nodes performs them).  See
    :mod:`repro.harness.shardrun`.
    """

    def __init__(self, config: SimConfig,
                 region: Optional[Iterable[int]] = None) -> None:
        config.validate()
        self.config = config
        self.region = frozenset(region) if region is not None else None
        # Observability spine: one metrics registry and one event bus,
        # shared by every component (see docs/observability.md).
        self.registry = MetricsRegistry()
        self.events = EventBus()
        self.sim = Simulator(registry=self.registry)
        # Fault-injection plane (docs/robustness.md).  Only an *active*
        # plan builds an injector; otherwise every site keeps its
        # ``faults is None`` fast path and the machine is structurally
        # identical to a fault-free one.
        if config.faults is not None and config.faults.active:
            self.faults: Optional[FaultInjector] = FaultInjector(
                config.faults, registry=self.registry, events=self.events,
                sim=self.sim,
            )
        else:
            self.faults = None
        if self.region is None:
            self.mesh: WormholeMesh = WormholeMesh(
                self.sim, config, registry=self.registry, events=self.events
            )
        else:
            self.mesh = ShardedWormholeMesh(
                self.sim, config, self.region, registry=self.registry,
                events=self.events,
            )
        self.mesh.faults = self.faults
        self.address = AddressSpace(config.machine)
        self.stats = MachineStats()
        self.stats.attach_registry(self.registry)
        self.barriers = BarrierManager(self.sim)
        self._policies: dict[int, SyncPolicy] = {}
        self._running_programs = 0

        n = config.machine.n_nodes
        local = range(n) if self.region is None else sorted(self.region)
        self.nodes: list[Node] = [None] * n  # type: ignore[list-item]
        for i in local:
            memory = MemoryModule(self.sim, i, config, registry=self.registry,
                                  events=self.events)
            directory = Directory(
                i,
                n_nodes=n,
                representation=config.machine.directory,
                pointers=config.machine.dir_pointers,
                region=config.machine.dir_region,
            )
            reservations = make_reservation_table(
                config.reservation_strategy, n, config.reservation_limit
            )
            reservations.faults = self.faults
            reservations.fault_node = i
            controller = CacheController(i, self.mesh, config, self)
            home = HomeNode(i, self.mesh, memory, directory, reservations, self)
            # Processor needs nodes[i].controller; create after assigning.
            self.nodes[i] = Node(i, None, controller, memory, home)  # type: ignore[arg-type]
        for i in local:
            self.nodes[i].processor = Processor(i, self)
        # Inside a telemetry session (repro.obs.telemetry), stream
        # run.progress heartbeats from this machine; None otherwise.
        self.telemetry = _maybe_attach_telemetry(self)

    # ------------------------------------------------------------------
    # Address/policy services used by the protocol engines.
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of processing nodes."""
        return self.config.machine.n_nodes

    def block_of(self, addr: int) -> int:
        """Block number containing ``addr``."""
        return self.address.block_of(addr)

    def offset_of(self, addr: int) -> int:
        """Word offset of ``addr`` within its block."""
        return self.address.offset_of(addr)

    def home_of(self, block: int) -> int:
        """Home node of ``block``."""
        return self.address.home_of(block)

    def policy_of(self, block: int) -> SyncPolicy:
        """Sync policy of ``block`` (ordinary data is INV)."""
        return self._policies.get(block, SyncPolicy.INV)

    # ------------------------------------------------------------------
    # Allocation.
    # ------------------------------------------------------------------

    def alloc_sync(self, policy: SyncPolicy, home: int | None = None) -> int:
        """Allocate a synchronization variable under ``policy``.

        The variable gets a private cache block homed at ``home`` and is
        registered for write-run tracking.  Returns the word address.
        """
        addr = self.address.alloc_block(home)
        block = self.block_of(addr)
        self._policies[block] = policy
        self.stats.writerun.register(addr)
        return addr

    def alloc_data(self, n_words: int) -> int:
        """Allocate ordinary (base-policy) shared data."""
        return self.address.alloc_array(n_words)

    def alloc_node_block(self, home: int) -> int:
        """Allocate one ordinary (base-policy) block homed at ``home``.

        Used for per-processor records that should live in local memory
        and must not false-share with anything else (MCS queue nodes,
        tree-barrier flags, ...).  Returns the block's base word address.
        """
        return self.address.alloc_block(home)

    # ------------------------------------------------------------------
    # Direct memory access (for initialization and result checking).
    # ------------------------------------------------------------------

    def read_word(self, addr: int) -> int:
        """Read the coherent value of a word (directory-aware).

        Follows the directory: if some cache holds the block exclusive,
        the value is read from that cache, otherwise from memory.  Only
        valid between :meth:`run` calls (no transactions in flight).
        """
        block = self.block_of(addr)
        offset = self.offset_of(addr)
        home = self.nodes[self.home_of(block)]
        entry = home.home.directory.entry(block)
        if entry.state is DirState.EXCLUSIVE and entry.owner is not None:
            line = self.nodes[entry.owner].controller.cache.lookup(
                block, touch=False
            )
            if line is not None:
                return line.read_word(offset)
        return home.memory.read_word(block, offset)

    def write_word(self, addr: int, value: int) -> None:
        """Initialize a word in memory (before any caching).

        On a regioned machine, writes homed outside the region are
        no-ops: every shard runs the same setup code, and the shard
        owning the home performs the actual write.
        """
        block = self.block_of(addr)
        home_node = self.home_of(block)
        if self.region is not None and home_node not in self.region:
            return
        home = self.nodes[home_node]
        entry = home.home.directory.entry(block)
        if entry.state is not DirState.UNCACHED:
            raise AddressError(
                f"write_word({addr:#x}) after block became cached; "
                "initialize before running programs"
            )
        home.memory.write_word(block, self.offset_of(addr), value)

    # ------------------------------------------------------------------
    # Program management.
    # ------------------------------------------------------------------

    def proc_handle(self, pid: int) -> Proc:
        """The program-facing API object for processor ``pid``."""
        processor = self.nodes[pid].processor
        return Proc(pid, self.n_nodes, processor.rng)

    def spawn(self, pid: int, program_fn: Callable[..., Any], *args: Any) -> None:
        """Start ``program_fn(proc, *args)`` on processor ``pid``.

        On a regioned machine, spawns for out-of-region pids are no-ops
        so the same workload code runs unchanged on every shard.
        """
        if self.region is not None and pid not in self.region:
            return
        proc = self.proc_handle(pid)
        self._running_programs += 1
        self.nodes[pid].processor.run_program(program_fn(proc, *args))

    def spawn_all(
        self,
        program_fn: Callable[..., Any],
        *args: Any,
        pids: Optional[Iterable[int]] = None,
    ) -> None:
        """Start the same program on every processor (or on ``pids``)."""
        for pid in pids if pids is not None else range(self.n_nodes):
            self.spawn(pid, program_fn, *args)

    def on_processor_exit(self, processor: Processor) -> None:
        """Callback from the processor shell when its program returns."""
        self._running_programs -= 1

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(self, until: int | None = None,
            max_events: int | None = None) -> int:
        """Run until all programs finish (or ``until``); return end time."""
        end = self.sim.run(until=until, max_events=max_events)
        if until is None and self._running_programs > 0:
            blocked = [
                node.processor.process.name
                for node in self.nodes
                if node is not None
                and node.processor.process is not None
                and not node.processor.process.done
            ]
            raise DeadlockError(
                f"event queue drained with {self._running_programs} "
                f"program(s) blocked: {blocked[:8]}"
            )
        self.stats.writerun.finalize()
        return end

    @property
    def now(self) -> int:
        """Current simulation time, in cycles."""
        return self.sim.now


def build_machine(config: SimConfig | None = None,
                  region: Optional[Iterable[int]] = None) -> Machine:
    """Construct a fully wired machine from ``config`` (or the default)."""
    return Machine(config or SimConfig(), region=region)
