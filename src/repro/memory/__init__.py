"""Distributed memory: queued modules, directories, LL/SC reservations."""

from .module import MemoryModule
from .directory import Directory, DirectoryEntry, DirState
from .reservations import (
    ReservationTable,
    BitVectorReservations,
    LimitedReservations,
    SerialNumberReservations,
    LinkedListReservations,
    make_reservation_table,
)

__all__ = [
    "MemoryModule",
    "Directory",
    "DirectoryEntry",
    "DirState",
    "ReservationTable",
    "BitVectorReservations",
    "LimitedReservations",
    "SerialNumberReservations",
    "LinkedListReservations",
    "make_reservation_table",
]
