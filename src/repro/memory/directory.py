"""Directory state, one entry per locally-homed block.

The directory records, for every memory block homed at a node, which
caches hold copies and in what mode.  Entries also carry the home-side
transaction bookkeeping: a ``busy`` flag set while an ownership transfer
is in flight, and a FIFO of requests that arrived while busy (the paper's
"queued memory" discipline extends to the directory).

How sharers are *represented* is pluggable (``MachineConfig.directory``):
the default is the paper's full bit vector, with limited-pointer
(Dir_i_B, broadcast on overflow) and coarse-vector (region-granularity)
alternatives for large machines — see :mod:`repro.memory.sharers`.
Protocol decisions are identical across representations; only the
invalidation/update fan-out (:meth:`DirectoryEntry.targets`) differs.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..errors import ProtocolError
from .sharers import SharerSet, make_sharer_factory

__all__ = ["DirState", "DirectoryEntry", "Directory"]


class DirState(enum.Enum):
    """Stable states of a directory entry."""

    UNCACHED = "uncached"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class DirectoryEntry:
    """Directory record for one block."""

    state: DirState = DirState.UNCACHED
    sharers: SharerSet = field(default_factory=SharerSet)
    owner: Optional[int] = None
    busy: bool = False
    # Requests that arrived while the entry was busy, replayed FIFO.
    waiters: deque = field(default_factory=deque)
    # Home-side context of the in-flight transaction (message being served).
    pending: Any = None
    # Set when a recall found the owner gone (it raced a drop_copy or an
    # eviction); the entry stays busy until the in-flight writeback lands.
    awaiting_wb: bool = False

    def set_uncached(self) -> None:
        """Transition to UNCACHED, clearing copy bookkeeping."""
        self.state = DirState.UNCACHED
        self.sharers.clear()
        self.owner = None

    def set_shared(self, sharers: Iterable[int]) -> None:
        """Transition to SHARED with the given copy holders."""
        sharers = list(sharers)
        if not sharers:
            self.set_uncached()
            return
        self.state = DirState.SHARED
        self.sharers.replace(sharers)
        self.owner = None

    def set_exclusive(self, owner: int) -> None:
        """Transition to EXCLUSIVE with a single owning cache."""
        self.state = DirState.EXCLUSIVE
        self.sharers.clear()
        self.owner = owner

    def add_sharer(self, node: int) -> None:
        """Add one sharer (entry must not be EXCLUSIVE)."""
        if self.state is DirState.EXCLUSIVE:
            raise ProtocolError("cannot add a sharer to an exclusive entry")
        self.sharers.add(node)
        self.state = DirState.SHARED

    def remove_sharer(self, node: int) -> None:
        """Drop one sharer; collapses to UNCACHED when none remain."""
        self.sharers.discard(node)
        if self.state is DirState.SHARED and not self.sharers:
            self.set_uncached()

    def is_sharer(self, node: int) -> bool:
        """Exact membership test (identical across representations)."""
        return node in self.sharers

    def targets(self, exclude: int) -> list[int]:
        """Invalidation/update fan-out, ascending node id, without
        ``exclude``.  Exact sharers for the full bit vector; a superset
        for imprecise representations (see :mod:`repro.memory.sharers`).
        """
        return self.sharers.targets(exclude)


class Directory:
    """All directory entries homed at one node (created on demand)."""

    def __init__(
        self,
        node: int,
        n_nodes: int = 0,
        representation: str = "full",
        pointers: int = 8,
        region: int = 8,
    ) -> None:
        self.node = node
        self.representation = representation
        #: True when fan-out may exceed the exact sharer set; the home
        #: node only accounts spurious-message counters in that case.
        self.imprecise = representation != "full"
        self._make_sharers = make_sharer_factory(
            representation, n_nodes, pointers, region
        )
        self._entries: dict[int, DirectoryEntry] = {}

    def entry(self, block: int) -> DirectoryEntry:
        """The entry for ``block``, creating an UNCACHED one if absent."""
        ent = self._entries.get(block)
        if ent is None:
            ent = DirectoryEntry(sharers=self._make_sharers())
            self._entries[block] = ent
        return ent

    def known_blocks(self) -> list[int]:
        """Blocks with materialized entries (for inspection/tests)."""
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
