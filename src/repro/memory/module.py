"""Queued memory modules.

Each node hosts one memory module holding its slice of the interleaved
physical address space.  The module is *queued*: requests are serviced one
at a time, FIFO, each taking ``memory_service`` cycles, so memory
contention shows up as queuing delay — exactly the behaviour the paper's
back end models.

Data is stored per block as a list of words; blocks spring into existence
zero-filled, like real DRAM after initialization.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..config import SimConfig
from ..obs.events import EventBus
from ..obs.registry import MetricsRegistry
from ..sim.engine import Simulator

__all__ = ["MemoryModule", "MemoryStats"]


class MemoryStats:
    """Counters for one memory module (registry-backed, ``mem.<node>.*``).

    ``accesses`` and ``total_queue_wait`` remain readable/writable via
    the historical attributes; the registry additionally keeps a
    log-bucketed ``queue_wait_hist`` of per-request waits.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        prefix: str = "mem",
    ) -> None:
        reg = registry if registry is not None else MetricsRegistry()
        self._accesses = reg.counter(f"{prefix}.accesses")
        self._total_queue_wait = reg.counter(f"{prefix}.queue_wait")
        self.queue_wait_hist = reg.histogram(f"{prefix}.queue_wait_hist")

    @property
    def accesses(self) -> int:
        """Requests serviced (``<prefix>.accesses``)."""
        return self._accesses.value

    @accesses.setter
    def accesses(self, value: int) -> None:
        self._accesses.value = value

    @property
    def total_queue_wait(self) -> int:
        """Summed cycles spent waiting for service (``<prefix>.queue_wait``)."""
        return self._total_queue_wait.value

    @total_queue_wait.setter
    def total_queue_wait(self, value: int) -> None:
        self._total_queue_wait.value = value

    @property
    def mean_queue_wait(self) -> float:
        """Average cycles a request waited before service began."""
        return self.total_queue_wait / self.accesses if self.accesses else 0.0


class MemoryModule:
    """One node's memory: block storage plus a FIFO service queue."""

    def __init__(
        self,
        sim: Simulator,
        node: int,
        config: SimConfig,
        registry: Optional[MetricsRegistry] = None,
        events: Optional[EventBus] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.config = config
        self.events = events
        self.words_per_block = config.machine.words_per_block
        self._blocks: dict[int, list[int]] = {}
        self._next_free = 0
        self.stats = MemoryStats(registry, prefix=f"mem.{node}")
        # Hot-path caches: raw counters behind the stats shims and the
        # frozen service time, resolved once.
        self._c_accesses = self.stats._accesses
        self._c_queue_wait = self.stats._total_queue_wait
        self._observe_wait = self.stats.queue_wait_hist.observe
        self._t_service = config.timing.memory_service

    # ------------------------------------------------------------------
    # Data access (zero latency; timing is applied via `service`).
    # ------------------------------------------------------------------

    def read_block(self, block: int) -> list[int]:
        """Return a copy of the block's words."""
        return list(self._block(block))

    def write_block(self, block: int, words: list[int]) -> None:
        """Replace the block's contents."""
        data = self._block(block)
        if len(words) != self.words_per_block:
            raise ValueError(
                f"block write needs {self.words_per_block} words, got {len(words)}"
            )
        data[:] = words

    def read_word(self, block: int, offset: int) -> int:
        """Read one word of a block (``offset`` in words)."""
        return self._block(block)[offset]

    def write_word(self, block: int, offset: int, value: int) -> None:
        """Write one word of a block."""
        self._block(block)[offset] = value

    def _block(self, block: int) -> list[int]:
        data = self._blocks.get(block)
        if data is None:
            data = [0] * self.words_per_block
            self._blocks[block] = data
        return data

    # ------------------------------------------------------------------
    # Queued service.
    # ------------------------------------------------------------------

    def service(
        self,
        fn: Callable[..., None],
        *args: Any,
        service_time: int | None = None,
        txn: Any = None,
        block: int | None = None,
        mtype: str | None = None,
        requester: int | None = None,
    ) -> None:
        """Enqueue a request; run ``fn(*args)`` when service completes.

        Models the FIFO memory queue: the request waits until the module is
        free, then occupies it for ``memory_service`` cycles (or
        ``service_time``, for directory-only work).  When the request
        belongs to a requester transaction, pass it as ``txn`` so the
        queue wait and service occupancy are attributed in its latency
        breakdown.  ``block``/``mtype``/``requester`` only describe the
        request on the ``mem.service`` event stream (when anyone listens).
        """
        sim = self.sim
        now = sim._now
        start = self._next_free
        if start < now:
            start = now
        service = self._t_service if service_time is None else service_time
        end = start + service
        self._next_free = end
        self._c_accesses.value += 1
        wait = start - now
        self._c_queue_wait.value += wait
        self._observe_wait(wait)
        if txn is not None:
            breakdown = getattr(txn, "breakdown", None)
            if breakdown is not None:
                breakdown.credit("queue", start)
                breakdown.credit("memory", end)
        events = self.events
        if events is not None and events.active:
            events.emit(
                "mem.service", end, node=self.node,
                arrival=now, start=start, block=block, mtype=mtype,
                requester=requester, has_txn=txn is not None,
            )
        sim.schedule(end - now, fn, *args)
