"""Reservation bookkeeping for in-memory load_linked/store_conditional.

When LL/SC is implemented at the memory (the UNC and UPD policies), the
memory must remember which processors hold reservations on each block.
Section 3.1 of the paper discusses four options; we implement three as
interchangeable strategies:

* :class:`BitVectorReservations` — one reservation bit per processor per
  block (conceptually a bit vector in the directory entry).  Exact
  semantics, quadratic total directory growth.
* :class:`LimitedReservations` — at most ``k`` concurrent reservations per
  block.  A load_linked beyond the limit is told immediately that it is
  *doomed*: its store_conditional can then fail locally with no network
  traffic.  Compromises lock-freedom under very high contention.
* :class:`SerialNumberReservations` — a per-block write serial number.
  load_linked returns the current serial number; store_conditional
  succeeds only if the serial number is unchanged.  No per-processor
  state, immune to the ABA/pointer problem, and allows a *bare*
  store_conditional (one not preceded by load_linked) — the paper's
  preferred design.

All strategies share one interface so the home-node protocol never needs
to know which is configured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError

__all__ = [
    "LLGrant",
    "ReservationTable",
    "BitVectorReservations",
    "LimitedReservations",
    "SerialNumberReservations",
    "make_reservation_table",
]


@dataclass(frozen=True)
class LLGrant:
    """What the memory tells a load_linked requester.

    Attributes:
        doomed: True if the reservation could not be recorded; the matching
            store_conditional is guaranteed to fail and may do so locally.
        token: Strategy-specific token the requester must present to
            store_conditional (the serial number for
            :class:`SerialNumberReservations`; ``None`` otherwise).
    """

    doomed: bool = False
    token: Optional[int] = None


class ReservationTable:
    """Interface for per-block LL/SC reservation bookkeeping at a memory."""

    # Fault-injection plane: the machine installs its injector plus the
    # table's home-node index on each instance (docs/robustness.md).
    # The class defaults keep bare tables (tests, tools) fault-free.
    faults = None
    fault_node = 0

    def load_linked(self, pid: int, block: int) -> LLGrant:
        """Record a reservation for ``pid`` on ``block``."""
        raise NotImplementedError

    def check(self, pid: int, block: int, token: Optional[int]) -> bool:
        """Would a store_conditional by ``pid`` succeed right now?"""
        raise NotImplementedError

    def consume(self, pid: int, block: int, token: Optional[int]) -> bool:
        """Atomically check and, on success, clear ``block``'s reservations.

        Called for a store_conditional arriving at the memory.  On success
        every other processor's reservation dies with the write.
        """
        faults = self.faults
        if faults is not None and faults.res_kill(self.fault_node):
            # Spurious reservation loss (paper §2.1: context switches,
            # TLB exceptions): everything reserved on the block dies
            # just before the check, so this store_conditional fails
            # and its retry loop must recover.
            self.write(block)
        if not self.check(pid, block, token):
            return False
        self.write(block)
        return True

    def write(self, block: int) -> None:
        """A write to ``block`` occurred: all reservations on it die."""
        raise NotImplementedError

    def holders(self, block: int) -> int:
        """Number of live reservations on ``block`` (0 for serial-number)."""
        return 0


class BitVectorReservations(ReservationTable):
    """One reservation bit per processor per block (sparse dict-of-sets)."""

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        self._bits: dict[int, set[int]] = {}

    def load_linked(self, pid: int, block: int) -> LLGrant:
        self._bits.setdefault(block, set()).add(pid)
        return LLGrant(doomed=False, token=None)

    def check(self, pid: int, block: int, token: Optional[int]) -> bool:
        return pid in self._bits.get(block, ())

    def write(self, block: int) -> None:
        self._bits.pop(block, None)

    def holders(self, block: int) -> int:
        return len(self._bits.get(block, ()))


class LimitedReservations(ReservationTable):
    """At most ``limit`` concurrent reservations per block."""

    def __init__(self, n_nodes: int, limit: int = 4) -> None:
        if limit < 1:
            raise ConfigError("reservation limit must be >= 1")
        self.n_nodes = n_nodes
        self.limit = limit
        self._slots: dict[int, set[int]] = {}
        self.denied = 0

    def load_linked(self, pid: int, block: int) -> LLGrant:
        slots = self._slots.setdefault(block, set())
        if pid in slots:
            return LLGrant(doomed=False, token=None)
        if len(slots) >= self.limit:
            self.denied += 1
            return LLGrant(doomed=True, token=None)
        slots.add(pid)
        return LLGrant(doomed=False, token=None)

    def check(self, pid: int, block: int, token: Optional[int]) -> bool:
        return pid in self._slots.get(block, ())

    def write(self, block: int) -> None:
        self._slots.pop(block, None)

    def holders(self, block: int) -> int:
        return len(self._slots.get(block, ()))


class SerialNumberReservations(ReservationTable):
    """Per-block write serial numbers (the paper's preferred option).

    The serial number is conceptually a hardware counter wide enough
    (e.g. 32 bits) that wrap-around is not a practical concern; we model it
    as an unbounded integer.  A store_conditional presenting a stale serial
    number fails.  Because success depends only on the (block, serial)
    pair, a processor that knows an expected serial number may issue a bare
    store_conditional with no preceding load_linked.
    """

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        self._serial: dict[int, int] = {}

    def current(self, block: int) -> int:
        """The block's current write serial number."""
        return self._serial.get(block, 0)

    def load_linked(self, pid: int, block: int) -> LLGrant:
        return LLGrant(doomed=False, token=self.current(block))

    def check(self, pid: int, block: int, token: Optional[int]) -> bool:
        if token is None:
            return False
        return token == self.current(block)

    def write(self, block: int) -> None:
        self._serial[block] = self.current(block) + 1


class LinkedListReservations(ReservationTable):
    """Reservation lists drawn from a bounded free list (paper §3.1).

    The paper's second option: per-block linked lists of reserver ids,
    with only a list head stored in the directory entry when reservations
    exist.  The nodes come from a finite free list maintained by the
    coherence protocol; when it runs dry, further load_linked's cannot be
    recorded and are *doomed* (their store_conditional's fail locally),
    exactly like the over-limit case of :class:`LimitedReservations`, but
    with the capacity shared across all blocks of the module rather than
    fixed per block.
    """

    def __init__(self, n_nodes: int, pool_size: int = 64) -> None:
        if pool_size < 1:
            raise ConfigError("free-list pool must hold at least one node")
        self.n_nodes = n_nodes
        self.pool_size = pool_size
        self._free = pool_size
        self._lists: dict[int, set[int]] = {}
        self.denied = 0

    def load_linked(self, pid: int, block: int) -> LLGrant:
        holders = self._lists.setdefault(block, set())
        if pid in holders:
            return LLGrant(doomed=False, token=None)
        if self._free == 0:
            self.denied += 1
            return LLGrant(doomed=True, token=None)
        self._free -= 1
        holders.add(pid)
        return LLGrant(doomed=False, token=None)

    def check(self, pid: int, block: int, token: Optional[int]) -> bool:
        return pid in self._lists.get(block, ())

    def write(self, block: int) -> None:
        holders = self._lists.pop(block, None)
        if holders:
            self._free += len(holders)

    def holders(self, block: int) -> int:
        return len(self._lists.get(block, ()))

    @property
    def free_nodes(self) -> int:
        """Reservation nodes left on the free list (for tests/metrics)."""
        return self._free


def make_reservation_table(
    strategy: str, n_nodes: int, limit: int = 4
) -> ReservationTable:
    """Factory mapping :class:`repro.config.SimConfig` names to tables."""
    if strategy == "bitvector":
        return BitVectorReservations(n_nodes)
    if strategy == "limited":
        return LimitedReservations(n_nodes, limit)
    if strategy == "serial":
        return SerialNumberReservations(n_nodes)
    if strategy == "linkedlist":
        return LinkedListReservations(n_nodes, pool_size=max(limit, 1) * 16)
    raise ConfigError(f"unknown reservation strategy {strategy!r}")
