"""Pluggable sharer-set representations for directory entries.

The paper's machine keeps a full bit vector per directory entry — one
presence bit per node — which is exact but costs O(N) per block.  Real
large-scale directories economize with *limited-pointer* schemes (track
up to ``i`` sharer pointers, fall back to broadcast on overflow —
Dir_i_B) or *coarse-vector* schemes (one bit per region of ``r`` nodes),
trading extra invalidation/update traffic for constant-ish state.

Every representation here keeps an **exact** membership bit mask (a
Python int — compact and O(1)-ish for the small sharer counts the
workloads produce).  Protocol *decisions* — state transitions, SC
membership checks, collapse-to-UNCACHED — always consult the exact mask,
so all representations make identical decisions and produce identical
final values.  What differs is :meth:`SharerSet.targets`: the fan-out an
imprecise directory must use for invalidations and updates.  A
limited-pointer set past its capacity broadcasts to every node; a
coarse-vector set multicasts to every node of every marked region.  The
protocol tolerates the extra messages (caches ack invalidations and
updates for blocks they do not hold), and the ablation harness measures
exactly that overhead.

Multicast order is ascending node id for every representation, which is
also the simulated send order — so a full-bit-vector run is reproducible
independent of Python's set iteration order.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import ConfigError

__all__ = [
    "SharerSet",
    "LimitedPointerSet",
    "CoarseVectorSet",
    "make_sharer_factory",
    "REPRESENTATIONS",
]


class SharerSet:
    """Exact full-bit-vector sharer set (the paper's directory).

    Membership lives in ``mask``, an int bit vector indexed by node id.
    Subclasses layer an imprecise hardware representation on top and
    override :meth:`targets` (and the bookkeeping hooks ``_note_add`` /
    ``_note_replace`` / ``_note_clear``); the exact mask itself is shared
    machinery so protocol decisions never diverge between
    representations.
    """

    __slots__ = ("mask",)

    kind = "full"

    def __init__(self, n_nodes: int = 0) -> None:
        self.mask = 0

    # -- exact membership (drives protocol decisions) -----------------

    def add(self, node: int) -> None:
        """Record ``node`` as a sharer."""
        self.mask |= 1 << node
        self._note_add(node)

    def discard(self, node: int) -> None:
        """Forget ``node`` (no effect if absent)."""
        self.mask &= ~(1 << node)

    def clear(self) -> None:
        """Forget every sharer and reset representation state."""
        self.mask = 0
        self._note_clear()

    def replace(self, nodes: Iterable[int]) -> None:
        """Reset to exactly ``nodes``."""
        mask = 0
        for node in nodes:
            mask |= 1 << node
        self.mask = mask
        self._note_replace()

    def __contains__(self, node: object) -> bool:
        if not isinstance(node, int):
            return False
        return bool(self.mask >> node & 1)

    def __len__(self) -> int:
        return self.mask.bit_count()

    def __bool__(self) -> bool:
        return self.mask != 0

    def __iter__(self) -> Iterator[int]:
        """Exact members, ascending node id."""
        mask = self.mask
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SharerSet):
            return self.mask == other.mask
        if isinstance(other, (set, frozenset)):
            return set(self) == other
        return NotImplemented

    def __hash__(self):  # pragma: no cover - entries are never dict keys
        return hash(self.mask)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({set(self)!r})"

    # -- representation-dependent fan-out ------------------------------

    @property
    def overflowed(self) -> bool:
        """True when the representation lost per-node precision."""
        return False

    def targets(self, exclude: int) -> list[int]:
        """Nodes an invalidation/update must visit, ascending, without
        ``exclude``.  Always a superset of the exact sharers."""
        mask = self.mask & ~(1 << exclude)
        out = []
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    def exact_targets(self, exclude: int) -> int:
        """How many *true* sharers an exact directory would visit."""
        return (self.mask & ~(1 << exclude)).bit_count()

    # -- hooks for imprecise subclasses --------------------------------

    def _note_add(self, node: int) -> None:
        pass

    def _note_replace(self) -> None:
        pass

    def _note_clear(self) -> None:
        pass


class LimitedPointerSet(SharerSet):
    """Limited-pointer directory with broadcast on overflow (Dir_i_B).

    Tracks sharers precisely while there are at most ``pointers`` of
    them.  The (``pointers`` + 1)-th concurrent sharer overflows the
    pointer array: the entry degrades to a single broadcast bit, and
    every subsequent invalidation/update goes to *all* nodes.  The
    overflow is sticky — dropping copies cannot restore precision, the
    hardware no longer knows who holds them — until the entry resets
    (exclusive transfer, writeback, or collapse to UNCACHED), exactly
    when Dir_i_B regains precision.
    """

    __slots__ = ("n_nodes", "pointers", "_overflow")

    kind = "limited"

    def __init__(self, n_nodes: int, pointers: int = 8) -> None:
        if n_nodes < 1:
            raise ConfigError("limited-pointer set needs n_nodes >= 1")
        if pointers < 1:
            raise ConfigError("limited-pointer set needs pointers >= 1")
        super().__init__(n_nodes)
        self.n_nodes = n_nodes
        self.pointers = pointers
        self._overflow = False

    @property
    def overflowed(self) -> bool:
        return self._overflow

    def targets(self, exclude: int) -> list[int]:
        if not self._overflow:
            return super().targets(exclude)
        return [n for n in range(self.n_nodes) if n != exclude]

    def _note_add(self, node: int) -> None:
        if not self._overflow and self.mask.bit_count() > self.pointers:
            self._overflow = True

    def _note_replace(self) -> None:
        self._overflow = self.mask.bit_count() > self.pointers

    def _note_clear(self) -> None:
        self._overflow = False


class CoarseVectorSet(SharerSet):
    """Coarse-vector directory: one presence bit per ``region`` nodes.

    The hardware keeps region bits only, so any sharer anywhere in a
    region marks the whole region, and invalidations/updates visit every
    node of every marked region.  Region bits are sticky within an
    entry's sharing epoch — dropping one copy cannot clear a region bit,
    another node of the region might still hold one — and reset when the
    entry resets, like the limited-pointer scheme.  ``region=1``
    degenerates to the exact full bit vector.
    """

    __slots__ = ("n_nodes", "region", "_regions")

    kind = "coarse"

    def __init__(self, n_nodes: int, region: int = 8) -> None:
        if n_nodes < 1:
            raise ConfigError("coarse-vector set needs n_nodes >= 1")
        if region < 1:
            raise ConfigError("coarse-vector set needs region >= 1")
        super().__init__(n_nodes)
        self.n_nodes = n_nodes
        self.region = region
        self._regions = 0

    @property
    def overflowed(self) -> bool:
        """True when some marked region holds a non-sharer."""
        return self._region_mask() != self.mask

    def targets(self, exclude: int) -> list[int]:
        mask = self._region_mask() & ~(1 << exclude)
        out = []
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    def _region_mask(self) -> int:
        """Node mask covered by the marked regions (clipped to n_nodes)."""
        mask = 0
        regions = self._regions
        span = (1 << self.region) - 1
        while regions:
            low = regions & -regions
            index = low.bit_length() - 1
            mask |= span << (index * self.region)
            regions ^= low
        return mask & ((1 << self.n_nodes) - 1)

    def _note_add(self, node: int) -> None:
        self._regions |= 1 << (node // self.region)

    def _note_replace(self) -> None:
        regions = 0
        mask = self.mask
        while mask:
            low = mask & -mask
            regions |= 1 << ((low.bit_length() - 1) // self.region)
            mask ^= low
        self._regions = regions

    def _note_clear(self) -> None:
        self._regions = 0


REPRESENTATIONS = ("full", "limited", "coarse")
"""Valid ``MachineConfig.directory`` values."""


def make_sharer_factory(
    representation: str = "full",
    n_nodes: int = 0,
    pointers: int = 8,
    region: int = 8,
):
    """Return a zero-argument factory building one sharer set per entry."""
    if representation == "full":
        return SharerSet
    if representation == "limited":
        return lambda: LimitedPointerSet(n_nodes, pointers)
    if representation == "coarse":
        return lambda: CoarseVectorSet(n_nodes, region)
    raise ConfigError(
        f"directory representation must be one of {REPRESENTATIONS}, "
        f"got {representation!r}"
    )
