"""2-D wormhole mesh interconnect model."""

from .message import Message, MessageType, Unit
from .topology import Mesh2D
from .mesh import WormholeMesh, NetworkStats

__all__ = ["Message", "MessageType", "Unit", "Mesh2D", "WormholeMesh", "NetworkStats"]
