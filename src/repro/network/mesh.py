"""Wormhole-routed mesh with entry/exit port contention.

Latency model (matching the paper's description of its back end):

* Each node has one network-entry port and one network-exit port, each able
  to accept one flit per ``flit_cycles`` cycles.  Messages queue FIFO at
  these ports; this is the only place network contention is modeled
  ("contention at the entry and exit of the network, though not at internal
  nodes").
* Once injected, a message pipelines through the mesh wormhole-style: the
  head flit pays ``hop_cycles`` per hop and the remaining flits stream
  behind it, so transit time is ``hops * hop_cycles + (flits - 1) *
  flit_cycles``.
* Node-local messages (``src == dst``) bypass the network entirely and pay
  a small fixed bus latency.

Delivery invokes a handler registered per (node, unit).

Observability: every delivered message increments the ``net.*`` counters
in the machine's :class:`~repro.obs.registry.MetricsRegistry`, and —
when anyone is listening — emits ``msg.send``/``msg.deliver`` events on
the machine's :class:`~repro.obs.events.EventBus`.  The legacy
single-slot ``observer`` attribute is kept for backward compatibility;
new code should subscribe to the bus instead (see
:class:`repro.debug.trace.ProtocolTracer`).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..config import SimConfig
from ..errors import SimulationError
from ..obs.events import EventBus
from ..obs.registry import MetricsRegistry
from ..sim.engine import Simulator
from .message import Message, Unit
from .topology import Mesh2D

__all__ = ["WormholeMesh", "NetworkStats"]

Handler = Callable[[Message], None]


class NetworkStats:
    """Aggregate network counters (registry-backed, ``net.*``).

    The historical attribute spelling (``mesh.stats.messages``,
    ``mesh.stats.by_type``) keeps working as property shims over the
    registry counters.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        reg = registry if registry is not None else MetricsRegistry()
        self.registry = reg
        self._messages = reg.counter("net.messages")
        self._local_messages = reg.counter("net.local_messages")
        self._flits = reg.counter("net.flits")
        self._total_latency = reg.counter("net.total_latency")
        self._latency_hist = reg.histogram("net.latency")
        self._by_type: dict[str, object] = {}

    # -- property shims over the registry ------------------------------

    @property
    def messages(self) -> int:
        """Non-local messages delivered (``net.messages``)."""
        return self._messages.value

    @messages.setter
    def messages(self, value: int) -> None:
        self._messages.value = value

    @property
    def local_messages(self) -> int:
        """Node-local messages delivered (``net.local_messages``)."""
        return self._local_messages.value

    @local_messages.setter
    def local_messages(self, value: int) -> None:
        self._local_messages.value = value

    @property
    def flits(self) -> int:
        """Flits injected by non-local messages (``net.flits``)."""
        return self._flits.value

    @flits.setter
    def flits(self, value: int) -> None:
        self._flits.value = value

    @property
    def total_latency(self) -> int:
        """Summed non-local message latency (``net.total_latency``)."""
        return self._total_latency.value

    @total_latency.setter
    def total_latency(self, value: int) -> None:
        self._total_latency.value = value

    @property
    def by_type(self) -> dict[str, int]:
        """Messages per type (``net.by_type.<TYPE>`` counters)."""
        return {key: counter.value for key, counter in self._by_type.items()}

    def record(self, msg: Message, flits: int, latency: int, local: bool) -> None:
        """Account one delivered message."""
        if local:
            self._local_messages.inc()
        else:
            self._messages.inc()
            self._flits.inc(flits)
            self._total_latency.inc(latency)
            self._latency_hist.observe(latency)
        key = msg.mtype.value
        counter = self._by_type.get(key)
        if counter is None:
            counter = self._by_type[key] = self.registry.counter(
                f"net.by_type.{key}"
            )
        counter.inc()  # type: ignore[union-attr]

    @property
    def mean_latency(self) -> float:
        """Mean network latency of non-local messages."""
        messages = self._messages.value
        return self._total_latency.value / messages if messages else 0.0


class WormholeMesh:
    """The interconnect: routes :class:`Message` objects between nodes."""

    def __init__(
        self,
        sim: Simulator,
        config: SimConfig,
        registry: Optional[MetricsRegistry] = None,
        events: Optional[EventBus] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        machine = config.machine
        self.topology = Mesh2D(machine.n_nodes, machine.mesh_width)
        self._handlers: dict[tuple[int, Unit], Handler] = {}
        # Earliest cycle at which each port can begin accepting a message.
        self._entry_free = [0] * machine.n_nodes
        self._exit_free = [0] * machine.n_nodes
        self.stats = NetworkStats(registry)
        self.events = events if events is not None else EventBus()
        # Legacy single-slot observer(msg, send_time, deliver_time) hook.
        self.observer: Callable[[Message, int, int], None] | None = None

    def register(self, node: int, unit: Unit, handler: Handler) -> None:
        """Install the delivery handler for ``unit`` at ``node``."""
        self._handlers[(node, unit)] = handler

    def message_flits(self, msg: Message) -> int:
        """Size of ``msg`` in flits."""
        timing = self.config.timing
        if msg.mtype.carries_data:
            return self.config.machine.data_flits(timing)
        return timing.header_flits

    def _observe(self, msg: Message, sent: int, delivered: int) -> None:
        """Feed the legacy observer and the event bus (no sim effects)."""
        if self.observer is not None:
            self.observer(msg, sent, delivered)
        bus = self.events
        if bus.active:
            fields = dict(
                mtype=msg.mtype.value,
                src=msg.src,
                dst=msg.dst,
                unit=msg.unit.value,
                block=msg.block,
                chain=msg.chain,
                requester=msg.requester,
                msg_id=msg.msg_id,
                has_txn=msg.txn is not None,
            )
            bus.emit("msg.send", sent, node=msg.src, delivered=delivered,
                     **fields)
            bus.emit("msg.deliver", delivered, node=msg.dst, sent=sent,
                     **fields)

    def send(self, msg: Message) -> None:
        """Inject ``msg``; schedules its delivery at the destination."""
        handler = self._handlers.get((msg.dst, msg.unit))
        if handler is None:
            raise SimulationError(
                f"no handler registered for node {msg.dst} unit {msg.unit}"
            )
        timing = self.config.timing
        flits = self.message_flits(msg)
        now = self.sim.now

        if msg.src == msg.dst:
            # Node-local: cache <-> local memory over the node bus.
            done = now + timing.local_access
            self.stats.record(msg, flits, timing.local_access, local=True)
        else:
            serialize = flits * timing.flit_cycles
            # Entry-port queuing at the source.
            inject = max(now, self._entry_free[msg.src])
            self._entry_free[msg.src] = inject + serialize
            # Wormhole transit.
            hops = self.topology.distance(msg.src, msg.dst)
            head_arrival = inject + hops * timing.hop_cycles
            tail_arrival = head_arrival + (flits - 1) * timing.flit_cycles
            # Exit-port queuing at the destination.
            ready = max(tail_arrival, self._exit_free[msg.dst])
            self._exit_free[msg.dst] = ready + serialize
            done = ready + serialize
            self.stats.record(msg, flits, done - now, local=False)

        breakdown = getattr(msg.txn, "breakdown", None)
        if breakdown is not None:
            breakdown.credit("network", done)
        if self.observer is not None or self.events.active:
            self._observe(msg, now, done)
        self.sim.schedule(done - now, handler, msg)
