"""Wormhole-routed mesh with entry/exit port contention.

Latency model (matching the paper's description of its back end):

* Each node has one network-entry port and one network-exit port, each able
  to accept one flit per ``flit_cycles`` cycles.  Messages queue FIFO at
  these ports; this is the only place network contention is modeled
  ("contention at the entry and exit of the network, though not at internal
  nodes").
* Once injected, a message pipelines through the mesh wormhole-style: the
  head flit pays ``hop_cycles`` per hop and the remaining flits stream
  behind it, so transit time is ``hops * hop_cycles + (flits - 1) *
  flit_cycles``.
* Node-local messages (``src == dst``) bypass the network entirely and pay
  a small fixed bus latency.

Delivery invokes a handler registered per (node, unit).

Observability: every delivered message increments the ``net.*`` counters
in the machine's :class:`~repro.obs.registry.MetricsRegistry`, and —
when anyone is listening — emits ``msg.send``/``msg.deliver`` events on
the machine's :class:`~repro.obs.events.EventBus`.  The legacy
single-slot ``observer`` attribute is kept for backward compatibility;
new code should subscribe to the bus instead (see
:class:`repro.debug.trace.ProtocolTracer`).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..config import SimConfig
from ..errors import SimulationError
from ..obs.events import EventBus
from ..obs.registry import MetricsRegistry
from ..sim.engine import Simulator
from .message import Message, MessageType, Unit
from .topology import make_topology

__all__ = ["WormholeMesh", "NetworkStats"]

Handler = Callable[[Message], None]


class NetworkStats:
    """Aggregate network counters (registry-backed, ``net.*``).

    The historical attribute spelling (``mesh.stats.messages``,
    ``mesh.stats.by_type``) keeps working as property shims over the
    registry counters.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        reg = registry if registry is not None else MetricsRegistry()
        self.registry = reg
        self._messages = reg.counter("net.messages")
        self._local_messages = reg.counter("net.local_messages")
        self._flits = reg.counter("net.flits")
        self._total_latency = reg.counter("net.total_latency")
        self._latency_hist = reg.histogram("net.latency")
        self._by_type: dict[str, object] = {}

    # -- property shims over the registry ------------------------------

    @property
    def messages(self) -> int:
        """Non-local messages delivered (``net.messages``)."""
        return self._messages.value

    @messages.setter
    def messages(self, value: int) -> None:
        self._messages.value = value

    @property
    def local_messages(self) -> int:
        """Node-local messages delivered (``net.local_messages``)."""
        return self._local_messages.value

    @local_messages.setter
    def local_messages(self, value: int) -> None:
        self._local_messages.value = value

    @property
    def flits(self) -> int:
        """Flits injected by non-local messages (``net.flits``)."""
        return self._flits.value

    @flits.setter
    def flits(self, value: int) -> None:
        self._flits.value = value

    @property
    def total_latency(self) -> int:
        """Summed non-local message latency (``net.total_latency``)."""
        return self._total_latency.value

    @total_latency.setter
    def total_latency(self, value: int) -> None:
        self._total_latency.value = value

    @property
    def by_type(self) -> dict[str, int]:
        """Messages per type (``net.by_type.<TYPE>`` counters)."""
        return {key: counter.value for key, counter in self._by_type.items()}

    def type_counter(self, key: str):
        """The (lazily created) ``net.by_type.<key>`` counter."""
        counter = self._by_type.get(key)
        if counter is None:
            counter = self._by_type[key] = self.registry.counter(
                f"net.by_type.{key}"
            )
        return counter

    def record(self, msg: Message, flits: int, latency: int, local: bool) -> None:
        """Account one delivered message."""
        if local:
            self._local_messages.inc()
        else:
            self._messages.inc()
            self._flits.inc(flits)
            self._total_latency.inc(latency)
            self._latency_hist.observe(latency)
        self.type_counter(msg.mtype.value).inc()  # type: ignore[union-attr]

    @property
    def mean_latency(self) -> float:
        """Mean network latency of non-local messages."""
        messages = self._messages.value
        return self._total_latency.value / messages if messages else 0.0


class WormholeMesh:
    """The interconnect: routes :class:`Message` objects between nodes."""

    def __init__(
        self,
        sim: Simulator,
        config: SimConfig,
        registry: Optional[MetricsRegistry] = None,
        events: Optional[EventBus] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        machine = config.machine
        timing = config.timing
        self.topology = make_topology(machine)
        self._handlers: dict[tuple[int, Unit], Handler] = {}
        # Per-unit handler vectors: one dict probe + one list index on
        # the send fast path instead of a tuple-keyed dict lookup.
        self._unit_handlers: dict[Unit, list[Optional[Handler]]] = {
            unit: [None] * machine.n_nodes for unit in Unit
        }
        # Earliest cycle at which each port can begin accepting a message.
        self._entry_free = [0] * machine.n_nodes
        self._exit_free = [0] * machine.n_nodes
        self.stats = NetworkStats(registry)
        self.events = events if events is not None else EventBus()
        # Legacy single-slot observer(msg, send_time, deliver_time) hook.
        self.observer: Callable[[Message, int, int], None] | None = None
        # Fault-injection plane; the machine installs its injector here.
        # None keeps the fault-free fast path (docs/robustness.md).
        self.faults = None
        # Hot-path caches: flit sizes per message type, timing constants,
        # the topology's distance rows, and the raw registry counters
        # (bypassing the NetworkStats property shims).  All are pure
        # derivations of frozen config / construction-time state.
        data_flits = machine.data_flits(timing)
        self._flits_by_type = {
            mtype: data_flits if mtype.carries_data else timing.header_flits
            for mtype in MessageType
        }
        self._local_access = timing.local_access
        self._flit_cycles = timing.flit_cycles
        self._hop_cycles = timing.hop_cycles
        self._dist = self.topology._dist
        stats = self.stats
        self._c_messages = stats._messages
        self._c_local = stats._local_messages
        self._c_flits = stats._flits
        self._c_latency = stats._total_latency
        self._latency_hist = stats._latency_hist
        self._type_counters: dict[MessageType, Any] = {}

    def register(self, node: int, unit: Unit, handler: Handler) -> None:
        """Install the delivery handler for ``unit`` at ``node``."""
        self._handlers[(node, unit)] = handler
        self._unit_handlers[unit][node] = handler

    def message_flits(self, msg: Message) -> int:
        """Size of ``msg`` in flits."""
        return self._flits_by_type[msg.mtype]

    def _observe(self, msg: Message, sent: int, delivered: int) -> None:
        """Feed the legacy observer and the event bus (no sim effects)."""
        if self.observer is not None:
            self.observer(msg, sent, delivered)
        bus = self.events
        if bus.active:
            fields = dict(
                mtype=msg.mtype.value,
                src=msg.src,
                dst=msg.dst,
                unit=msg.unit.value,
                block=msg.block,
                chain=msg.chain,
                requester=msg.requester,
                msg_id=msg.msg_id,
                has_txn=msg.txn is not None,
            )
            bus.emit("msg.send", sent, node=msg.src, delivered=delivered,
                     **fields)
            bus.emit("msg.deliver", delivered, node=msg.dst, sent=sent,
                     **fields)

    def send(self, msg: Message) -> None:
        """Inject ``msg``; schedules its delivery at the destination.

        This is the hottest non-engine function in the machine; the
        timing model is identical to the long-hand form it replaces
        (entry-port serialize, wormhole transit, exit-port drain), with
        every constant and counter pre-resolved at construction.
        """
        dst = msg.dst
        try:
            handler = self._unit_handlers[msg.unit][dst]
        except (KeyError, IndexError):
            handler = None
        if handler is None:
            raise SimulationError(
                f"no handler registered for node {dst} unit {msg.unit}"
            )
        mtype = msg.mtype
        flits = self._flits_by_type[mtype]
        sim = self.sim
        now = sim._now
        src = msg.src

        if src == dst:
            # Node-local: cache <-> local memory over the node bus.
            done = now + self._local_access
            self._c_local.value += 1
        else:
            flit_cycles = self._flit_cycles
            serialize = flits * flit_cycles
            # Entry-port queuing at the source.
            entry_free = self._entry_free
            inject = entry_free[src]
            if inject < now:
                inject = now
            entry_free[src] = inject + serialize
            # Wormhole transit: head flit pays the hops, tail streams.
            tail_arrival = (inject + self._dist[src][dst] * self._hop_cycles
                            + (flits - 1) * flit_cycles)
            # Exit-port queuing at the destination.
            exit_free = self._exit_free
            ready = exit_free[dst]
            if ready < tail_arrival:
                ready = tail_arrival
            done = ready + serialize
            faults = self.faults
            if faults is not None:
                # Injected congestion: hold the exit port past this
                # message's drain.  Extending exit_free keeps the port
                # FIFO, so no same-destination reorder is possible.
                done += faults.net_delay(dst)
            exit_free[dst] = done
            latency = done - now
            self._c_messages.value += 1
            self._c_flits.value += flits
            self._c_latency.value += latency
            self._latency_hist.observe(latency)
        type_counter = self._type_counters.get(mtype)
        if type_counter is None:
            type_counter = self._type_counters[mtype] = (
                self.stats.type_counter(mtype.value)
            )
        type_counter.value += 1

        txn = msg.txn
        if txn is not None:
            breakdown = getattr(txn, "breakdown", None)
            if breakdown is not None:
                breakdown.credit("network", done)
        if self.observer is not None or self.events.active:
            self._observe(msg, now, done)
        sim.schedule(done - now, handler, msg)
        if (self.faults is not None and src != dst
                and mtype is MessageType.DROP
                and self.faults.net_dup(src)):
            # Duplicate delivery of the idempotent drop notice: a fresh
            # message one serialize slot behind the original, so it can
            # never overtake a later request from the same source.
            self.send(Message.acquire(
                mtype, src, dst, msg.unit, msg.block,
                chain=msg.chain, requester=msg.requester,
            ))
