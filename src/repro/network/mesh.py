"""Wormhole-routed mesh with entry/exit port contention.

Latency model (matching the paper's description of its back end):

* Each node has one network-entry port and one network-exit port, each able
  to accept one flit per ``flit_cycles`` cycles.  Messages queue FIFO at
  these ports; this is the only place network contention is modeled
  ("contention at the entry and exit of the network, though not at internal
  nodes").
* Once injected, a message pipelines through the mesh wormhole-style: the
  head flit pays ``hop_cycles`` per hop and the remaining flits stream
  behind it, so transit time is ``hops * hop_cycles + (flits - 1) *
  flit_cycles``.
* Node-local messages (``src == dst``) bypass the network entirely and pay
  a small fixed bus latency.

Delivery invokes a handler registered per (node, unit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..config import SimConfig
from ..errors import SimulationError
from ..sim.engine import Simulator
from .message import Message, Unit
from .topology import Mesh2D

__all__ = ["WormholeMesh", "NetworkStats"]

Handler = Callable[[Message], None]


@dataclass
class NetworkStats:
    """Aggregate network counters."""

    messages: int = 0
    local_messages: int = 0
    flits: int = 0
    total_latency: int = 0
    by_type: dict[str, int] = field(default_factory=dict)

    def record(self, msg: Message, flits: int, latency: int, local: bool) -> None:
        """Account one delivered message."""
        if local:
            self.local_messages += 1
        else:
            self.messages += 1
            self.flits += flits
            self.total_latency += latency
        key = msg.mtype.value
        self.by_type[key] = self.by_type.get(key, 0) + 1

    @property
    def mean_latency(self) -> float:
        """Mean network latency of non-local messages."""
        return self.total_latency / self.messages if self.messages else 0.0


class WormholeMesh:
    """The interconnect: routes :class:`Message` objects between nodes."""

    def __init__(self, sim: Simulator, config: SimConfig) -> None:
        self.sim = sim
        self.config = config
        machine = config.machine
        self.topology = Mesh2D(machine.n_nodes, machine.mesh_width)
        self._handlers: dict[tuple[int, Unit], Handler] = {}
        # Earliest cycle at which each port can begin accepting a message.
        self._entry_free = [0] * machine.n_nodes
        self._exit_free = [0] * machine.n_nodes
        self.stats = NetworkStats()
        # Optional observer(msg, send_time, deliver_time) for tracing.
        self.observer: Callable[[Message, int, int], None] | None = None

    def register(self, node: int, unit: Unit, handler: Handler) -> None:
        """Install the delivery handler for ``unit`` at ``node``."""
        self._handlers[(node, unit)] = handler

    def message_flits(self, msg: Message) -> int:
        """Size of ``msg`` in flits."""
        timing = self.config.timing
        if msg.mtype.carries_data:
            return self.config.machine.data_flits(timing)
        return timing.header_flits

    def send(self, msg: Message) -> None:
        """Inject ``msg``; schedules its delivery at the destination."""
        handler = self._handlers.get((msg.dst, msg.unit))
        if handler is None:
            raise SimulationError(
                f"no handler registered for node {msg.dst} unit {msg.unit}"
            )
        timing = self.config.timing
        flits = self.message_flits(msg)
        now = self.sim.now

        if msg.src == msg.dst:
            # Node-local: cache <-> local memory over the node bus.
            self.stats.record(msg, flits, timing.local_access, local=True)
            if self.observer is not None:
                self.observer(msg, now, now + timing.local_access)
            self.sim.schedule(timing.local_access, handler, msg)
            return

        serialize = flits * timing.flit_cycles
        # Entry-port queuing at the source.
        inject = max(now, self._entry_free[msg.src])
        self._entry_free[msg.src] = inject + serialize
        # Wormhole transit.
        hops = self.topology.distance(msg.src, msg.dst)
        head_arrival = inject + hops * timing.hop_cycles
        tail_arrival = head_arrival + (flits - 1) * timing.flit_cycles
        # Exit-port queuing at the destination.
        ready = max(tail_arrival, self._exit_free[msg.dst])
        self._exit_free[msg.dst] = ready + serialize
        done = ready + serialize

        self.stats.record(msg, flits, done - now, local=False)
        if self.observer is not None:
            self.observer(msg, now, done)
        self.sim.schedule(done - now, handler, msg)
