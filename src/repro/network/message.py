"""Coherence-protocol message definitions.

Every transaction in the machine is carried by :class:`Message` objects.
Each message records ``chain``, the number of serialized network messages
that preceded it (inclusive) within its transaction — the quantity the
paper's Table 1 reports.  When a component forwards or answers a message it
constructs the successor with ``chain = incoming.chain + 1``; messages sent
in parallel (e.g. an invalidation multicast) share the same chain value.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["MessageType", "Unit", "Message"]

_msg_ids = itertools.count()


class Unit(enum.Enum):
    """Destination unit within a node."""

    CACHE = "cache"
    HOME = "home"


class MessageType(enum.Enum):
    """Protocol message types.

    Requests travel requester→home; the home either answers directly or
    involves the current owner / sharers.  See DESIGN.md §5 for the
    transaction flows.
    """

    # Requester -> home.
    GETS = "GETS"  # read, want a shared copy
    GETX = "GETX"  # write/atomic, want an exclusive copy
    SYNC_REQ = "SYNC_REQ"  # memory-side operation (UNC/UPD/INVd/INVs/LLSC)
    SC_REQ = "SC_REQ"  # INV-policy store_conditional from a shared line

    # Home -> requester.
    DATA_S = "DATA_S"  # shared copy grant
    DATA_X = "DATA_X"  # exclusive copy grant
    SYNC_REPLY = "SYNC_REPLY"  # result of a memory-side operation
    SC_FAIL = "SC_FAIL"  # store_conditional failure

    # Home -> owner and back (ownership transfer through the home).
    FLUSH_REQ = "FLUSH_REQ"  # recall an exclusive line (invalidate+writeback)
    DOWNGRADE_REQ = "DOWNGRADE_REQ"  # demote exclusive to shared
    CAS_CMP = "CAS_CMP"  # INVd/INVs comparison delegated to the owner
    FLUSH_REPLY = "FLUSH_REPLY"  # owner -> home: data, line surrendered
    SHARE_WB = "SHARE_WB"  # owner -> home: data, line now shared
    FLUSH_NAK = "FLUSH_NAK"  # owner no longer has the line

    # Home -> sharers, sharers -> requester.
    INV = "INV"  # invalidate a shared copy
    INV_ACK = "INV_ACK"  # acknowledgment, sent to the *requester*
    UPDATE = "UPDATE"  # write-update of a shared copy
    UPDATE_ACK = "UPDATE_ACK"  # acknowledgment, sent to the *requester*

    # Owner/INVd/INVs fast paths (owner -> requester).
    CAS_FAIL = "CAS_FAIL"  # comparison failed at home/owner
    OWNER_NAK = "OWNER_NAK"  # owner raced a drop_copy; requester retries

    # Unsolicited cache -> home traffic.
    WB = "WB"  # writeback of a dirty exclusive line
    DROP = "DROP"  # notice that a shared copy was dropped/evicted

    @property
    def carries_data(self) -> bool:
        """True for messages that carry a full cache block."""
        return self in _DATA_MESSAGES


_DATA_MESSAGES = frozenset(
    {
        MessageType.DATA_S,
        MessageType.DATA_X,
        MessageType.SYNC_REPLY,
        MessageType.FLUSH_REPLY,
        MessageType.SHARE_WB,
        MessageType.UPDATE,
        MessageType.WB,
        MessageType.CAS_FAIL,
    }
)


@dataclass
class Message:
    """One protocol message in flight.

    Attributes:
        mtype: Protocol message type.
        src: Sending node id.
        dst: Receiving node id.
        unit: Which unit at ``dst`` handles the message.
        block: Block number the message concerns.
        txn: Opaque transaction descriptor owned by the requester; carried
            so acknowledgments can complete the right transaction.
        chain: Serialized-message count including this message.
        requester: Node id of the transaction's originator.
        payload: Message-specific fields (operation descriptors, data
            words, ack counts, ...).
    """

    mtype: MessageType
    src: int
    dst: int
    unit: Unit
    block: int
    txn: Any = None
    chain: int = 1
    requester: int = -1
    payload: dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def successor(
        self,
        mtype: MessageType,
        src: int,
        dst: int,
        unit: Unit,
        **payload: Any,
    ) -> "Message":
        """Build the next serialized message in this transaction."""
        return Message(
            mtype=mtype,
            src=src,
            dst=dst,
            unit=unit,
            block=self.block,
            txn=self.txn,
            chain=self.chain + 1,
            requester=self.requester,
            payload=payload,
        )

    def sibling(
        self,
        mtype: MessageType,
        src: int,
        dst: int,
        unit: Unit,
        **payload: Any,
    ) -> "Message":
        """Build a parallel message (same chain depth) in this transaction."""
        msg = self.successor(mtype, src, dst, unit, **payload)
        msg.chain = self.chain + 1
        return msg

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.mtype.value} {self.src}->{self.dst} "
            f"block={self.block} chain={self.chain})"
        )
