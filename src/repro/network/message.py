"""Coherence-protocol message definitions.

Every transaction in the machine is carried by :class:`Message` objects.
Each message records ``chain``, the number of serialized network messages
that preceded it (inclusive) within its transaction — the quantity the
paper's Table 1 reports.  When a component forwards or answers a message it
constructs the successor with ``chain = incoming.chain + 1``; messages sent
in parallel (e.g. an invalidation multicast) share the same chain value.

``Message`` is a ``__slots__`` class with a free-list pool
(:meth:`Message.acquire` / :meth:`Message.release`): the coherence layers
churn through short-lived messages at a rate where allocator pressure
shows up in profiles, so handlers that *know* a message holds no live
references return it to the pool (see ``docs/performance.md`` for the
safety argument).  ``msg_id`` always comes off the global counter, so
ids — and therefore traces — are identical whether or not the pool ever
hits.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

__all__ = ["MessageType", "Unit", "Message"]

_msg_ids = itertools.count()


class Unit(enum.Enum):
    """Destination unit within a node."""

    CACHE = "cache"
    HOME = "home"


class MessageType(enum.Enum):
    """Protocol message types.

    Requests travel requester→home; the home either answers directly or
    involves the current owner / sharers.  See DESIGN.md §5 for the
    transaction flows.
    """

    # Requester -> home.
    GETS = "GETS"  # read, want a shared copy
    GETX = "GETX"  # write/atomic, want an exclusive copy
    SYNC_REQ = "SYNC_REQ"  # memory-side operation (UNC/UPD/INVd/INVs/LLSC)
    SC_REQ = "SC_REQ"  # INV-policy store_conditional from a shared line

    # Home -> requester.
    DATA_S = "DATA_S"  # shared copy grant
    DATA_X = "DATA_X"  # exclusive copy grant
    SYNC_REPLY = "SYNC_REPLY"  # result of a memory-side operation
    SC_FAIL = "SC_FAIL"  # store_conditional failure

    # Home -> owner and back (ownership transfer through the home).
    FLUSH_REQ = "FLUSH_REQ"  # recall an exclusive line (invalidate+writeback)
    DOWNGRADE_REQ = "DOWNGRADE_REQ"  # demote exclusive to shared
    CAS_CMP = "CAS_CMP"  # INVd/INVs comparison delegated to the owner
    FLUSH_REPLY = "FLUSH_REPLY"  # owner -> home: data, line surrendered
    SHARE_WB = "SHARE_WB"  # owner -> home: data, line now shared
    FLUSH_NAK = "FLUSH_NAK"  # owner no longer has the line

    # Home -> sharers, sharers -> requester.
    INV = "INV"  # invalidate a shared copy
    INV_ACK = "INV_ACK"  # acknowledgment, sent to the *requester*
    UPDATE = "UPDATE"  # write-update of a shared copy
    UPDATE_ACK = "UPDATE_ACK"  # acknowledgment, sent to the *requester*

    # Owner/INVd/INVs fast paths (owner -> requester).
    CAS_FAIL = "CAS_FAIL"  # comparison failed at home/owner
    OWNER_NAK = "OWNER_NAK"  # owner raced a drop_copy; requester retries

    # Unsolicited cache -> home traffic.
    WB = "WB"  # writeback of a dirty exclusive line
    DROP = "DROP"  # notice that a shared copy was dropped/evicted

    @property
    def carries_data(self) -> bool:
        """True for messages that carry a full cache block."""
        return self in _DATA_MESSAGES


_DATA_MESSAGES = frozenset(
    {
        MessageType.DATA_S,
        MessageType.DATA_X,
        MessageType.SYNC_REPLY,
        MessageType.FLUSH_REPLY,
        MessageType.SHARE_WB,
        MessageType.UPDATE,
        MessageType.WB,
        MessageType.CAS_FAIL,
    }
)


class Message:
    """One protocol message in flight.

    Attributes:
        mtype: Protocol message type.
        src: Sending node id.
        dst: Receiving node id.
        unit: Which unit at ``dst`` handles the message.
        block: Block number the message concerns.
        txn: Opaque transaction descriptor owned by the requester; carried
            so acknowledgments can complete the right transaction.
        chain: Serialized-message count including this message.
        requester: Node id of the transaction's originator.
        payload: Message-specific fields (operation descriptors, data
            words, ack counts, ...).
    """

    __slots__ = ("mtype", "src", "dst", "unit", "block", "txn", "chain",
                 "requester", "payload", "msg_id", "_pooled")

    #: Shared free list.  Bounded so a pathological burst cannot pin an
    #: unbounded amount of memory after the burst subsides.
    _pool: "list[Message]" = []
    _pool_max = 1024

    def __init__(
        self,
        mtype: MessageType,
        src: int,
        dst: int,
        unit: Unit,
        block: int,
        txn: Any = None,
        chain: int = 1,
        requester: int = -1,
        payload: Optional[dict[str, Any]] = None,
        msg_id: Optional[int] = None,
    ) -> None:
        self.mtype = mtype
        self.src = src
        self.dst = dst
        self.unit = unit
        self.block = block
        self.txn = txn
        self.chain = chain
        self.requester = requester
        self.payload = {} if payload is None else payload
        self.msg_id = next(_msg_ids) if msg_id is None else msg_id
        self._pooled = False

    # ------------------------------------------------------------------
    # Free-list pool.
    # ------------------------------------------------------------------

    @classmethod
    def acquire(
        cls,
        mtype: MessageType,
        src: int,
        dst: int,
        unit: Unit,
        block: int,
        txn: Any = None,
        chain: int = 1,
        requester: int = -1,
        payload: Optional[dict[str, Any]] = None,
    ) -> "Message":
        """Construct a message, reusing a pooled shell when one exists.

        Always draws a fresh ``msg_id``, so acquired messages are
        indistinguishable from directly constructed ones.
        """
        pool = cls._pool
        if pool:
            self = pool.pop()
            self.mtype = mtype
            self.src = src
            self.dst = dst
            self.unit = unit
            self.block = block
            self.txn = txn
            self.chain = chain
            self.requester = requester
            self.payload = {} if payload is None else payload
            self.msg_id = next(_msg_ids)
            self._pooled = False
            return self
        return cls(mtype, src, dst, unit, block, txn, chain, requester, payload)

    @classmethod
    def release(cls, msg: "Message") -> None:
        """Return ``msg`` to the free list (idempotent).

        The caller asserts that no component retains a reference — in
        this machine that is every message type that is consumed
        synchronously by its handler and never parked in ``txn.reply``,
        a directory entry, or an MSHR.  Reference-holding fields are
        cleared so pooled shells keep nothing alive.
        """
        if msg._pooled:
            return
        msg._pooled = True
        msg.txn = None
        msg.payload = {}
        pool = cls._pool
        if len(pool) < cls._pool_max:
            pool.append(msg)

    @classmethod
    def pool_size(cls) -> int:
        """Messages currently parked on the free list."""
        return len(cls._pool)

    @classmethod
    def pool_clear(cls) -> None:
        """Drop every pooled shell (test isolation hook)."""
        cls._pool.clear()

    # ------------------------------------------------------------------
    # Transaction chaining.
    # ------------------------------------------------------------------

    def successor(
        self,
        mtype: MessageType,
        src: int,
        dst: int,
        unit: Unit,
        **payload: Any,
    ) -> "Message":
        """Build the next serialized message in this transaction."""
        return Message.acquire(
            mtype, src, dst, unit, self.block,
            txn=self.txn, chain=self.chain + 1,
            requester=self.requester, payload=payload,
        )

    def sibling(
        self,
        mtype: MessageType,
        src: int,
        dst: int,
        unit: Unit,
        **payload: Any,
    ) -> "Message":
        """Build a parallel message (same chain depth) in this transaction."""
        msg = self.successor(mtype, src, dst, unit, **payload)
        msg.chain = self.chain + 1
        return msg

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.mtype.value} {self.src}->{self.dst} "
            f"block={self.block} chain={self.chain})"
        )
