"""Mesh region partitioning for intra-run sharding.

The sharded runner (:mod:`repro.harness.shardrun`) splits one machine
into contiguous node regions, one worker per region, synchronized with
conservative time windows.  The safe window width is the *lookahead*:
the minimum number of cycles any message needs to cross from one region
into another.  With wormhole X-Y routing the head flit pays
``hop_cycles`` per hop, so a message sent at cycle ``t`` cannot arrive
at a node ``d`` hops away before ``t + d * hop_cycles`` — the lookahead
is ``hop_cycles`` times the minimum inter-region Manhattan distance.

Regions are contiguous runs of node indices (row-major order), so on a
square mesh each region is a band of rows plus at most a partial row on
each side.  Any contiguous split is *correct* — correctness comes from
the lookahead computed for the actual node sets — contiguity just keeps
boundary traffic proportional to the cut, not the volume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimConfig
from ..errors import ConfigError
from .topology import Mesh2D, make_topology

__all__ = ["RegionPlan", "make_plan", "min_cross_distance"]


@dataclass(frozen=True)
class RegionPlan:
    """A partition of one machine's nodes into worker regions.

    Attributes:
        n_nodes: Total node count (regions cover ``range(n_nodes)``).
        regions: Tuple of node tuples, one per shard, disjoint, sorted.
        lookahead: Conservative window width in cycles: no message sent
            at cycle ``t`` from one region can arrive in another region
            before ``t + lookahead``.
    """

    n_nodes: int
    regions: tuple[tuple[int, ...], ...]
    lookahead: int

    @property
    def n_shards(self) -> int:
        """Number of regions."""
        return len(self.regions)

    def region_of(self, node: int) -> int:
        """Index of the region containing ``node``."""
        for i, nodes in enumerate(self.regions):
            if node in nodes:
                return i
        raise ConfigError(f"node {node} not in any region")

    def membership(self) -> list[int]:
        """``node -> region`` lookup list (O(1) per query)."""
        owner = [-1] * self.n_nodes
        for i, nodes in enumerate(self.regions):
            for node in nodes:
                owner[node] = i
        return owner

    def validate(self) -> None:
        """Check the regions are a disjoint cover; raise otherwise."""
        seen: set[int] = set()
        for nodes in self.regions:
            if not nodes:
                raise ConfigError("empty region in plan")
            if seen & set(nodes):
                raise ConfigError("overlapping regions in plan")
            seen.update(nodes)
        if seen != set(range(self.n_nodes)):
            raise ConfigError(
                f"regions cover {len(seen)} of {self.n_nodes} nodes"
            )
        if len(self.regions) > 1 and self.lookahead < 1:
            raise ConfigError("multi-region plan needs lookahead >= 1")


def min_cross_distance(
    n_nodes: int,
    width: int,
    membership: list[int],
    topology: Mesh2D | None = None,
) -> int:
    """Minimum routing distance between nodes of different regions.

    Returns 0 when every node shares one region (no cross traffic).
    Distances come from ``topology`` (default: a plain mesh of the given
    width) — a torus MUST pass its topology here, since wraparound
    links shorten cross-region paths and a Manhattan-based lookahead
    would be unsafely wide.  Early-exits at distance 1 — the floor for
    distinct grid positions — so the common contiguous-partition case
    costs one boundary scan.
    """
    if topology is None:
        topology = Mesh2D(n_nodes, width)
    best = 0
    pair = topology.pair_distance
    xs, ys = topology._x, topology._y
    for a in range(n_nodes):
        ra = membership[a]
        ax, ay = xs[a], ys[a]
        for b in range(a + 1, n_nodes):
            if membership[b] == ra:
                continue
            d = pair(ax, ay, xs[b], ys[b])
            if best == 0 or d < best:
                best = d
                if best == 1:
                    return 1
    return best


def make_plan(
    config: SimConfig,
    n_shards: int,
    cuts: tuple[int, ...] | None = None,
) -> RegionPlan:
    """Partition ``config``'s mesh into ``n_shards`` contiguous regions.

    By default the node range splits into near-equal contiguous chunks.
    ``cuts`` overrides the boundaries (ascending interior cut points in
    ``(0, n_nodes)``; used by the property tests to explore arbitrary
    contiguous partitions).  The lookahead is derived from the actual
    minimum inter-region hop distance and the configured per-hop
    latency, never assumed.
    """
    n_nodes = config.machine.n_nodes
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards > n_nodes:
        raise ConfigError(
            f"cannot split {n_nodes} nodes into {n_shards} regions"
        )
    if cuts is None:
        base, extra = divmod(n_nodes, n_shards)
        bounds = [0]
        for i in range(n_shards):
            bounds.append(bounds[-1] + base + (1 if i < extra else 0))
    else:
        if len(cuts) != n_shards - 1:
            raise ConfigError(
                f"{n_shards} regions need {n_shards - 1} cuts, "
                f"got {len(cuts)}"
            )
        bounds = [0, *cuts, n_nodes]
        if any(bounds[i] >= bounds[i + 1] for i in range(len(bounds) - 1)):
            raise ConfigError(f"cuts must ascend strictly: {cuts}")
    regions = tuple(
        tuple(range(bounds[i], bounds[i + 1])) for i in range(n_shards)
    )
    if n_shards == 1:
        lookahead = 0
    else:
        membership = [0] * n_nodes
        for i, nodes in enumerate(regions):
            for node in nodes:
                membership[node] = i
        topology = make_topology(config.machine)
        dist = min_cross_distance(
            n_nodes, config.machine.mesh_width, membership, topology
        )
        lookahead = dist * config.timing.hop_cycles
    plan = RegionPlan(n_nodes=n_nodes, regions=regions, lookahead=lookahead)
    plan.validate()
    return plan
