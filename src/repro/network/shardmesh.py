"""The region-aware wormhole mesh used by the sharded runner.

One :class:`ShardedWormholeMesh` serves one region's worker: sends whose
destination lies inside the region are delivered locally; sends that
cross the region boundary are packed into an **outbox** of primitive
fields (the pooled ``__slots__`` :class:`~repro.network.message.Message`
objects never cross a process boundary) and injected into the
destination region's mesh at the next window exchange.

Timing model vs. the serial mesh
--------------------------------

Entry-port serialization and wormhole transit are computed at the
source, exactly as in :class:`~repro.network.mesh.WormholeMesh`.  The
*exit port*, however, is arbitrated at **tail arrival time** instead of
at send time: all messages arriving at a node in the same cycle claim
the port in ``(send_time, src, per-src send seq)`` order, via a per-node
arrival buffer drained by a priority event (see
:meth:`repro.sim.engine.Simulator.schedule_priority`).  Send-time
allocation would order the port by global event execution order, which
no decomposed run can reproduce; arrival-time allocation is a function
of message timing alone, so it is **invariant under sharding** — the
same machine split into 1, 2, or 4 regions produces bit-identical
results.  It is also the physically faithful choice: a real exit port
cannot know about a message that has not arrived yet.

Consequences worth knowing:

* ``shards=1`` uses this mesh too — it is the "serial" reference the
  bit-identical guarantee is stated against.  A sharded run is *not*
  cycle-identical to the default (send-time-arbitrated) mesh; default
  runs and their committed baselines are untouched.
* ``net.messages``/``net.flits``/``net.by_type`` count at the source
  region, ``net.latency``/``net.total_latency`` at the destination
  region; per-region registries merge to exactly the single-region
  registry.
* ``msg.txn`` never crosses a boundary.  Receivers match replies through
  their MSHRs (by block), never through ``txn``, so stripping it is
  invisible to the protocol; it only feeds latency-breakdown credits,
  which the sharded mesh does not record.  The boundary tuple *does*
  carry a ``has_txn`` flag, and :meth:`ShardedWormholeMesh.inject`
  re-arms the reconstructed message with a sentinel foreign transaction:
  downstream components propagate and test ``txn`` only via
  ``txn is not None`` / ``getattr(txn, "breakdown", None)``, so the
  sentinel keeps transaction-ness observable (``mem.service`` events and
  the span log stay shard-invariant) without any protocol effect.
* When :attr:`ShardedWormholeMesh.span_log` is set (a list shared with
  :class:`~repro.obs.shardobs.ShardSpanCollector`), every transaction-
  carrying message appends one ``("msg", send, done, src, dst, mtype,
  requester)`` record at the point its delivery cycle is known — the
  exit port for routed messages, the send for node-local ones.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Optional

from ..config import SimConfig
from ..errors import SimulationError
from ..obs.events import EventBus
from ..obs.registry import MetricsRegistry
from ..sim.engine import Simulator
from .mesh import WormholeMesh
from .message import Message, MessageType, Unit

__all__ = ["ShardedWormholeMesh", "BoundaryMessage"]

#: One boundary-crossing message, as primitive picklable fields:
#: (tail_arrival, send_time, src, src_seq, dst, mtype_name, unit_name,
#:  block, chain, requester, payload, has_txn).
BoundaryMessage = tuple


class _ForeignTxn:
    """Stands in for a transaction object stripped at a region boundary.

    It deliberately has no attributes: every consumer reaches the real
    transaction only through ``getattr(txn, "breakdown", None)`` or
    propagates it verbatim, so the sentinel preserves ``txn is not
    None`` observability (and nothing else) across regions.
    """

    __slots__ = ()


_FOREIGN_TXN = _ForeignTxn()

# Arrival-buffer entries sort by (tail_arrival, send_time, src, src_seq)
# — a shard-invariant total order: (src, src_seq) is unique, so the
# tuple comparison never reaches the Message object in the fifth slot.


class ShardedWormholeMesh(WormholeMesh):
    """Wormhole mesh for one region of a sharded machine."""

    def __init__(
        self,
        sim: Simulator,
        config: SimConfig,
        region_nodes,
        registry: Optional[MetricsRegistry] = None,
        events: Optional[EventBus] = None,
    ) -> None:
        super().__init__(sim, config, registry=registry, events=events)
        n = config.machine.n_nodes
        self.region = frozenset(region_nodes)
        self._mine = [node in self.region for node in range(n)]
        # Per-source send counters over *port* (non-local) sends.  A
        # node's sends happen in its own region's deterministic order,
        # so (src, src_seq) is the same key in every decomposition.
        self._send_seq = [0] * n
        # Per-destination arrival buffers: heaps of
        # (tail_arrival, send_time, src, src_seq, Message).
        self._arrivals: list[list[tuple]] = [[] for _ in range(n)]
        self._outbox: list[BoundaryMessage] = []
        # Optional debug hook: when not None, every arbitrated arrival
        # appends (dst, tail_arrival, send_time, src, src_seq) here —
        # the property tests compare these streams across shard counts.
        self.arrival_log: Optional[list[tuple]] = None
        # Optional span hook: when not None, every transaction-carrying
        # message appends ("msg", send, done, src, dst, mtype,
        # requester) here once its delivery cycle is known (see
        # repro.obs.shardobs).  None costs one attribute check per
        # delivery, like the EventBus.active guard.
        self.span_log: Optional[list[tuple]] = None

    # ------------------------------------------------------------------
    # Sending.
    # ------------------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Inject ``msg``; deliver in-region or queue for the boundary."""
        sim = self.sim
        now = sim._now
        src = msg.src
        dst = msg.dst
        mtype = msg.mtype

        if src == dst:
            # Node-local messages never touch the ports and are always
            # region-internal: same path and cost as the serial mesh.
            done = now + self._local_access
            self._c_local.value += 1
            self._bump_type(mtype)
            if self.span_log is not None and msg.txn is not None:
                self.span_log.append(("msg", now, done, src, dst,
                                      mtype.value, msg.requester))
            handler = self._unit_handlers[msg.unit][dst]
            sim.schedule(done - now, handler, msg)
            return

        flits = self._flits_by_type[mtype]
        flit_cycles = self._flit_cycles
        serialize = flits * flit_cycles
        # Entry-port queuing at the source (source-region state).
        entry_free = self._entry_free
        inject = entry_free[src]
        if inject < now:
            inject = now
        entry_free[src] = inject + serialize
        tail_arrival = (inject + self._dist[src][dst] * self._hop_cycles
                        + (flits - 1) * flit_cycles)
        src_seq = self._send_seq[src]
        self._send_seq[src] = src_seq + 1
        # Source-side accounting; latency is known only at the exit port.
        self._c_messages.value += 1
        self._c_flits.value += flits
        self._bump_type(mtype)

        # Captured before the outbox branch may release the message.
        unit = msg.unit
        block = msg.block
        chain = msg.chain
        requester = msg.requester

        if self._mine[dst]:
            heappush(self._arrivals[dst],
                     (tail_arrival, now, src, src_seq, msg))
            sim.schedule_priority(tail_arrival - now, self._drain, dst)
        else:
            self._outbox.append((
                tail_arrival, now, src, src_seq, dst, mtype.name,
                unit.name, block, chain, requester,
                msg.payload, msg.txn is not None,
            ))
            msg.payload = None  # the outbox tuple owns it now
            Message.release(msg)

        if (self.faults is not None and mtype is MessageType.DROP
                and self.faults.net_dup(src)):
            # Same duplicate-drop fault as the serial mesh: drawn at the
            # source in the source's own send order, so the decision is
            # invariant under sharding even when dst is another region.
            self.send(Message.acquire(
                mtype, src, dst, unit, block,
                chain=chain, requester=requester,
            ))

    def _bump_type(self, mtype: MessageType) -> None:
        counter = self._type_counters.get(mtype)
        if counter is None:
            counter = self._type_counters[mtype] = (
                self.stats.type_counter(mtype.value)
            )
        counter.value += 1

    # ------------------------------------------------------------------
    # Exit-port arbitration (destination side).
    # ------------------------------------------------------------------

    def _drain(self, dst: int) -> None:
        """Arbitrate every arrival due at ``dst`` this cycle.

        One drain is scheduled per buffered arrival; the first at a
        given (node, cycle) claims the exit port for all of them in
        canonical key order, later ones find the buffer empty and
        no-op — so drains commute, as ``schedule_priority`` requires.
        """
        arrivals = self._arrivals[dst]
        now = self.sim._now
        exit_free = self._exit_free
        log = self.arrival_log
        span_log = self.span_log
        handlers = self._unit_handlers
        schedule_priority = self.sim.schedule_priority
        faults = self.faults
        while arrivals and arrivals[0][0] == now:
            tail_arrival, send_time, src, src_seq, msg = heappop(arrivals)
            serialize = self._flits_by_type[msg.mtype] * self._flit_cycles
            ready = exit_free[dst]
            if ready < tail_arrival:
                ready = tail_arrival
            done = ready + serialize
            if faults is not None:
                # Injected congestion, drawn per destination in
                # canonical arbitration order — the same sequence at
                # any shard count, and FIFO-preserving like the serial
                # mesh (exit_free extends past the delayed drain).
                done += faults.net_delay(dst)
            exit_free[dst] = done
            latency = done - send_time
            self._c_latency.value += latency
            self._latency_hist.observe(latency)
            if log is not None:
                log.append((dst, tail_arrival, send_time, src, src_seq))
            if span_log is not None and msg.txn is not None:
                span_log.append(("msg", send_time, done, src, dst,
                                 msg.mtype.value, msg.requester))
            schedule_priority(done - now, handlers[msg.unit][dst], msg)

    # ------------------------------------------------------------------
    # Window exchange.
    # ------------------------------------------------------------------

    def take_outbox(self) -> list[BoundaryMessage]:
        """Drain and return the boundary messages of the last window."""
        outbox = self._outbox
        self._outbox = []
        return outbox

    def inject(self, entries: list[BoundaryMessage]) -> None:
        """Accept boundary messages addressed to this region.

        Called between window runs, at a cycle no later than any
        entry's tail arrival (the conservative-window invariant).  A
        message that carried a transaction is re-armed with the
        sentinel foreign transaction; see the module docstring for why
        that is invisible to the protocol.
        """
        sim = self.sim
        now = sim._now
        for (tail_arrival, send_time, src, src_seq, dst, mtype_name,
             unit_name, block, chain, requester, payload,
             has_txn) in entries:
            if tail_arrival <= now:
                raise SimulationError(
                    f"boundary message {src}->{dst} arrives at "
                    f"{tail_arrival} but the region already ran to {now}; "
                    "the window was wider than the safe lookahead"
                )
            msg = Message.acquire(
                MessageType[mtype_name], src, dst, Unit[unit_name], block,
                txn=_FOREIGN_TXN if has_txn else None,
                chain=chain, requester=requester, payload=payload,
            )
            heappush(self._arrivals[dst],
                     (tail_arrival, send_time, src, src_seq, msg))
            sim.schedule_priority(tail_arrival - now, self._drain, dst)

    def in_flight(self) -> int:
        """Buffered arrivals not yet arbitrated (plus outbox entries)."""
        return sum(len(b) for b in self._arrivals) + len(self._outbox)


def pack_config_key(msg: Any) -> tuple:  # pragma: no cover - debug aid
    """Stable identity of a boundary tuple (for logging/tests)."""
    return tuple(msg[:5])
