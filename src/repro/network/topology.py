"""2-D grid topologies: mesh and torus, with O(1) distance arithmetic.

Nodes are numbered row-major on a ``width x height`` grid.  Distances
come from coordinate arithmetic — Manhattan for the mesh, wraparound
Manhattan for the torus — so no topology needs O(N^2) state.  The mesh
fast path (:mod:`repro.network.mesh` indexes ``topology._dist[src][dst]``
on every message) still gets a table: a dense precomputed one on small
machines, exactly as before, and lazily materialized per-source rows on
large ones, so a 1024-node machine costs one row per *sending* node
instead of 1M+ entries up front.
"""

from __future__ import annotations

from array import array

from ..config import MachineConfig, balanced_width
from ..errors import ConfigError

__all__ = ["Mesh2D", "Torus2D", "make_topology"]

# Keep the dense all-pairs table while it stays at or under 64k entries
# (256 nodes); beyond that, rows materialize lazily on first send.
_DENSE_LIMIT = 65536


class _LazyRows:
    """Per-source distance rows, computed on first use.

    Quacks like the dense ``list[list[int]]`` table for the only access
    pattern the mesh uses (``_dist[src][dst]``), but holds one compact
    ``array('i')`` row per source node that has actually sent a message.
    """

    __slots__ = ("_topology", "_rows")

    def __init__(self, topology: "Mesh2D") -> None:
        self._topology = topology
        self._rows: dict[int, array] = {}

    def __getitem__(self, src: int) -> array:
        row = self._rows.get(src)
        if row is None:
            row = self._topology._row(src)
            self._rows[src] = row
        return row

    def __len__(self) -> int:
        return self._topology.n_nodes


class Mesh2D:
    """A (near-)square 2-D mesh with deterministic X-Y routing.

    Nodes are numbered row-major: node ``i`` sits at
    ``(i % width, i // width)``.  With dimension-ordered (X-Y) routing the
    path length between two nodes is their Manhattan distance, which is all
    the latency model needs — the paper models contention only at the entry
    and exit of the network, not at internal switches.

    The default width is the most factor-balanced divisor of ``n_nodes``
    (:func:`repro.config.balanced_width`), so default grids have no dead
    positions; an explicit ``width`` may still describe a partial mesh
    whose last row is incomplete.
    """

    kind = "mesh"

    def __init__(self, n_nodes: int, width: int | None = None) -> None:
        if n_nodes < 1:
            raise ConfigError("mesh needs at least one node")
        if width is None:
            width = balanced_width(n_nodes)
        if width < 1:
            raise ConfigError("mesh width must be positive")
        self.n_nodes = n_nodes
        self.width = width
        self.height = -(-n_nodes // width)
        # Cached coordinates, one flat array per axis: O(N) state.
        self._x = array("i", (node % width for node in range(n_nodes)))
        self._y = array("i", (node // width for node in range(n_nodes)))
        # Distance rows for the mesh fast path (`_dist[src][dst]`):
        # dense for small machines (bit-identical to the historical
        # table), lazy per-source rows past _DENSE_LIMIT entries.
        if n_nodes * n_nodes <= _DENSE_LIMIT:
            self._dist: list[list[int]] | _LazyRows = [
                list(self._row(src)) for src in range(n_nodes)
            ]
        else:
            self._dist = _LazyRows(self)

    # -- distance arithmetic (O(1), no table) --------------------------

    def pair_distance(self, ax: int, ay: int, bx: int, by: int) -> int:
        """Hop count between two coordinate pairs."""
        return abs(ax - bx) + abs(ay - by)

    def _row(self, src: int) -> array:
        """All distances from ``src``, as one compact row."""
        ax, ay = self._x[src], self._y[src]
        pair = self.pair_distance
        x, y = self._x, self._y
        return array(
            "i", (pair(ax, ay, x[b], y[b]) for b in range(self.n_nodes))
        )

    def coords(self, node: int) -> tuple[int, int]:
        """Return the ``(x, y)`` position of ``node``."""
        self._check(node)
        return self._x[node], self._y[node]

    def distance(self, a: int, b: int) -> int:
        """Routing hop count between nodes ``a`` and ``b`` (O(1))."""
        self._check(a)
        self._check(b)
        return self.pair_distance(
            self._x[a], self._y[a], self._x[b], self._y[b]
        )

    # -- routing -------------------------------------------------------

    def route(self, a: int, b: int) -> list[int]:
        """A dimension-ordered route from ``a`` to ``b``, inclusive.

        X-then-Y by default; when the machine does not fill its last mesh
        row (``n_nodes < width * height``) and the X-first path would
        pass through a position with no node, the Y-then-X route is used
        instead.  Both have minimal (Manhattan) length.
        """
        for x_first in (True, False):
            path = self._dimension_ordered(a, b, x_first)
            if all(node < self.n_nodes for node in path):
                return path
        raise ConfigError(
            f"no dimension-ordered route {a} -> {b} on this partial mesh"
        )

    def _steps(self, start: int, goal: int, size: int) -> list[int]:
        """Per-axis coordinate sequence from ``start`` to ``goal``
        (exclusive of ``start``), one unit per hop."""
        step = 1 if goal > start else -1
        return list(range(start + step, goal + step, step)) if goal != start else []

    def _dimension_ordered(self, a: int, b: int, x_first: bool) -> list[int]:
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        path = [a]
        x, y = ax, ay
        axes = ("x", "y") if x_first else ("y", "x")
        for axis in axes:
            if axis == "x":
                for x in self._steps(ax, bx, self.width):
                    path.append(y * self.width + x)
            else:
                for y in self._steps(ay, by, self.height):
                    path.append(y * self.width + x)
        return path

    def average_distance(self) -> float:
        """Mean hop count over all ordered pairs of distinct nodes."""
        if self.n_nodes == 1:
            return 0.0
        x, y = self._x, self._y
        pair = self.pair_distance
        total = 0
        for a in range(self.n_nodes):
            ax, ay = x[a], y[a]
            for b in range(a + 1, self.n_nodes):
                total += pair(ax, ay, x[b], y[b])
        return 2 * total / (self.n_nodes * (self.n_nodes - 1))

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ConfigError(
                f"node {node} outside {self.kind} of {self.n_nodes}"
            )


class Torus2D(Mesh2D):
    """A 2-D torus: the mesh grid plus wraparound links on both axes.

    Wraparound halves worst-case distances (a 32x32 torus has diameter
    32 instead of 62), which matters at 1024 nodes.  Requires a full
    rectangular grid — wrap links on a ragged last row are ill-defined.
    Routing stays dimension-ordered; each axis walks whichever direction
    is shorter, breaking ties toward increasing coordinates.
    """

    kind = "torus"

    def __init__(self, n_nodes: int, width: int | None = None) -> None:
        if width is None:
            width = balanced_width(n_nodes)
        if width >= 1 and n_nodes % width:
            raise ConfigError(
                f"torus needs a full grid: {n_nodes} nodes do not fill "
                f"width {width}"
            )
        super().__init__(n_nodes, width)

    def pair_distance(self, ax: int, ay: int, bx: int, by: int) -> int:
        dx = abs(ax - bx)
        dy = abs(ay - by)
        return min(dx, self.width - dx) + min(dy, self.height - dy)

    def _steps(self, start: int, goal: int, size: int) -> list[int]:
        if start == goal:
            return []
        forward = (goal - start) % size
        backward = (start - goal) % size
        step = 1 if forward <= backward else -1
        hops = forward if step == 1 else backward
        return [(start + step * i) % size for i in range(1, hops + 1)]


def make_topology(machine: MachineConfig) -> Mesh2D:
    """Build the configured topology for one machine."""
    if machine.topology == "torus":
        return Torus2D(machine.n_nodes, machine.mesh_width)
    return Mesh2D(machine.n_nodes, machine.mesh_width)
