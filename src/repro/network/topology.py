"""2-D mesh topology: node coordinates and X-Y routing distances."""

from __future__ import annotations

from ..errors import ConfigError

__all__ = ["Mesh2D"]


class Mesh2D:
    """A (near-)square 2-D mesh with deterministic X-Y routing.

    Nodes are numbered row-major: node ``i`` sits at
    ``(i % width, i // width)``.  With dimension-ordered (X-Y) routing the
    path length between two nodes is their Manhattan distance, which is all
    the latency model needs — the paper models contention only at the entry
    and exit of the network, not at internal switches.
    """

    def __init__(self, n_nodes: int, width: int | None = None) -> None:
        if n_nodes < 1:
            raise ConfigError("mesh needs at least one node")
        if width is None:
            width = max(1, int(n_nodes**0.5))
        if width < 1:
            raise ConfigError("mesh width must be positive")
        self.n_nodes = n_nodes
        self.width = width
        self.height = -(-n_nodes // width)
        # Precomputed Manhattan distances, row per source node.  The
        # mesh indexes this directly on its per-message fast path;
        # `distance()` keeps the bounds-checked public face.
        xy = [(node % width, node // width) for node in range(n_nodes)]
        self._dist: list[list[int]] = [
            [abs(ax - bx) + abs(ay - by) for bx, by in xy] for ax, ay in xy
        ]

    def coords(self, node: int) -> tuple[int, int]:
        """Return the ``(x, y)`` position of ``node``."""
        self._check(node)
        return node % self.width, node // self.width

    def distance(self, a: int, b: int) -> int:
        """Manhattan (X-Y routing) hop count between nodes ``a`` and ``b``."""
        self._check(a)
        self._check(b)
        return self._dist[a][b]

    def route(self, a: int, b: int) -> list[int]:
        """A dimension-ordered route from ``a`` to ``b``, inclusive.

        X-then-Y by default; when the machine does not fill its last mesh
        row (``n_nodes < width * height``) and the X-first path would
        pass through a position with no node, the Y-then-X route is used
        instead.  Both have minimal (Manhattan) length.
        """
        for x_first in (True, False):
            path = self._dimension_ordered(a, b, x_first)
            if all(node < self.n_nodes for node in path):
                return path
        raise ConfigError(
            f"no dimension-ordered route {a} -> {b} on this partial mesh"
        )

    def _dimension_ordered(self, a: int, b: int, x_first: bool) -> list[int]:
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        path = [a]
        x, y = ax, ay

        def walk_x():
            nonlocal x
            step = 1 if bx > x else -1
            while x != bx:
                x += step
                path.append(y * self.width + x)

        def walk_y():
            nonlocal y
            step = 1 if by > y else -1
            while y != by:
                y += step
                path.append(y * self.width + x)

        if x_first:
            walk_x()
            walk_y()
        else:
            walk_y()
            walk_x()
        return path

    def average_distance(self) -> float:
        """Mean hop count over all ordered pairs of distinct nodes."""
        if self.n_nodes == 1:
            return 0.0
        total = sum(sum(row) for row in self._dist)  # diagonal is zero
        return total / (self.n_nodes * (self.n_nodes - 1))

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ConfigError(f"node {node} outside mesh of {self.n_nodes}")
