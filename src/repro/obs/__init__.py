"""repro.obs — the cross-cutting observability layer.

Three pillars (see ``docs/observability.md``):

* :mod:`repro.obs.registry` — the unified metrics registry every
  component registers its counters in (``machine.registry``);
* :mod:`repro.obs.events` / :mod:`repro.obs.exporters` — the structured
  event bus (``machine.events``) with text / JSONL / Chrome-trace
  exporters;
* :mod:`repro.obs.latency` — per-transaction cycle attribution
  (network / queue / memory / controller), aggregated per
  primitive × policy;
* :mod:`repro.obs.spans` / :mod:`repro.obs.critpath` /
  :mod:`repro.obs.hotspot` — causal span graphs per transaction,
  run-level critical-path blame, and per-cache-line contention scores;
* :mod:`repro.obs.profile` / :mod:`repro.obs.telemetry` — host-level
  self-observability: wall-clock attribution of the event-dispatch
  loop, and deterministic heartbeat streams with host-resource
  tracking.

:mod:`repro.obs.schema` defines the stable ``repro.run/1`` JSON envelope
all ``--json`` output uses.
"""

from .critpath import CritPathAggregator
from .events import EVENT_KINDS, Event, EventBus, EventRecorder
from .exporters import (
    export_events,
    render_timeline,
    to_chrome_trace,
    to_jsonl,
)
from .hotspot import BlockStats, HotspotTracker
from .latency import CATEGORIES, LatencyStats, LatencyTracker, TxnBreakdown
from .profile import ComponentProfiler, active_profiler, profiled
from .telemetry import (
    Heartbeat,
    TelemetryWriter,
    host_sample,
    maybe_attach,
    telemetry_line,
    telemetry_session,
)
from .schema import (
    SCHEMA,
    dump_run,
    make_run_payload,
    run_payload_to_jsonl,
    validate_run_payload,
)
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .spans import SPAN_KINDS, CritStep, Span, SpanBuilder, TxnSpanGraph

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "EventBus",
    "Event",
    "EventRecorder",
    "EVENT_KINDS",
    "render_timeline",
    "to_jsonl",
    "to_chrome_trace",
    "export_events",
    "TxnBreakdown",
    "LatencyTracker",
    "LatencyStats",
    "CATEGORIES",
    "SCHEMA",
    "make_run_payload",
    "validate_run_payload",
    "dump_run",
    "run_payload_to_jsonl",
    "Span",
    "CritStep",
    "TxnSpanGraph",
    "SpanBuilder",
    "SPAN_KINDS",
    "CritPathAggregator",
    "HotspotTracker",
    "BlockStats",
    "ComponentProfiler",
    "profiled",
    "active_profiler",
    "Heartbeat",
    "TelemetryWriter",
    "telemetry_session",
    "telemetry_line",
    "host_sample",
    "maybe_attach",
]
