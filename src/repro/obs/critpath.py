"""Run-level critical-path attribution.

:class:`CritPathAggregator` folds the per-transaction critical paths
produced by :class:`~repro.obs.spans.SpanBuilder` into a run-level
answer to "where did the cycles go?":

* **blame by hop kind** — message flight, memory-FIFO queuing, memory
  occupancy, directory-entry waits, controller occupancy;
* **blame by component** — which node's memory module, which mesh link,
  which directory actually carried the path;
* **composition per primitive × policy** — count, mean, p50/p95/max of
  end-to-end cycles, plus the kind blame restricted to that key;
* **worst transactions** — the N largest end-to-end latencies with their
  full critical paths, feeding the HTML report's waterfall panel.

Surfaced as ``repro critpath`` and folded into the ``--json`` envelope
under the ``critpath`` key (see :mod:`repro.obs.schema`).
"""

from __future__ import annotations

from typing import Any, Iterable

from .latency import _percentile
from .spans import SPAN_KINDS, TxnSpanGraph

__all__ = ["CritPathAggregator"]


class _KeyAgg:
    """Accumulated critical paths for one (op, policy) key."""

    __slots__ = ("count", "totals", "by_kind")

    def __init__(self) -> None:
        self.count = 0
        self.totals: list[int] = []
        self.by_kind: dict[str, int] = {}

    def note(self, graph: TxnSpanGraph) -> None:
        self.count += 1
        self.totals.append(graph.duration)
        for kind, cycles in graph.path_by_kind().items():
            self.by_kind[kind] = self.by_kind.get(kind, 0) + cycles

    def snapshot(self) -> dict[str, Any]:
        ordered = sorted(self.totals)
        return {
            "count": self.count,
            "mean": sum(self.totals) / self.count if self.count else 0.0,
            "p50": _percentile(ordered, 50),
            "p95": _percentile(ordered, 95),
            "max": ordered[-1] if ordered else 0,
            "by_kind": {k: self.by_kind[k] for k in SPAN_KINDS
                        if self.by_kind.get(k)},
        }


class CritPathAggregator:
    """Aggregate critical-path blame across a run's transactions.

    .. code-block:: python

        agg = CritPathAggregator.from_graphs(builder.completed)
        print(agg.render())
        payload["critpath"] = agg.snapshot()
    """

    def __init__(self, worst: int = 8) -> None:
        self.worst_limit = worst
        self.txns = 0
        self.cycles = 0
        self.by_kind: dict[str, int] = {}
        self.by_component: dict[str, int] = {}
        self._keys: dict[tuple[str, str], _KeyAgg] = {}
        self._worst: list[TxnSpanGraph] = []

    @classmethod
    def from_graphs(
        cls, graphs: Iterable[TxnSpanGraph], worst: int = 8,
        include_local: bool = False,
    ) -> "CritPathAggregator":
        """Build an aggregation over completed graphs.

        Local hits are excluded by default — they have no protocol
        critical path and would drown the remote signal.
        """
        agg = cls(worst=worst)
        for graph in graphs:
            if graph.local and not include_local:
                continue
            agg.note(graph)
        return agg

    def note(self, graph: TxnSpanGraph) -> None:
        """Fold one completed transaction in."""
        self.txns += 1
        self.cycles += graph.duration
        for kind, cycles in graph.path_by_kind().items():
            self.by_kind[kind] = self.by_kind.get(kind, 0) + cycles
        for component, cycles in graph.path_by_component().items():
            self.by_component[component] = (
                self.by_component.get(component, 0) + cycles
            )
        key = (graph.op, graph.policy or "-")
        bucket = self._keys.get(key)
        if bucket is None:
            bucket = self._keys[key] = _KeyAgg()
        bucket.note(graph)
        self._worst.append(graph)
        self._worst.sort(key=lambda g: -g.duration)
        del self._worst[self.worst_limit:]

    # -- queries --------------------------------------------------------

    def keys(self) -> list[tuple[str, str]]:
        """All (primitive, policy) keys seen, sorted."""
        return sorted(self._keys)

    def worst(self) -> list[TxnSpanGraph]:
        """The worst transactions, most expensive first."""
        return list(self._worst)

    def snapshot(self) -> dict[str, Any]:
        """JSON-able aggregation (the envelope's ``critpath`` value)."""
        return {
            "txns": self.txns,
            "cycles": self.cycles,
            "by_kind": {k: self.by_kind[k] for k in SPAN_KINDS
                        if self.by_kind.get(k)},
            "by_component": dict(sorted(self.by_component.items(),
                                        key=lambda kv: -kv[1])),
            "keys": {
                f"{op}/{policy}": bucket.snapshot()
                for (op, policy), bucket in sorted(self._keys.items())
            },
            "worst": [g.to_dict() for g in self._worst],
        }

    def render(self) -> str:
        """Readable report for ``repro critpath``."""
        lines = [f"critical path over {self.txns} remote transaction(s), "
                 f"{self.cycles} cycle(s)"]
        if not self.txns:
            lines.append("  (no remote transactions observed)")
            return "\n".join(lines)

        lines.append("")
        lines.append("blame by hop kind:")
        for kind in SPAN_KINDS:
            cycles = self.by_kind.get(kind, 0)
            if not cycles:
                continue
            pct = 100.0 * cycles / self.cycles if self.cycles else 0.0
            bar = "#" * int(round(pct / 2))
            lines.append(f"  {kind:8s} {cycles:8d} {pct:5.1f}% {bar}")

        lines.append("")
        lines.append("blame by component (top 10):")
        top = sorted(self.by_component.items(), key=lambda kv: -kv[1])[:10]
        for component, cycles in top:
            pct = 100.0 * cycles / self.cycles if self.cycles else 0.0
            lines.append(f"  {component:12s} {cycles:8d} {pct:5.1f}%")

        lines.append("")
        lines.append("per primitive/policy:  n  mean  p50  p95  max  "
                     "dominant")
        for (op, policy), bucket in sorted(self._keys.items()):
            snap = bucket.snapshot()
            dominant = max(snap["by_kind"], key=snap["by_kind"].get,
                           default="-") if snap["by_kind"] else "-"
            lines.append(
                f"  {op + '/' + policy:22s} {snap['count']:4d} "
                f"{snap['mean']:7.1f} {snap['p50']:5d} {snap['p95']:5d} "
                f"{snap['max']:5d}  {dominant}"
            )

        lines.append("")
        lines.append("worst transactions:")
        for graph in self._worst:
            lines.append(
                f"  txn {graph.txn_id} {graph.op}/{graph.policy or '-'} "
                f"node {graph.node} block {graph.block}: "
                f"{graph.duration} cycles"
            )
            for step in graph.critical_path():
                span = step.span
                gap = f" (+{step.gap} idle)" if step.gap else ""
                lines.append(
                    f"    {span.t0:7d}..{span.t1:<7d} {span.kind:8s} "
                    f"{span.component:12s} {step.cycles:5d}{gap} "
                    f"{span.detail}"
                )
        return "\n".join(lines)
