"""The structured event bus.

A :class:`EventBus` hangs off the machine (``machine.events``) and fans
simulation events out to any number of subscribers — the generalization
of the old single-slot ``mesh.observer`` hook.  Components emit:

==========================  ===========================================
kind                        meaning
==========================  ===========================================
``msg.send``                a protocol message was injected into the mesh
``msg.deliver``             ...and when it will arrive (same emission
                            instant; ``ts`` is the delivery cycle)
``cache.transition``        a cache line changed state
``dir.queue.enter``         a request queued on a busy directory entry
                            (``holder`` names the requester whose
                            transaction holds the entry busy)
``dir.queue.leave``         ...and was replayed when the entry freed
``mem.service``             a memory module serviced a request (``ts`` is
                            the service-end cycle; ``arrival``/``start``
                            bound the FIFO wait before service)
``res.grant``               an LL reservation was established
``res.revoke``              an LL reservation was killed (``by`` names
                            the requester whose transaction killed it,
                            when one did)
``atomic.start``            a processor operation entered the controller
``atomic.complete``         ...and completed (result delivered)
``sweep.start``             a parallel sweep began (total points, jobs)
``sweep.point``             one sweep point resolved (cached or run)
``sweep.done``              the sweep finished (hit/miss totals)
``run.progress``            a telemetry heartbeat: host throughput,
                            queue depth, RSS, GC counts (see
                            :mod:`repro.obs.telemetry`)
``shard.progress``          one conservative window completed in a
                            sharded run: global time bound, per-shard
                            event counts and events/s (see
                            :func:`repro.harness.shardrun.run_shard`)
``fault.inject``            one injected fault fired (site, node, and
                            site-specific fields; see
                            :mod:`repro.faults.plan`)
``shard.retry``             a sharded run's worker crashed or hung and
                            the whole (deterministic) run is being
                            retried (attempt number, reason)
==========================  ===========================================

The ``sweep.*`` kinds are emitted by
:class:`repro.harness.parallel.SweepExecutor` on its own bus (not a
machine's); their ``ts`` is the completion ordinal, not a cycle.
``run.progress`` is emitted by :class:`repro.obs.telemetry.Heartbeat`
every N *executed events* — deterministic cadence, host-dependent
measurements.  ``shard.progress`` is emitted by the shard coordinator
on a caller-supplied bus once per window — again a deterministic
cadence (and deterministic ``bound``/``events``) with host-dependent
events/s.  These two are the kinds whose data fields are not
reproducible across hosts.

Observability must not perturb the simulation: emission never schedules
simulator events or sends messages, and every emission site is guarded
by :attr:`EventBus.active` so a bus with no subscribers costs one
attribute check per site.  Subscribers must likewise never mutate
machine state.

:class:`EventRecorder` is the standard subscriber: it buffers events
(optionally filtered by kind/block) for the exporters in
:mod:`repro.obs.exporters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = ["Event", "EventBus", "EventRecorder", "EVENT_KINDS"]

EVENT_KINDS = (
    "msg.send",
    "msg.deliver",
    "cache.transition",
    "dir.queue.enter",
    "dir.queue.leave",
    "mem.service",
    "res.grant",
    "res.revoke",
    "atomic.start",
    "atomic.complete",
    "sweep.start",
    "sweep.point",
    "sweep.done",
    "run.progress",
    "shard.progress",
    "fault.inject",
    "shard.retry",
)


@dataclass(frozen=True)
class Event:
    """One structured simulation event.

    Attributes:
        kind: One of :data:`EVENT_KINDS`.
        ts: Simulation cycle the event is anchored to.
        node: Node the event happened at (-1 when machine-wide).
        data: Kind-specific fields (message type, block, states, ...).
    """

    kind: str
    ts: int
    node: int = -1
    data: dict[str, Any] = field(default_factory=dict)

    @property
    def block(self) -> Optional[int]:
        """The block the event concerns, if any."""
        return self.data.get("block")


Subscriber = Callable[[Event], None]


class EventBus:
    """Multi-subscriber dispatch of :class:`Event` objects."""

    def __init__(self) -> None:
        self._subs: dict[int, tuple[Optional[frozenset[str]], Subscriber]] = {}
        self._next_token = 0
        self.emitted = 0
        #: True when at least one subscriber is attached.  Emission
        #: sites guard on this so an unobserved machine pays only a
        #: plain attribute read — no :class:`Event` is ever constructed.
        #: Maintained by :meth:`subscribe`/:meth:`unsubscribe`; treat as
        #: read-only.
        self.active: bool = False

    def subscribe(
        self, fn: Subscriber, kinds: Optional[Iterable[str]] = None
    ) -> int:
        """Attach ``fn``; returns a token for :meth:`unsubscribe`.

        ``kinds`` restricts delivery to those event kinds (None = all).
        """
        token = self._next_token
        self._next_token += 1
        self._subs[token] = (
            frozenset(kinds) if kinds is not None else None,
            fn,
        )
        self.active = True
        return token

    def unsubscribe(self, token: int) -> None:
        """Detach one subscriber; other subscribers are unaffected."""
        self._subs.pop(token, None)
        self.active = bool(self._subs)

    def emit(self, kind: str, ts: int, node: int = -1, **data: Any) -> None:
        """Dispatch one event to every interested subscriber."""
        if not self._subs:
            return
        event = Event(kind=kind, ts=ts, node=node, data=data)
        self.emitted += 1
        for kinds, fn in list(self._subs.values()):
            if kinds is None or kind in kinds:
                fn(event)


class EventRecorder:
    """Buffers bus events for later querying and export.

    .. code-block:: python

        recorder = EventRecorder(machine.events, blocks={block})
        ...  # run programs
        print(render_timeline(recorder.events))
        recorder.detach()
    """

    def __init__(
        self,
        bus: EventBus,
        kinds: Optional[Iterable[str]] = None,
        blocks: Optional[Iterable[int]] = None,
        limit: int = 1_000_000,
    ) -> None:
        self.bus = bus
        self.blocks = set(blocks) if blocks is not None else None
        self.limit = limit
        self.events: list[Event] = []
        self.dropped = 0
        self._token: Optional[int] = bus.subscribe(self._on_event, kinds)

    def _on_event(self, event: Event) -> None:
        if self.blocks is not None and event.block not in self.blocks:
            return
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(event)

    def detach(self) -> None:
        """Stop recording (idempotent; other subscribers keep running)."""
        if self._token is not None:
            self.bus.unsubscribe(self._token)
            self._token = None

    def of_kind(self, *kinds: str) -> list[Event]:
        """Recorded events of the given kinds."""
        return [e for e in self.events if e.kind in kinds]

    def __len__(self) -> int:
        return len(self.events)
