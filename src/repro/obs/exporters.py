"""Exporters for recorded event traces.

Three output shapes for one list of :class:`~repro.obs.events.Event`:

* :func:`render_timeline` — the human-readable text timeline (what
  ``ProtocolTracer.render`` has always printed);
* :func:`to_jsonl` — one JSON object per event, for ad-hoc tooling
  (``jq``, pandas);
* :func:`to_chrome_trace` — the Chrome trace-event format: open
  ``chrome://tracing`` (or https://ui.perfetto.dev) and load the file to
  scrub through a transaction visually.  Each message renders as a send
  slice on its source node's track and a deliver slice on its
  destination node's track, bound by a *flow event* pair (``ph:"s"`` /
  ``ph:"f"`` sharing the message id) so the viewer draws an arrow from
  send to delivery; everything else renders as instant events.

See ``docs/observability.md`` for the schemas.
"""

from __future__ import annotations

import json
from typing import Iterable

from .events import Event

__all__ = ["render_timeline", "to_jsonl", "to_chrome_trace", "export_events"]


def _describe(event: Event) -> str:
    """Kind-specific one-line detail text."""
    d = event.data
    if event.kind in ("msg.send", "msg.deliver"):
        return (f"{d.get('mtype', '?'):12s} {d.get('src', -1):3d} -> "
                f"{d.get('dst', -1):3d} ({d.get('unit', '?'):5s}) "
                f"block={d.get('block')} chain={d.get('chain')} "
                f"req={d.get('requester')}")
    pairs = " ".join(f"{k}={v}" for k, v in sorted(d.items()))
    return pairs


def render_timeline(events: Iterable[Event], title: str = "") -> str:
    """A text timeline, one event per row, ordered as recorded."""
    events = list(events)
    lines = [title or f"event trace: {len(events)} events"]
    for e in events:
        lines.append(f"{e.ts:8d}  {e.kind:16s} node={e.node:3d}  {_describe(e)}")
    return "\n".join(lines)


def to_jsonl(events: Iterable[Event]) -> str:
    """One compact JSON object per line: kind, ts, node, plus data."""
    rows = []
    for e in events:
        row = {"kind": e.kind, "ts": e.ts, "node": e.node}
        row.update(e.data)
        rows.append(json.dumps(row, sort_keys=True))
    return "\n".join(rows)


def to_chrome_trace(events: Iterable[Event], pid: int = 1) -> str:
    """The events as a Chrome trace-event JSON document.

    * ``msg.send`` becomes a complete ("X") slice covering the flight on
      the source node's track, plus a flow-start (``ph:"s"``) keyed by
      the message id;
    * ``msg.deliver`` becomes a short complete slice on the destination
      node's track, plus the matching flow-finish (``ph:"f"``,
      ``bp:"e"``) — the trace viewer draws an arrow from the send slice
      to the deliver slice;
    * every other kind becomes an instant ("i") event on its node's
      track.

    ``pid`` labels the process; node index is the ``tid``.
    """
    trace_events: list[dict] = []
    for e in events:
        base = {
            "pid": pid,
            "tid": max(e.node, 0),
            "ts": e.ts,
            "cat": e.kind.split(".", 1)[0],
            "args": dict(e.data),
        }
        name = str(e.data.get("mtype", "msg"))
        msg_id = e.data.get("msg_id")
        if e.kind == "msg.send":
            delivered = e.data.get("delivered", e.ts)
            trace_events.append({
                **base,
                "name": name,
                "ph": "X",
                "dur": max(0, delivered - e.ts),
            })
            if msg_id is not None:
                trace_events.append({
                    "pid": pid, "tid": max(e.node, 0), "ts": e.ts,
                    "cat": "flow", "name": name, "ph": "s",
                    "id": msg_id,
                })
        elif e.kind == "msg.deliver":
            trace_events.append({
                **base,
                "name": f"{name} (deliver)",
                "ph": "X",
                "dur": 1,
            })
            if msg_id is not None:
                trace_events.append({
                    "pid": pid, "tid": max(e.node, 0), "ts": e.ts,
                    "cat": "flow", "name": name, "ph": "f", "bp": "e",
                    "id": msg_id,
                })
        else:
            trace_events.append({
                **base,
                "name": e.kind,
                "ph": "i",
                "s": "t",
            })
    return json.dumps(
        {"traceEvents": trace_events, "displayTimeUnit": "ms"},
        sort_keys=True,
    )


def export_events(events: Iterable[Event], fmt: str, title: str = "") -> str:
    """Dispatch on ``fmt`` in {"text", "jsonl", "chrome"}."""
    if fmt == "text":
        return render_timeline(events, title=title)
    if fmt == "jsonl":
        return to_jsonl(events)
    if fmt == "chrome":
        return to_chrome_trace(events)
    raise ValueError(f"unknown trace format {fmt!r}")
