"""Per-cache-line contention scoring.

:class:`HotspotTracker` subscribes to a machine's event bus and keeps,
for every block that sees protocol traffic:

* cycles spent waiting — in memory-module FIFOs (``mem.service``'s
  ``arrival``→``start`` gap) and parked on busy directory entries
  (``dir.queue.enter``→``leave``);
* invalidation/update multicasts (INV and UPDATE sends);
* failed atomics — SC_FAIL / CAS_FAIL / OWNER_NAK replies and LL
  reservations killed by *another* transaction's write;
* a cycle-windowed directory-queue-depth time series (max depth seen
  per window), for spotting convoys.

Blocks are ranked by a single *contention score*: the waiting cycles
plus fixed penalties per failure and per multicast (the penalties are
class attributes, tunable by tests).  Surfaced as
``repro hotspots --top N`` and folded into the ``--json`` envelope
under the ``hotspots`` key.

Like every bus subscriber, the tracker only listens — it never mutates
machine state, and detaching it restores the zero-cost unobserved path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .events import Event, EventBus

__all__ = ["BlockStats", "HotspotTracker"]

_FAIL_MTYPES = frozenset({"SC_FAIL", "CAS_FAIL", "OWNER_NAK"})
_MULTICAST_MTYPES = frozenset({"INV", "UPDATE"})


@dataclass
class BlockStats:
    """Contention counters for one cache line."""

    block: int
    queue_wait: int = 0
    dir_wait: int = 0
    dir_enters: int = 0
    max_depth: int = 0
    multicasts: int = 0
    failures: int = 0
    res_kills: int = 0
    messages: int = 0
    depth_windows: dict[int, int] = field(default_factory=dict)

    def score(self, fail_penalty: int, multicast_penalty: int) -> int:
        """The block's contention score (higher = hotter)."""
        return (self.queue_wait + self.dir_wait
                + fail_penalty * (self.failures + self.res_kills)
                + multicast_penalty * self.multicasts)

    def to_dict(self, window: int, fail_penalty: int,
                multicast_penalty: int) -> dict[str, Any]:
        """JSON-able summary, depth series expanded to [cycle, depth]."""
        return {
            "block": self.block,
            "score": self.score(fail_penalty, multicast_penalty),
            "queue_wait": self.queue_wait,
            "dir_wait": self.dir_wait,
            "dir_enters": self.dir_enters,
            "max_depth": self.max_depth,
            "multicasts": self.multicasts,
            "failures": self.failures,
            "res_kills": self.res_kills,
            "messages": self.messages,
            "depth_series": [
                [idx * window, depth]
                for idx, depth in sorted(self.depth_windows.items())
            ],
        }


class HotspotTracker:
    """Rank cache lines by contention, from bus events alone.

    .. code-block:: python

        tracker = HotspotTracker(machine.events)
        ...  # run programs
        print(tracker.render(top_n=5))
    """

    FAIL_PENALTY = 25
    MULTICAST_PENALTY = 5

    def __init__(self, bus: EventBus, window: int = 256) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.bus = bus
        self.window = window
        self.blocks: dict[int, BlockStats] = {}
        self._dirwaits: dict[tuple, int] = {}
        self._token: Optional[int] = bus.subscribe(
            self._on_event,
            kinds=("msg.send", "mem.service", "dir.queue.enter",
                   "dir.queue.leave", "res.revoke"),
        )

    def detach(self) -> None:
        """Stop tracking (idempotent)."""
        if self._token is not None:
            self.bus.unsubscribe(self._token)
            self._token = None

    # -- event plumbing -------------------------------------------------

    def _stats(self, block: int) -> BlockStats:
        stats = self.blocks.get(block)
        if stats is None:
            stats = self.blocks[block] = BlockStats(block)
        return stats

    def _on_event(self, event: Event) -> None:
        block = event.block
        if block is None:
            return
        kind = event.kind
        if kind == "msg.send":
            stats = self._stats(block)
            stats.messages += 1
            mtype = event.data.get("mtype")
            if mtype in _MULTICAST_MTYPES:
                stats.multicasts += 1
            elif mtype in _FAIL_MTYPES:
                stats.failures += 1
        elif kind == "mem.service":
            start = event.data.get("start")
            arrival = event.data.get("arrival")
            if start is not None and arrival is not None and start > arrival:
                self._stats(block).queue_wait += start - arrival
        elif kind == "dir.queue.enter":
            stats = self._stats(block)
            stats.dir_enters += 1
            depth = event.data.get("depth", 1)
            stats.max_depth = max(stats.max_depth, depth)
            idx = event.ts // self.window
            stats.depth_windows[idx] = max(stats.depth_windows.get(idx, 0),
                                           depth)
            key = (event.node, block, event.data.get("requester"))
            self._dirwaits[key] = event.ts
        elif kind == "dir.queue.leave":
            key = (event.node, block, event.data.get("requester"))
            entered = self._dirwaits.pop(key, None)
            if entered is not None:
                self._stats(block).dir_wait += event.ts - entered
        elif kind == "res.revoke":
            if event.data.get("by") is not None:
                self._stats(block).res_kills += 1

    # -- queries --------------------------------------------------------

    def top(self, n: int = 10) -> list[BlockStats]:
        """The ``n`` hottest blocks, descending score."""
        ranked = sorted(
            self.blocks.values(),
            key=lambda s: (-s.score(self.FAIL_PENALTY,
                                    self.MULTICAST_PENALTY), s.block),
        )
        return ranked[:n]

    def snapshot(self, top_n: int = 10) -> dict[str, Any]:
        """JSON-able aggregation (the envelope's ``hotspots`` value)."""
        return {
            "window": self.window,
            "blocks_seen": len(self.blocks),
            "top": [
                stats.to_dict(self.window, self.FAIL_PENALTY,
                              self.MULTICAST_PENALTY)
                for stats in self.top(top_n)
            ],
        }

    def render(self, top_n: int = 10) -> str:
        """Readable table for ``repro hotspots``."""
        lines = [f"hotspots: {len(self.blocks)} block(s) saw traffic; "
                 f"top {min(top_n, len(self.blocks))} by contention score"]
        if not self.blocks:
            lines.append("  (no protocol traffic observed)")
            return "\n".join(lines)
        lines.append("  block    score  queue_wait  dir_wait  enters  "
                     "maxdepth  multicast  failed  res_kills")
        for stats in self.top(top_n):
            score = stats.score(self.FAIL_PENALTY, self.MULTICAST_PENALTY)
            lines.append(
                f"  {stats.block:5d} {score:8d} {stats.queue_wait:11d} "
                f"{stats.dir_wait:9d} {stats.dir_enters:7d} "
                f"{stats.max_depth:9d} {stats.multicasts:10d} "
                f"{stats.failures:7d} {stats.res_kills:10d}"
            )
        return "\n".join(lines)
