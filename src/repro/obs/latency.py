"""Per-transaction latency breakdown.

Each requester transaction's end-to-end cycles are attributed to four
categories along its serialized path:

* ``network`` — flight time (including entry/exit-port queuing) of the
  transaction's messages;
* ``queue`` — waiting in a memory module's FIFO before service began;
* ``memory`` — occupancy of the memory module (directory + DRAM work);
* ``controller`` — requester-side controller occupancy on completion.

Attribution uses a cursor over simulation time: every contribution
credits only the span past the last accounted cycle, so overlapping
work (an invalidation multicast, acks racing the data reply) is never
double-counted and the categories **sum exactly** to the transaction's
end-to-end latency — the invariant the test suite asserts.  Idle gaps
not claimed by any component are folded into the next segment.

:class:`LatencyTracker` aggregates finished breakdowns per
``primitive × policy`` and reports p50/p95/max.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CATEGORIES", "TxnBreakdown", "LatencyStats", "LatencyTracker"]

CATEGORIES = ("network", "queue", "memory", "controller")


class TxnBreakdown:
    """Cycle attribution for one in-flight transaction."""

    __slots__ = ("start", "cursor", "parts")

    def __init__(self, start: int) -> None:
        self.start = start
        self.cursor = start
        self.parts: dict[str, int] = {}

    def credit(self, category: str, end: int) -> None:
        """Attribute cycles up to ``end`` to ``category``.

        Only the span beyond the current cursor is credited; calls whose
        interval is already covered (parallel messages) add nothing.
        """
        if end > self.cursor:
            self.parts[category] = self.parts.get(category, 0) + end - self.cursor
            self.cursor = end

    @property
    def total(self) -> int:
        """Cycles accounted so far (== cursor - start, by construction)."""
        return self.cursor - self.start


def _percentile(sorted_values: list[int], p: float) -> int:
    """Nearest-rank percentile of a pre-sorted list."""
    if not sorted_values:
        return 0
    rank = max(1, int(round(p / 100.0 * len(sorted_values))))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class LatencyStats:
    """Aggregated breakdowns for one (primitive, policy) key."""

    count: int = 0
    totals: list[int] = field(default_factory=list)
    by_category: dict[str, int] = field(default_factory=dict)

    def note(self, breakdown: TxnBreakdown) -> None:
        """Fold one finished transaction in."""
        self.count += 1
        self.totals.append(breakdown.total)
        for category, cycles in breakdown.parts.items():
            self.by_category[category] = (
                self.by_category.get(category, 0) + cycles
            )

    @property
    def mean(self) -> float:
        """Mean end-to-end cycles."""
        return sum(self.totals) / self.count if self.count else 0.0

    def percentiles(self) -> dict[str, int]:
        """p50/p95/max of end-to-end cycles."""
        ordered = sorted(self.totals)
        return {
            "p50": _percentile(ordered, 50),
            "p95": _percentile(ordered, 95),
            "max": ordered[-1] if ordered else 0,
        }

    def snapshot(self) -> dict:
        """JSON-able summary of this key."""
        return {
            "count": self.count,
            "mean": self.mean,
            **self.percentiles(),
            "by_category": {
                c: self.by_category.get(c, 0) for c in CATEGORIES
                if self.by_category.get(c, 0)
            },
        }


class LatencyTracker:
    """Breakdowns of every completed transaction, per primitive × policy."""

    def __init__(self) -> None:
        self._keys: dict[tuple[str, str], LatencyStats] = {}

    def note(self, kind: str, policy: str, breakdown: TxnBreakdown) -> None:
        """Record one completed transaction."""
        stats = self._keys.get((kind, policy))
        if stats is None:
            stats = self._keys[(kind, policy)] = LatencyStats()
        stats.note(breakdown)

    def get(self, kind: str, policy: str) -> LatencyStats | None:
        """The aggregate for one key, or None."""
        return self._keys.get((kind, policy))

    def keys(self) -> list[tuple[str, str]]:
        """All (primitive, policy) keys seen, sorted."""
        return sorted(self._keys)

    def snapshot(self) -> dict[str, dict]:
        """JSON-able map ``"kind/policy" -> summary``."""
        return {
            f"{kind}/{policy}": stats.snapshot()
            for (kind, policy), stats in sorted(self._keys.items())
        }

    def render(self) -> str:
        """A readable table of the breakdown (for ``repro stats``)."""
        lines = ["latency breakdown (cycles): primitive/policy  "
                 "n  mean  p50  p95  max  [network/queue/memory/controller]"]
        for (kind, policy), stats in sorted(self._keys.items()):
            pct = stats.percentiles()
            cats = "/".join(str(stats.by_category.get(c, 0)) for c in CATEGORIES)
            lines.append(
                f"{kind + '/' + policy:24s} {stats.count:5d} "
                f"{stats.mean:8.1f} {pct['p50']:5d} {pct['p95']:5d} "
                f"{pct['max']:5d}  [{cats}]"
            )
        return "\n".join(lines)
