"""Host-time self-profiling of the simulation kernel.

The span/critical-path layer explains where *simulated* cycles go;
this module explains where *host* (wall-clock) time goes while
producing them.  A :class:`ComponentProfiler` is fed by the engine's
observed dispatch loop (:meth:`repro.sim.engine.Simulator.run` switches
to it whenever a profiler is attached): every executed event is timed
with ``time.perf_counter_ns`` and attributed to a
``(component, handler)`` pair derived from the callback itself —
``CacheController._accept``, ``MemoryModule._finish``, ``Processor
._resume``, ... — via a handler table built lazily per distinct
function (no ``sys.setprofile``, no sampling).

Accounting is exhaustive by construction: the profiler also measures
the dispatch loop's own wall time, and everything not attributed to a
handler is the engine's ``dispatch`` share (queue scans, heap pops,
bookkeeping).  ``attributed_ns + dispatch_ns == total_ns`` exactly, so
self-time shares always reconcile with the measured total.

Attachment is by session so whole experiments can be profiled without
threading a profiler through every constructor: inside a
:func:`profiled` block, every :class:`~repro.sim.engine.Simulator`
(and therefore every machine an experiment builds) reports into the
session's profiler.

.. code-block:: python

    with profiled() as prof:
        run_table1()
    print(prof.render())
    print(prof.collapsed())      # flamegraph.pl-compatible

With no session active and no profiler attached the engine runs its
unmodified fast loop — the disabled mode costs one attribute check per
``run()`` call, gated (with the telemetry hook) at ≤2% wall overhead
by ``tests/obs/test_profile.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "ComponentProfiler",
    "handler_tag",
    "profiled",
    "active_profiler",
]


def handler_tag(fn: Callable) -> tuple[str, str]:
    """The ``(component, handler)`` attribution tag of a callback.

    Bound methods are tagged with their class (the component a callback
    belongs to); plain and nested functions fall back to their module's
    last segment.  This is a *naming* rule, not a registry: any callable
    the engine can schedule gets a stable tag.
    """
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        return type(owner).__name__, getattr(fn, "__name__", "?")
    qualname = (getattr(fn, "__qualname__", "")
                or getattr(fn, "__name__", "")
                or type(fn).__name__)
    module = getattr(fn, "__module__", "") or ""
    parts = qualname.split(".")
    name = parts[-1]
    if len(parts) >= 2 and parts[-2] != "<locals>":
        return parts[-2], name
    return module.rpartition(".")[2] or "module", name


class ComponentProfiler:
    """Aggregates per-``(component, handler)`` wall time and call counts.

    Fed by the engine's observed loop via :meth:`record`; one profiler
    may be shared by any number of simulators (an experiment that builds
    a machine per sweep point aggregates them all).  Not thread-safe —
    profiling is an in-process, serial activity by design.
    """

    def __init__(self) -> None:
        #: (component, handler) -> [calls, ns]
        self.kinds: dict[tuple[str, str], list[int]] = {}
        #: wall ns spent inside observed ``run()`` loops (incl. dispatch)
        self.total_ns: int = 0
        #: events executed under observation
        self.events: int = 0
        #: observed ``run()`` invocations
        self.runs: int = 0
        # Handler table: underlying function object -> tag.  Keyed on
        # ``__func__`` so rebound methods of one class share an entry.
        self._tags: dict[Any, tuple[str, str]] = {}

    # -- hot path (called once per executed event) ---------------------

    def record(self, fn: Callable, ns: int) -> None:
        """Attribute ``ns`` nanoseconds of handler self-time to ``fn``."""
        key = getattr(fn, "__func__", fn)
        tag = self._tags.get(key)
        if tag is None:
            tag = self._tags[key] = handler_tag(fn)
        cell = self.kinds.get(tag)
        if cell is None:
            cell = self.kinds[tag] = [0, 0]
        cell[0] += 1
        cell[1] += ns

    def finish_run(self, total_ns: int, events: int) -> None:
        """Close one observed ``run()``: fold in its loop wall time."""
        self.total_ns += total_ns
        self.events += events
        self.runs += 1

    # -- derived views --------------------------------------------------

    @property
    def attributed_ns(self) -> int:
        """Wall ns attributed to handlers (sum of per-kind self-time)."""
        return sum(cell[1] for cell in self.kinds.values())

    @property
    def dispatch_ns(self) -> int:
        """Engine-loop residual: scans, pops, bookkeeping between events."""
        return max(self.total_ns - self.attributed_ns, 0)

    def snapshot(self) -> dict[str, Any]:
        """The profile as a JSON-able dict (the envelope's ``profile``).

        ``kinds`` is keyed ``"Component.handler"`` and ordered by
        descending self-time; each entry carries ``calls``, ``ns``, and
        ``share`` of the total measured wall time.  ``dispatch_ns`` is
        the engine residual, so shares (plus the dispatch share) sum
        to 1 whenever anything ran.
        """
        total = self.total_ns
        kinds = {}
        ordered = sorted(self.kinds.items(), key=lambda kv: -kv[1][1])
        for (component, handler), (calls, ns) in ordered:
            kinds[f"{component}.{handler}"] = {
                "calls": calls,
                "ns": ns,
                "share": round(ns / total, 6) if total else 0.0,
            }
        return {
            "total_ns": total,
            "attributed_ns": self.attributed_ns,
            "dispatch_ns": self.dispatch_ns,
            "events": self.events,
            "runs": self.runs,
            "kinds": kinds,
        }

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        """Fold another profiler's :meth:`snapshot` into this one."""
        self.total_ns += snap.get("total_ns", 0)
        self.events += snap.get("events", 0)
        self.runs += snap.get("runs", 0)
        for key, entry in snap.get("kinds", {}).items():
            component, _, handler = key.rpartition(".")
            cell = self.kinds.setdefault((component, handler), [0, 0])
            cell[0] += entry.get("calls", 0)
            cell[1] += entry.get("ns", 0)

    def render(self, top_n: int = 0) -> str:
        """An aligned text table, hottest handler first."""
        total = self.total_ns
        rows = sorted(self.kinds.items(), key=lambda kv: -kv[1][1])
        if top_n:
            rows = rows[:top_n]
        lines = [
            f"host-time profile: {total / 1e6:.2f} ms over "
            f"{self.events:,} event(s), {self.runs} run(s)",
            f"{'component.handler':<40} {'calls':>10} {'ms':>10} "
            f"{'share':>7}",
        ]
        for (component, handler), (calls, ns) in rows:
            share = 100.0 * ns / total if total else 0.0
            lines.append(
                f"{component + '.' + handler:<40} {calls:>10,} "
                f"{ns / 1e6:>10.3f} {share:>6.1f}%"
            )
        dispatch = self.dispatch_ns
        share = 100.0 * dispatch / total if total else 0.0
        lines.append(
            f"{'engine.dispatch':<40} {self.events:>10,} "
            f"{dispatch / 1e6:>10.3f} {share:>6.1f}%"
        )
        return "\n".join(lines)

    def collapsed(self) -> str:
        """Collapsed-stack lines (``flamegraph.pl`` input, values in ns).

        Two frames per line — component, then handler — plus one
        ``engine;dispatch`` line for the loop residual::

            CacheController;_accept 1203456
            engine;dispatch 220311
        """
        lines = [
            f"{component};{handler} {ns}"
            for (component, handler), (_, ns) in sorted(
                self.kinds.items(), key=lambda kv: -kv[1][1]
            )
        ]
        lines.append(f"engine;dispatch {self.dispatch_ns}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Session attachment.
# ----------------------------------------------------------------------

_ACTIVE: Optional[ComponentProfiler] = None


def active_profiler() -> Optional[ComponentProfiler]:
    """The session profiler new simulators should report into, if any."""
    return _ACTIVE


@contextmanager
def profiled(
    profiler: Optional[ComponentProfiler] = None,
) -> Iterator[ComponentProfiler]:
    """Attach ``profiler`` (or a fresh one) to every simulator built
    inside the block.  Sessions nest; the previous one is restored on
    exit.  Worker processes do not inherit the session — profiled
    experiment runs are serial, in-process measurements by design (the
    CLI's ``--profile`` forces ``--jobs 1``).
    """
    global _ACTIVE
    prof = profiler if profiler is not None else ComponentProfiler()
    previous = _ACTIVE
    _ACTIVE = prof
    try:
        yield prof
    finally:
        _ACTIVE = previous
