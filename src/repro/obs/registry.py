"""The unified metrics registry.

Every counter in the machine lives here under a hierarchical dotted name
(``cache.3.hits``, ``mem.7.queue_wait``, ``net.flits``), so a whole
simulation's worth of counters can be enumerated, snapshotted, diffed,
and exported as JSON with a single call:

.. code-block:: python

    before = machine.registry.snapshot()
    machine.run()
    delta = MetricsRegistry.diff(before, machine.registry.snapshot())
    print(machine.registry.render())

Three metric types:

* :class:`Counter` — a monotonically adjusted integer (``inc``);
* :class:`Gauge` — a point-in-time value (``set``);
* :class:`Histogram` — log-bucketed (powers of two) distribution of
  non-negative integer samples, for latency/queue-wait distributions.

Component stats objects (``CacheStats``, ``MemoryStats``, ...) are thin
property shims over these metrics, so the historical attribute spelling
(``cache.stats.hits``) keeps working while the registry remains the
single source of truth.
"""

from __future__ import annotations

import json
from typing import Iterator, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Metric = Union["Counter", "Gauge", "Histogram"]


class Counter:
    """A named cumulative counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (may be negative for property-shim writes)."""
        self.value += amount

    def snapshot(self) -> int:
        """The current value, as a JSON-able scalar."""
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def snapshot(self) -> float:
        """The current value, as a JSON-able scalar."""
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A log-bucketed histogram of non-negative integer samples.

    Bucket ``0`` holds exactly the value 0; bucket ``b`` (``b >= 1``)
    holds values in ``[2**(b-1), 2**b - 1]``.  This gives a compact,
    schema-stable representation of latency distributions whose upper
    range is not known in advance.
    """

    __slots__ = ("name", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    @staticmethod
    def bucket_of(value: int) -> int:
        """Bucket index of ``value`` (0 maps to bucket 0)."""
        if value < 0:
            raise ValueError(f"histogram samples must be >= 0, got {value}")
        return value.bit_length()

    @staticmethod
    def bucket_bounds(bucket: int) -> tuple[int, int]:
        """Inclusive ``(lo, hi)`` value range of ``bucket``."""
        if bucket == 0:
            return (0, 0)
        return (1 << (bucket - 1), (1 << bucket) - 1)

    def observe(self, value: int) -> None:
        """Record one sample."""
        b = self.bucket_of(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of all samples."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Approximate ``p``-th percentile (upper bound of its bucket)."""
        if not self.count:
            return 0
        rank = max(1, int(round(p / 100.0 * self.count)))
        seen = 0
        for b in sorted(self.buckets):
            seen += self.buckets[b]
            if seen >= rank:
                hi = self.bucket_bounds(b)[1]
                return min(hi, self.max if self.max is not None else hi)
        return self.max or 0

    def snapshot(self) -> dict:
        """JSON-able summary: count/total/min/max plus bucket counts."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(b): n for b, n in sorted(self.buckets.items())},
        }

    def merge_summary(self, summary: dict) -> None:
        """Fold another histogram's :meth:`snapshot` into this one."""
        for bucket, n in summary.get("buckets", {}).items():
            b = int(bucket)
            self.buckets[b] = self.buckets.get(b, 0) + n
        self.count += summary.get("count", 0)
        self.total += summary.get("total", 0)
        for bound, pick in (("min", min), ("max", max)):
            other = summary.get(bound)
            if other is None:
                continue
            ours = getattr(self, bound)
            setattr(self, bound, other if ours is None else pick(ours, other))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """All metrics of one machine, keyed by hierarchical dotted name.

    ``counter``/``gauge``/``histogram`` create-or-return, so components
    may be constructed in any order and stats shims can share metrics.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    # ------------------------------------------------------------------
    # Creation and lookup.
    # ------------------------------------------------------------------

    def _make(self, name: str, cls: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._make(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._make(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._make(name, Histogram)  # type: ignore[return-value]

    def get(self, name: str) -> Metric | None:
        """The metric named ``name``, or None."""
        return self._metrics.get(name)

    def names(self, prefix: str = "") -> list[str]:
        """Sorted metric names, optionally filtered by dotted prefix."""
        if not prefix:
            return sorted(self._metrics)
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return sorted(
            n for n in self._metrics if n == prefix or n.startswith(dotted)
        )

    def __iter__(self) -> Iterator[Metric]:
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Snapshot / diff / export.
    # ------------------------------------------------------------------

    def snapshot(self, prefix: str = "") -> dict[str, object]:
        """A plain-data view of every metric (scalars and bucket dicts)."""
        return {
            name: self._metrics[name].snapshot() for name in self.names(prefix)
        }

    @staticmethod
    def diff(before: dict[str, object], after: dict[str, object]) -> dict[str, object]:
        """Per-metric change between two snapshots.

        Scalars subtract; histogram summaries subtract field-wise (their
        ``min``/``max`` are taken from ``after``).  Metrics absent from
        ``before`` diff against zero.
        """
        delta: dict[str, object] = {}
        for name, now in after.items():
            was = before.get(name)
            if isinstance(now, dict):
                was = was if isinstance(was, dict) else {}
                was_buckets = was.get("buckets", {})
                buckets = {
                    b: n - was_buckets.get(b, 0)
                    for b, n in now.get("buckets", {}).items()
                    if n != was_buckets.get(b, 0)
                }
                delta[name] = {
                    "count": now["count"] - was.get("count", 0),
                    "total": now["total"] - was.get("total", 0),
                    "min": now.get("min"),
                    "max": now.get("max"),
                    "buckets": buckets,
                }
            else:
                base = was if isinstance(was, (int, float)) else 0
                delta[name] = now - base
        return delta

    def merge_snapshot(self, snapshot: dict[str, object]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Used by the parallel sweep executor to aggregate per-worker
        machine registries into the parent.  Snapshots carry values, not
        metric types, so merging is typed by the receiving metric when
        one exists and inferred otherwise: dict values merge as
        histograms, integers accumulate as counters, and floats become
        gauges keeping the last value seen.
        """
        for name, value in snapshot.items():
            if isinstance(value, dict):
                self.histogram(name).merge_summary(value)
            else:
                existing = self._metrics.get(name)
                if isinstance(existing, Gauge) or (
                    existing is None and isinstance(value, float)
                ):
                    self.gauge(name).set(value)
                else:
                    self.counter(name).inc(value)

    def to_json(self, prefix: str = "", indent: int | None = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(prefix), indent=indent, sort_keys=True)

    def render(self, prefix: str = "") -> str:
        """A readable text listing of the registry (for ``repro stats``)."""
        lines = []
        for name in self.names(prefix):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                lines.append(
                    f"{name:40s} n={metric.count} mean={metric.mean:.1f} "
                    f"min={metric.min if metric.min is not None else '-'} "
                    f"max={metric.max if metric.max is not None else '-'}"
                )
            else:
                lines.append(f"{name:40s} {metric.value}")
        return "\n".join(lines)
