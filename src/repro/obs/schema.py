"""The stable machine-readable run schema.

Every ``--json`` emission — CLI subcommands, the benchmark suite, the
``stats`` subcommand — wraps its payload in one envelope so downstream
tooling (perf-trajectory dashboards, ``BENCH_*.json`` history) can parse
any run without knowing which experiment produced it:

.. code-block:: json

    {
      "schema": "repro.run/1",
      "experiment": "table1",
      "version": "1.0.0",
      "params": {"nodes": 64, "turns": 6},
      "results": { ... experiment-specific ... },
      "metrics": { ... optional registry snapshot ... },
      "latency": { ... optional breakdown summary ... },
      "critpath": { ... optional critical-path attribution ... },
      "hotspots": { ... optional per-block contention ranking ... },
      "perf": {"wall_seconds": 0.18, "events_per_second": 1200000.0},
      "profile": { ... optional host-time attribution ... },
      "shard": { ... optional sharded-run sync metrics ... },
      "faults": { ... optional chaos-verification verdicts ... }
    }

``results`` content per experiment is documented in
``docs/observability.md``; ``critpath`` is a
:meth:`~repro.obs.critpath.CritPathAggregator.snapshot`,
``hotspots`` a :meth:`~repro.obs.hotspot.HotspotTracker.snapshot`, and
``profile`` a :meth:`~repro.obs.profile.ComponentProfiler.snapshot`
(wall-clock attribution of the dispatch loop; host-dependent, so — like
``perf`` — it never appears under ``results``), and ``shard`` the
sharded-run sync-metrics section built by
:func:`repro.harness.shardrun.run_shard` (window counts, lookahead
utilization, per-shard busy/blocked wall, traffic matrix — also
host-dependent).  ``faults`` is the chaos-verification section built by
:func:`repro.faults.chaos.run_chaos` (fault plan, matrix shape, and one
verdict per point — fully deterministic, so chaos envelopes are
byte-reproducible).
The envelope is validated (no external dependency) by
:func:`validate_run_payload`; bump :data:`SCHEMA` if the envelope ever
changes shape (adding optional keys is backward-compatible).

For machine consumption as a stream (``repro stats --format jsonl``),
:func:`run_payload_to_jsonl` flattens the same envelope into one JSON
record per line, each tagged with a ``record`` discriminator.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping

__all__ = [
    "SCHEMA",
    "make_run_payload",
    "validate_run_payload",
    "dump_run",
    "run_payload_to_jsonl",
]

SCHEMA = "repro.run/1"

_OPTIONAL_SECTIONS = ("metrics", "latency", "critpath", "hotspots", "perf",
                      "profile", "shard", "faults")


def make_run_payload(
    experiment: str,
    params: Mapping[str, Any],
    results: Mapping[str, Any],
    metrics: Mapping[str, Any] | None = None,
    latency: Mapping[str, Any] | None = None,
    critpath: Mapping[str, Any] | None = None,
    hotspots: Mapping[str, Any] | None = None,
    perf: Mapping[str, Any] | None = None,
    profile: Mapping[str, Any] | None = None,
    shard: Mapping[str, Any] | None = None,
    faults: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble one schema-stable run document.

    ``perf`` (wall-clock sidecar: ``wall_seconds``,
    ``events_per_second``) and ``profile`` (per-handler host-time
    attribution) are deliberately separate from ``results`` so bit-exact
    baseline diffs (``tools/check_bench_regression.py``) never see
    host-dependent timings.
    """
    from .. import __version__

    payload: dict[str, Any] = {
        "schema": SCHEMA,
        "experiment": experiment,
        "version": __version__,
        "params": dict(params),
        "results": dict(results),
    }
    for key, value in (("metrics", metrics), ("latency", latency),
                       ("critpath", critpath), ("hotspots", hotspots),
                       ("perf", perf), ("profile", profile),
                       ("shard", shard), ("faults", faults)):
        if value is not None:
            payload[key] = dict(value)
    return payload


def validate_run_payload(
    payload: Any, experiment: str | None = None
) -> dict[str, Any]:
    """Check the envelope; return the payload or raise ``ValueError``.

    Accepts a dict or a JSON string.  Validates the required keys, their
    types, and (optionally) the experiment name; ``results`` internals
    stay experiment-specific by design.
    """
    if isinstance(payload, (str, bytes)):
        payload = json.loads(payload)
    if not isinstance(payload, dict):
        raise ValueError(f"run payload must be an object, got {type(payload)}")
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"unsupported schema {payload.get('schema')!r}, want {SCHEMA!r}"
        )
    for key, typ in (
        ("experiment", str),
        ("version", str),
        ("params", dict),
        ("results", dict),
    ):
        if not isinstance(payload.get(key), typ):
            raise ValueError(f"run payload field {key!r} missing or not {typ.__name__}")
    for key in _OPTIONAL_SECTIONS:
        if key in payload and not isinstance(payload[key], dict):
            raise ValueError(f"run payload field {key!r} must be an object")
    if experiment is not None and payload["experiment"] != experiment:
        raise ValueError(
            f"expected experiment {experiment!r}, got {payload['experiment']!r}"
        )
    return payload


def dump_run(payload: Mapping[str, Any], path) -> None:
    """Write a validated run document to ``path``."""
    document = validate_run_payload(dict(payload))
    pathlib.Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


def run_payload_to_jsonl(payload: Mapping[str, Any]) -> str:
    """Flatten one run envelope into line-delimited JSON records.

    The stream opens with a ``run`` header (schema, experiment, version,
    params), then one record per metric / latency key / critpath key /
    hotspot block, and closes with the experiment ``results``.  Each
    line is a self-describing object with a ``record`` discriminator, so
    consumers can ``grep``/``jq`` one record type without parsing the
    whole envelope:

    .. code-block:: text

        {"record": "run", "schema": "repro.run/1", ...}
        {"record": "metric", "name": "net.messages", "value": 42}
        {"record": "latency", "key": "faa/INV", "count": 10, ...}
        {"record": "critpath", ...}
        {"record": "hotspot", "block": 7, "score": 1200, ...}
        {"record": "results", "results": { ... }}
    """
    document = validate_run_payload(dict(payload))
    lines = [json.dumps(
        {"record": "run", "schema": document["schema"],
         "experiment": document["experiment"],
         "version": document["version"], "params": document["params"]},
        sort_keys=True,
    )]
    for name, value in sorted(document.get("metrics", {}).items()):
        lines.append(json.dumps(
            {"record": "metric", "name": name, "value": value},
            sort_keys=True,
        ))
    for key, summary in sorted(document.get("latency", {}).items()):
        row = {"record": "latency", "key": key}
        row.update(summary if isinstance(summary, dict)
                   else {"value": summary})
        lines.append(json.dumps(row, sort_keys=True))
    critpath = document.get("critpath")
    if critpath is not None:
        lines.append(json.dumps({"record": "critpath", **critpath},
                                sort_keys=True))
    perf = document.get("perf")
    if perf is not None:
        lines.append(json.dumps({"record": "perf", **perf},
                                sort_keys=True))
    profile = document.get("profile")
    if profile is not None:
        lines.append(json.dumps({"record": "profile", **profile},
                                sort_keys=True))
    shard = document.get("shard")
    if shard is not None:
        lines.append(json.dumps({"record": "shard", **shard},
                                sort_keys=True))
    faults = document.get("faults")
    if faults is not None:
        summary = {key: value for key, value in faults.items()
                   if key != "verdicts"}
        lines.append(json.dumps({"record": "faults", **summary},
                                sort_keys=True))
        for verdict in faults.get("verdicts", []):
            lines.append(json.dumps({"record": "chaos.verdict", **verdict},
                                    sort_keys=True))
    for block in document.get("hotspots", {}).get("top", []):
        row = {"record": "hotspot"}
        row.update(block if isinstance(block, dict) else {"value": block})
        lines.append(json.dumps(row, sort_keys=True))
    lines.append(json.dumps(
        {"record": "results", "results": document["results"]},
        sort_keys=True,
    ))
    return "\n".join(lines)
