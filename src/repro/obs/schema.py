"""The stable machine-readable run schema.

Every ``--json`` emission — CLI subcommands, the benchmark suite, the
``stats`` subcommand — wraps its payload in one envelope so downstream
tooling (perf-trajectory dashboards, ``BENCH_*.json`` history) can parse
any run without knowing which experiment produced it:

.. code-block:: json

    {
      "schema": "repro.run/1",
      "experiment": "table1",
      "version": "1.0.0",
      "params": {"nodes": 64, "turns": 6},
      "results": { ... experiment-specific ... },
      "metrics": { ... optional registry snapshot ... },
      "latency": { ... optional breakdown summary ... }
    }

``results`` content per experiment is documented in
``docs/observability.md``.  The envelope is validated (no external
dependency) by :func:`validate_run_payload`; bump :data:`SCHEMA` if the
envelope ever changes shape.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping

__all__ = ["SCHEMA", "make_run_payload", "validate_run_payload", "dump_run"]

SCHEMA = "repro.run/1"


def make_run_payload(
    experiment: str,
    params: Mapping[str, Any],
    results: Mapping[str, Any],
    metrics: Mapping[str, Any] | None = None,
    latency: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble one schema-stable run document."""
    from .. import __version__

    payload: dict[str, Any] = {
        "schema": SCHEMA,
        "experiment": experiment,
        "version": __version__,
        "params": dict(params),
        "results": dict(results),
    }
    if metrics is not None:
        payload["metrics"] = dict(metrics)
    if latency is not None:
        payload["latency"] = dict(latency)
    return payload


def validate_run_payload(
    payload: Any, experiment: str | None = None
) -> dict[str, Any]:
    """Check the envelope; return the payload or raise ``ValueError``.

    Accepts a dict or a JSON string.  Validates the required keys, their
    types, and (optionally) the experiment name; ``results`` internals
    stay experiment-specific by design.
    """
    if isinstance(payload, (str, bytes)):
        payload = json.loads(payload)
    if not isinstance(payload, dict):
        raise ValueError(f"run payload must be an object, got {type(payload)}")
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"unsupported schema {payload.get('schema')!r}, want {SCHEMA!r}"
        )
    for key, typ in (
        ("experiment", str),
        ("version", str),
        ("params", dict),
        ("results", dict),
    ):
        if not isinstance(payload.get(key), typ):
            raise ValueError(f"run payload field {key!r} missing or not {typ.__name__}")
    for key in ("metrics", "latency"):
        if key in payload and not isinstance(payload[key], dict):
            raise ValueError(f"run payload field {key!r} must be an object")
    if experiment is not None and payload["experiment"] != experiment:
        raise ValueError(
            f"expected experiment {experiment!r}, got {payload['experiment']!r}"
        )
    return payload


def dump_run(payload: Mapping[str, Any], path) -> None:
    """Write a validated run document to ``path``."""
    document = validate_run_payload(dict(payload))
    pathlib.Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
