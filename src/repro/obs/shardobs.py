"""Shard-aware observability: collection, stitching, sync metrics.

A sharded run (:mod:`repro.harness.shardrun`) executes on several
machines — one per mesh region, possibly in forked worker processes —
so none of the single-machine observers (:class:`~repro.obs.spans
.SpanBuilder`, :class:`~repro.obs.profile.ComponentProfiler`,
:class:`~repro.obs.telemetry.Heartbeat`) can see a whole transaction.
This module closes the gap in three pieces:

**Collection** (worker side).  :class:`ShardSpanCollector` subscribes to
one region's :class:`~repro.obs.events.EventBus` and buffers span-
relevant events as primitive picklable tuples; the region mesh's
``span_log`` hook contributes one tuple per transaction-carrying
message, recorded at the *destination* exit port where the delivery
cycle is known (cross-region messages included — the boundary tuples
carry a ``has_txn`` flag and are re-armed with a sentinel foreign
transaction on :meth:`~repro.network.shardmesh.ShardedWormholeMesh
.inject`).  :class:`BeatBuffer` likewise buffers telemetry heartbeats
for shipping at finish.

**Stitching** (coordinator side).  :func:`stitch_graphs` merges every
region's record lists into global :class:`~repro.obs.spans.TxnSpanGraph`
objects.  It is a *pure function of the record multiset*: records are
re-sorted into one canonical order (anchor cycle, then kind, then
field values), transactions get canonical ids by global start time, and
every record is assigned to the transaction whose ``[start, end]``
window covers its anchor at the node that caused it.  Because the
underlying simulation is bit-identical at every shard count, the record
multiset — and therefore the stitched graphs and their critical-path
blame — is too.  That is the invariant the CI determinism job diffs:
the stitched critical path of a 4-shard run equals the serial (1-shard)
run's cycle-for-cycle.

**Sync metrics** (coordinator side).  :func:`ShardObsOptions` is the
picklable flag set carried into workers; the coordinator itself builds
the ``shard`` envelope section (windows, lookahead utilization, busy /
blocked wall per shard, cross-region traffic matrix, queue depths) in
:func:`repro.harness.shardrun.run_shard` — see docs/observability.md.

Everything here is inert unless explicitly enabled: no subscription, no
``span_log`` hook, no heartbeat, and the engine never leaves its fast
dispatch loop.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Optional

from .critpath import CritPathAggregator
from .events import Event, EventBus
from .spans import TxnSpanGraph

__all__ = [
    "ShardObsOptions",
    "ShardSpanCollector",
    "BeatBuffer",
    "stitch_graphs",
    "stitched_critpath",
]

#: Event kinds a region collector buffers (the SpanBuilder set minus
#: ``msg.send``/``res.grant``: message spans come from the mesh's
#: ``span_log`` hook so cross-region flights are seen at the exit port,
#: and grants are instants that never carry latency).
_COLLECT_KINDS = (
    "atomic.start",
    "atomic.complete",
    "mem.service",
    "dir.queue.enter",
    "dir.queue.leave",
    "res.revoke",
)

_INF = float("inf")


@dataclass(frozen=True)
class ShardObsOptions:
    """What to observe inside each region worker.

    Frozen and primitive-only so it pickles across the ``process``
    backend's fork boundary unchanged.

    Attributes:
        spans: Collect span records for cross-shard stitching.
        profile: Attach a :class:`~repro.obs.profile.ComponentProfiler`
            to each worker's simulator (merged at the coordinator).
        telemetry_every: Heartbeat period in executed events per worker
            (0 disables; beats are buffered and shipped at finish).
    """

    spans: bool = False
    profile: bool = False
    telemetry_every: int = 0

    @property
    def enabled(self) -> bool:
        """True when any observation is requested."""
        return self.spans or self.profile or self.telemetry_every > 0


class BeatBuffer:
    """A telemetry writer that buffers records instead of streaming.

    Workers cannot stream JSONL to the coordinator's sink mid-window;
    they buffer :class:`~repro.obs.telemetry.Heartbeat` records here and
    ship the list with their finish payload.
    """

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []
        self.lines = 0

    def write(self, record: dict[str, Any]) -> None:
        self.records.append(record)
        self.lines += 1


class ShardSpanCollector:
    """Buffers one region's span-relevant events as picklable tuples.

    Unlike :class:`~repro.obs.spans.SpanBuilder` it does **no**
    transaction bookkeeping — that cannot be done per-region, because a
    message's requester usually lives in another region.  It only
    translates events into flat record tuples for :func:`stitch_graphs`;
    the mesh's ``span_log`` hook appends ``msg`` records to the same
    list.
    """

    def __init__(self, bus: EventBus) -> None:
        self.bus = bus
        self.records: list[tuple] = []
        self._token: Optional[int] = bus.subscribe(self._on_event,
                                                   kinds=_COLLECT_KINDS)

    def detach(self) -> None:
        """Unsubscribe (idempotent); the bus pays zero cost afterwards."""
        if self._token is not None:
            self.bus.unsubscribe(self._token)
            self._token = None

    def _on_event(self, event: Event) -> None:
        kind = event.kind
        data = event.data
        records = self.records
        if kind == "mem.service":
            if not data.get("has_txn") or data.get("requester") is None:
                return  # unsolicited WB/DROP; no transaction to pin
            records.append(("mem", data.get("arrival", event.ts),
                            data.get("start"), event.ts, event.node,
                            str(data.get("mtype", "?")),
                            data.get("requester")))
        elif kind == "atomic.start":
            records.append(("start", event.ts, event.node,
                            data.get("op", "?"), data.get("policy"),
                            data.get("block")))
        elif kind == "atomic.complete":
            records.append(("complete", event.ts, event.node,
                            data.get("op"), 1 if data.get("local") else 0))
        elif kind == "dir.queue.enter":
            records.append(("dir.enter", event.ts, event.node,
                            data.get("block"), data.get("requester"),
                            data.get("holder")))
        elif kind == "dir.queue.leave":
            records.append(("dir.leave", event.ts, event.node,
                            data.get("block"), data.get("requester"),
                            str(data.get("mtype", "?"))))
        elif kind == "res.revoke":
            by = data.get("by")
            if by is None:
                return  # self-inflicted; SpanBuilder skips these too
            records.append(("revoke", event.ts, event.node, by,
                            data.get("reason"), data.get("block")))


# ----------------------------------------------------------------------
# Stitching.
# ----------------------------------------------------------------------

# Canonical processing order for records sharing an anchor cycle.  Any
# fixed order works — it only has to be the same for every shard count.
_RANK = {"msg": 0, "mem": 1, "dirwait": 2, "revoke": 3}


def _key_int(value: Any) -> int:
    """None-safe sort component (None sorts first)."""
    return -1 if value is None else value


class _TxnWindows:
    """Per-node transaction windows with point-in-time lookup."""

    def __init__(self) -> None:
        # node -> sorted list of (start_ts, txn_index)
        self._starts: dict[int, list[tuple[int, int]]] = {}
        self._ends: list[float] = []

    def add(self, node: int, start: int, end: float) -> int:
        index = len(self._ends)
        self._starts.setdefault(node, []).append((start, index))
        self._ends.append(end)
        return index

    def open_at(self, node: Any, t: int) -> Optional[int]:
        """The txn index open at ``node`` when ``t`` happened, if any."""
        starts = self._starts.get(node)
        if not starts:
            return None
        i = bisect_right(starts, (t, len(self._ends))) - 1
        if i < 0:
            return None
        index = starts[i][1]
        if t > self._ends[index]:
            return None  # between transactions: an orphan record
        return index

    def next_after(self, node: Any, t: int) -> Optional[int]:
        """The first txn at ``node`` starting strictly after ``t``."""
        starts = self._starts.get(node)
        if not starts:
            return None
        i = bisect_right(starts, (t, len(self._ends)))
        return starts[i][1] if i < len(starts) else None


def stitch_graphs(
    record_lists: list[list[tuple]],
) -> tuple[list[TxnSpanGraph], dict[str, int]]:
    """Merge per-region span records into global transaction graphs.

    Returns ``(graphs, stats)`` where ``graphs`` holds one completed
    :class:`~repro.obs.spans.TxnSpanGraph` per finished transaction,
    ordered and numbered by global start time, and ``stats`` counts the
    raw material (records, transactions, orphans, abandoned starts).

    The output is a pure function of the *multiset* of records: how
    they were split across ``record_lists`` (i.e. across regions) and
    their order within each list are irrelevant.
    """
    starts: list[tuple] = []
    completes: dict[int, list[tuple]] = {}
    msgs: list[tuple] = []
    mems: list[tuple] = []
    enters: dict[tuple, list[tuple]] = {}
    leaves: dict[tuple, list[tuple]] = {}
    revokes: list[tuple] = []
    total = 0
    for records in record_lists:
        total += len(records)
        for rec in records:
            kind = rec[0]
            if kind == "msg":
                msgs.append(rec)
            elif kind == "mem":
                mems.append(rec)
            elif kind == "start":
                starts.append(rec)
            elif kind == "complete":
                completes.setdefault(rec[2], []).append(rec)
            elif kind == "dir.enter":
                enters.setdefault((rec[2], rec[3], rec[4]), []).append(rec)
            elif kind == "dir.leave":
                leaves.setdefault((rec[2], rec[3], rec[4]), []).append(rec)
            elif kind == "revoke":
                revokes.append(rec)

    orphans = 0
    abandoned = 0

    # 1. Pair starts with completes per node into transaction windows.
    #    A start with no complete before the node's next start was
    #    abandoned (SpanBuilder counts the same); it still absorbs the
    #    records emitted while it was the node's open transaction.
    txn_descs: list[tuple] = []  # (start, node, op, policy, block, crec)
    by_node: dict[int, list[tuple]] = {}
    for rec in sorted(starts, key=lambda r: (r[1], r[2])):
        by_node.setdefault(rec[2], []).append(rec)
    for node, node_starts in by_node.items():
        node_completes = sorted(completes.get(node, ()),
                                key=lambda r: r[1])
        j = 0
        for i, srec in enumerate(node_starts):
            nxt = node_starts[i + 1][1] if i + 1 < len(node_starts) else _INF
            while (j < len(node_completes)
                   and node_completes[j][1] <= srec[1]):
                j += 1  # a completion with no open start
                orphans += 1
            crec = None
            if j < len(node_completes) and node_completes[j][1] <= nxt:
                # Completions take >= 1 cycle, so one ending exactly at
                # the next start still belongs to *this* transaction.
                crec = node_completes[j]
                j += 1
            elif nxt is not _INF:
                abandoned += 1
            txn_descs.append((srec[1], node, srec[3], srec[4], srec[5],
                              crec))
        orphans += len(node_completes) - j

    # 2. Canonical transaction ids: global (start, node) order.
    txn_descs.sort(key=lambda d: (d[0], d[1]))
    windows = _TxnWindows()
    graphs: list[TxnSpanGraph] = []
    ends: list[Optional[tuple]] = []
    for txn_id, (start, node, op, policy, block, crec) in \
            enumerate(txn_descs):
        windows.add(node, start, crec[1] if crec is not None else _INF)
        graphs.append(TxnSpanGraph(txn_id=txn_id, node=node, op=op,
                                   policy=policy, block=block, start=start))
        ends.append(crec)

    # 3. Pair directory waits FIFO per (node, block, requester); an
    #    enter with no leave is a wait still parked at end of run.
    dirpairs: list[tuple] = []
    for key, key_enters in enters.items():
        key_leaves = sorted(leaves.get(key, ()), key=lambda r: r[1])
        key_enters = sorted(key_enters, key=lambda r: r[1])
        for erec, lrec in zip(key_enters, key_leaves):
            # (node, block, requester, enter_ts, leave_ts, mtype, holder)
            dirpairs.append((key[0], key[1], key[2], erec[1], lrec[1],
                             lrec[5], erec[5]))
        orphans += max(0, len(key_leaves) - len(key_enters))
    for key in leaves:
        if key not in enters:
            orphans += len(leaves[key])

    # 4. One canonical pass over all span-producing records.  The sort
    #    key starts with the record's anchor — the cycle the serial
    #    SpanBuilder would have processed it at — so span/parent order
    #    inside each graph matches event order up to same-cycle ties,
    #    which the rank + field tiebreak fixes deterministically.
    items: list[tuple] = []
    for rec in msgs:
        # ("msg", t0, t1, src, dst, mtype, requester): anchor = send.
        items.append((rec[1], _RANK["msg"],
                      (rec[3], rec[4], _key_int(rec[6]), rec[2], rec[5]),
                      rec))
    for rec in mems:
        # ("mem", arrival, start, end, node, mtype, requester):
        # anchor = arrival (the serial builder sees it at service call).
        items.append((rec[1], _RANK["mem"],
                      (rec[4], rec[6], _key_int(rec[2]), rec[3], rec[5]),
                      rec))
    for pair in dirpairs:
        items.append((pair[4], _RANK["dirwait"],
                      (pair[0], _key_int(pair[1]), _key_int(pair[2]),
                       pair[3], _key_int(pair[6])), pair))
    for rec in revokes:
        # ("revoke", ts, victim, by, reason, block)
        items.append((rec[1], _RANK["revoke"],
                      (rec[2], rec[3], str(rec[4]), _key_int(rec[5])),
                      rec))
    items.sort(key=lambda it: (it[0], it[1], it[2]))

    for _anchor, rank, _key, rec in items:
        if rank == 0:  # msg
            _kind, t0, t1, src, dst, mtype, requester = rec
            txn = windows.open_at(requester, t0)
            if txn is None:
                orphans += 1
                continue
            component = f"bus.{src}" if src == dst else f"link.{src}-{dst}"
            graphs[txn].add_span("msg", t0, t1, component, at=src,
                                 settles=dst, detail=mtype)
        elif rank == 1:  # mem
            _kind, arrival, svc_start, end, node, mtype, requester = rec
            txn = windows.open_at(requester, arrival)
            if txn is None:
                orphans += 1
                continue
            graph = graphs[txn]
            component = f"mem.{node}"
            if svc_start is not None and svc_start > arrival:
                graph.add_span("queue", arrival, svc_start, component,
                               at=node, settles=node, detail=mtype)
            graph.add_span("memory",
                           svc_start if svc_start is not None else arrival,
                           end, component, at=node, settles=node,
                           detail=mtype)
        elif rank == 2:  # dirwait
            node, block, requester, t0, t1, mtype, holder = rec
            txn = windows.open_at(requester, t1)
            holder_txn = (windows.open_at(holder, t0)
                          if holder is not None else None)
            if txn is None:
                orphans += 1
                continue
            graph = graphs[txn]
            graph.add_span("dirwait", t0, t1, f"dir.{node}", at=node,
                           settles=node, detail=mtype,
                           blocked_on=holder_txn)
            if holder_txn is not None:
                graph.blockers.append(
                    {"kind": "dirwait", "txn": holder_txn,
                     "cycles": t1 - t0, "block": block}
                )
        else:  # revoke
            _kind, ts, victim_node, by, reason, block = rec
            killer = windows.open_at(by, ts)
            note = {
                "kind": "res_kill",
                "txn": killer if killer is not None else None,
                "reason": reason,
                "block": block,
                "ts": ts,
            }
            victim = windows.open_at(victim_node, ts)
            if victim is None:
                # Reservation died between operations: blame the victim
                # node's next transaction, as SpanBuilder does.  Its
                # anchor precedes that transaction's own spans, so the
                # note lands first in the blockers list, same as the
                # serial pending-kill path.
                victim = windows.next_after(victim_node, ts)
            if victim is None:
                orphans += 1
                continue
            graphs[victim].blockers.append(note)

    # 5. Close completed graphs (ctrl span last, as the serial builder
    #    appends it at atomic.complete) and drop the still-open ones.
    completed: list[TxnSpanGraph] = []
    for graph, crec in zip(graphs, ends):
        if crec is None:
            continue
        graph.end = crec[1]
        graph.local = bool(crec[4])
        if crec[3]:
            graph.op = crec[3]
        last_input = max((s.t1 for s in graph.spans), default=graph.start)
        graph.add_span("ctrl", min(last_input, graph.end), graph.end,
                       f"ctrl.{graph.node}", at=graph.node,
                       detail=graph.op)
        completed.append(graph)

    stats = {
        "records": total,
        "txns": len(completed),
        "open": len(graphs) - len(completed) - abandoned,
        "abandoned": abandoned,
        "orphans": orphans,
    }
    return completed, stats


def stitched_critpath(
    record_lists: list[list[tuple]],
    worst: int = 8,
) -> tuple[dict[str, Any], list[TxnSpanGraph], dict[str, int]]:
    """Stitch and aggregate: the sharded run's critical-path blame.

    Returns ``(snapshot, graphs, stats)``; ``snapshot`` is the
    :class:`~repro.obs.critpath.CritPathAggregator` summary that lands
    in the envelope's top-level ``critpath`` section — byte-identical
    at every shard count, which the CI determinism job enforces.
    """
    graphs, stats = stitch_graphs(record_lists)
    aggregator = CritPathAggregator.from_graphs(graphs, worst=worst)
    return aggregator.snapshot(), graphs, stats
