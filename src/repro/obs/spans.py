"""Causal span graphs stitched from the event bus.

:class:`SpanBuilder` subscribes to a machine's
:class:`~repro.obs.events.EventBus` and assembles, for every processor
operation, a :class:`TxnSpanGraph`: a causal DAG of timed *spans* rooted
at the operation's ``atomic.start``.  Span kinds:

========== ==========================================================
kind        interval
========== ==========================================================
``root``    the instant the operation entered the controller
``msg``     a protocol message's flight, send to delivery (entry/exit
            port queuing included); component ``link.<src>-<dst>`` or
            ``bus.<node>`` for node-local hops
``queue``   waiting in a memory module's FIFO (component ``mem.<n>``)
``memory``  memory-module occupancy (directory + DRAM work)
``dirwait`` parked on a busy directory entry (component ``dir.<n>``);
            carries a *blocking edge* to the transaction that held the
            entry
``ctrl``    requester-side controller occupancy at completion
========== ==========================================================

Each span carries a ``parent`` link — the span whose completion at the
same location caused it — so every graph is a tree rooted at
``atomic.start`` plus cross-transaction blocking edges (directory-queue
waits and reservation kills name the transaction responsible).

**Critical path.**  ``TxnSpanGraph.critical_path()`` extracts the chain
of spans that advanced the transaction's completion frontier: spans are
scanned in end-time order and a span joins the path when it finishes
past every span seen before it, absorbing any unclaimed idle gap (the
same folding rule :class:`~repro.obs.latency.TxnBreakdown` uses).
Because the final controller span ends exactly at ``atomic.complete``,
the path's cycles sum to the transaction's end-to-end latency
**cycle-for-cycle** — the invariant the test suite asserts against
:class:`~repro.obs.latency.LatencyTracker`.

The builder never mutates machine state and, when constructed with
``enabled=False`` (or after :meth:`SpanBuilder.disable`), it is not
subscribed at all, so an un-observed machine keeps its zero-event
guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .events import Event, EventBus

__all__ = ["Span", "CritStep", "TxnSpanGraph", "SpanBuilder", "SPAN_KINDS"]

SPAN_KINDS = ("root", "msg", "queue", "memory", "dirwait", "ctrl")

_SPAN_EVENT_KINDS = (
    "atomic.start",
    "atomic.complete",
    "msg.send",
    "mem.service",
    "dir.queue.enter",
    "dir.queue.leave",
    "res.grant",
    "res.revoke",
)


@dataclass
class Span:
    """One timed interval in a transaction's causal graph.

    Attributes:
        index: Position in the graph's span list; parents always have a
            smaller index, which is what makes the graph trivially
            acyclic.
        kind: One of :data:`SPAN_KINDS`.
        t0: Cycle the span began.
        t1: Cycle the span ended (``>= t0``).
        component: The hardware resource occupied (``link.0-1``,
            ``bus.2``, ``mem.1``, ``dir.1``, ``ctrl.0``).
        parent: Index of the causally preceding span (-1 for the root).
        detail: Message type or other kind-specific annotation.
        blocked_on: Transaction id this span waited for (dirwait only).
    """

    index: int
    kind: str
    t0: int
    t1: int
    component: str
    parent: int
    detail: str = ""
    blocked_on: Optional[int] = None

    @property
    def cycles(self) -> int:
        """The span's own duration."""
        return self.t1 - self.t0

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form."""
        out: dict[str, Any] = {
            "index": self.index,
            "kind": self.kind,
            "t0": self.t0,
            "t1": self.t1,
            "component": self.component,
            "parent": self.parent,
        }
        if self.detail:
            out["detail"] = self.detail
        if self.blocked_on is not None:
            out["blocked_on"] = self.blocked_on
        return out


@dataclass(frozen=True)
class CritStep:
    """One hop on a transaction's critical path.

    ``cycles`` is the span's contribution to end-to-end latency: its
    advance past the previous frontier, including any idle gap folded in
    (``gap`` cycles of it were unclaimed by any span).
    """

    span: Span
    cycles: int
    gap: int


@dataclass
class TxnSpanGraph:
    """The causal DAG of one processor operation."""

    txn_id: int
    node: int
    op: str
    policy: Optional[str]
    block: Optional[int]
    start: int
    end: int = -1
    local: bool = False
    spans: list[Span] = field(default_factory=list)
    blockers: list[dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.spans:
            self.spans.append(Span(0, "root", self.start, self.start,
                                   f"ctrl.{self.node}", -1, detail=self.op))
        self._last_at: dict[int, int] = {self.node: 0}
        self._critical: Optional[list[CritStep]] = None

    # -- construction (used by SpanBuilder) -----------------------------

    def add_span(
        self,
        kind: str,
        t0: int,
        t1: int,
        component: str,
        at: int,
        settles: Optional[int] = None,
        detail: str = "",
        blocked_on: Optional[int] = None,
    ) -> Span:
        """Append a span whose cause is the last span located at ``at``.

        ``settles`` is the node the span's effect lands on (where later
        spans may be caused by it); None leaves the location map alone.
        """
        span = Span(len(self.spans), kind, t0, t1, component,
                    self._last_at.get(at, 0), detail=detail,
                    blocked_on=blocked_on)
        self.spans.append(span)
        if settles is not None:
            self._last_at[settles] = span.index
        self._critical = None
        return span

    # -- queries --------------------------------------------------------

    @property
    def quiesce(self) -> int:
        """Cycle the transaction's protocol activity fully settled.

        Usually ``end`` (the result-delivery cycle), but a transaction
        can leave trailing traffic in flight — e.g. a delegated INVd CAS
        failure answers the requester directly while its FLUSH_NAK is
        still travelling home — and that flight is part of the
        transaction's latency as :class:`~repro.obs.latency.TxnBreakdown`
        accounts it.
        """
        return max(self.end,
                   max((s.t1 for s in self.spans), default=self.start))

    @property
    def duration(self) -> int:
        """End-to-end cycles, matching ``LatencyTracker`` exactly.

        Runs start to quiescence — the quantity the latency breakdown
        records (0 while still open).  :attr:`response_cycles` is the
        (usually equal) start-to-result-delivery time.
        """
        return max(0, self.quiesce - self.start)

    @property
    def response_cycles(self) -> int:
        """Cycles until the result reached the processor."""
        return max(0, self.end - self.start)

    def critical_path(self) -> list[CritStep]:
        """The serialized chain of spans behind the end-to-end latency.

        Spans are scanned in end-time order; one joins the path when it
        ends past the current frontier, contributing ``t1 - frontier``
        cycles (idle gaps fold into the span that ends them).  The
        contributions sum exactly to :attr:`duration`.
        """
        if self._critical is None:
            steps: list[CritStep] = []
            cursor = self.start
            for span in sorted(self.spans, key=lambda s: (s.t1, s.index)):
                if span.t1 > cursor:
                    steps.append(CritStep(span, span.t1 - cursor,
                                          max(0, span.t0 - cursor)))
                    cursor = span.t1
            self._critical = steps
        return self._critical

    def critical_cycles(self) -> int:
        """Total cycles along the critical path (== duration)."""
        return sum(step.cycles for step in self.critical_path())

    def path_by_kind(self) -> dict[str, int]:
        """Critical-path cycles per span kind."""
        out: dict[str, int] = {}
        for step in self.critical_path():
            out[step.span.kind] = out.get(step.span.kind, 0) + step.cycles
        return out

    def path_by_component(self) -> dict[str, int]:
        """Critical-path cycles per hardware component."""
        out: dict[str, int] = {}
        for step in self.critical_path():
            out[step.span.component] = (
                out.get(step.span.component, 0) + step.cycles
            )
        return out

    def check(self) -> list[str]:
        """Structural violations (empty list == graph is well formed).

        Checks: rooted at ``atomic.start``; acyclic (every parent index
        precedes its child); spans inside the transaction window; the
        critical path reproduces the end-to-end latency exactly.
        """
        problems = []
        if not self.spans or self.spans[0].kind != "root":
            problems.append("graph is not rooted at atomic.start")
        for span in self.spans:
            if span.index > 0 and not -1 < span.parent < span.index:
                problems.append(f"span {span.index} parent {span.parent} "
                                "does not precede it")
            if span.t1 < span.t0:
                problems.append(f"span {span.index} ends before it starts")
            if span.t0 < self.start:
                problems.append(f"span {span.index} precedes atomic.start")
        if self.end >= 0 and self.critical_cycles() != self.duration:
            problems.append(
                f"critical path {self.critical_cycles()} != "
                f"end-to-end {self.duration}"
            )
        return problems

    def to_dict(self) -> dict[str, Any]:
        """JSON-able summary with the critical path expanded."""
        return {
            "txn_id": self.txn_id,
            "node": self.node,
            "op": self.op,
            "policy": self.policy,
            "block": self.block,
            "start": self.start,
            "end": self.end,
            "cycles": self.duration,
            "local": self.local,
            "spans": len(self.spans),
            "path": [
                {**step.span.to_dict(), "cycles": step.cycles,
                 "gap": step.gap}
                for step in self.critical_path()
            ],
            "blockers": list(self.blockers),
        }


class SpanBuilder:
    """EventBus subscriber that stitches events into span graphs.

    .. code-block:: python

        builder = SpanBuilder(machine.events)
        ...  # run programs
        for graph in builder.completed:
            assert not graph.check()
            print(graph.critical_path())
    """

    def __init__(
        self,
        bus: EventBus,
        limit: int = 100_000,
        enabled: bool = True,
    ) -> None:
        self.bus = bus
        self.limit = limit
        self.completed: list[TxnSpanGraph] = []
        self.dropped = 0
        self.orphan_events = 0
        self.abandoned = 0
        self._open: dict[int, TxnSpanGraph] = {}
        self._dirwaits: dict[tuple, tuple[int, Optional[int]]] = {}
        self._pending_kills: dict[int, list[dict[str, Any]]] = {}
        self._next_id = 0
        self._token: Optional[int] = None
        if enabled:
            self.enable()

    # -- subscription management ---------------------------------------

    @property
    def enabled(self) -> bool:
        """True while subscribed to the bus."""
        return self._token is not None

    def enable(self) -> None:
        """(Re)subscribe; a disabled builder costs the bus nothing."""
        if self._token is None:
            self._token = self.bus.subscribe(self._on_event,
                                             kinds=_SPAN_EVENT_KINDS)

    def disable(self) -> None:
        """Unsubscribe (idempotent); the bus pays zero cost afterwards."""
        if self._token is not None:
            self.bus.unsubscribe(self._token)
            self._token = None

    detach = disable

    # -- event plumbing -------------------------------------------------

    def _on_event(self, event: Event) -> None:
        kind = event.kind
        if kind == "atomic.start":
            self._on_start(event)
        elif kind == "atomic.complete":
            self._on_complete(event)
        elif kind == "msg.send":
            self._on_msg(event)
        elif kind == "mem.service":
            self._on_mem(event)
        elif kind == "dir.queue.enter":
            self._on_dir_enter(event)
        elif kind == "dir.queue.leave":
            self._on_dir_leave(event)
        elif kind == "res.revoke":
            self._on_revoke(event)
        # res.grant is an instant; it carries no latency to attribute.

    def _on_start(self, event: Event) -> None:
        stale = self._open.pop(event.node, None)
        if stale is not None:
            self.abandoned += 1
        graph = TxnSpanGraph(
            txn_id=self._next_id,
            node=event.node,
            op=event.data.get("op", "?"),
            policy=event.data.get("policy"),
            block=event.data.get("block"),
            start=event.ts,
        )
        self._next_id += 1
        for kill in self._pending_kills.pop(event.node, []):
            graph.blockers.append(kill)
        self._open[event.node] = graph

    def _graph_of(self, requester: Any) -> Optional[TxnSpanGraph]:
        graph = self._open.get(requester)
        if graph is None:
            self.orphan_events += 1
        return graph

    def _on_msg(self, event: Event) -> None:
        data = event.data
        if not data.get("has_txn"):
            return  # unsolicited traffic (WB/DROP); no transaction to pin
        graph = self._graph_of(data.get("requester"))
        if graph is None:
            return
        src, dst = data.get("src", -1), data.get("dst", -1)
        component = f"bus.{src}" if src == dst else f"link.{src}-{dst}"
        graph.add_span(
            "msg", event.ts, data.get("delivered", event.ts), component,
            at=src, settles=dst, detail=str(data.get("mtype", "?")),
        )

    def _on_mem(self, event: Event) -> None:
        data = event.data
        if not data.get("has_txn"):
            return
        graph = self._graph_of(data.get("requester"))
        if graph is None:
            return
        node = event.node
        arrival, start = data.get("arrival", event.ts), data.get("start")
        component = f"mem.{node}"
        detail = str(data.get("mtype", "?"))
        if start is not None and start > arrival:
            graph.add_span("queue", arrival, start, component,
                           at=node, settles=node, detail=detail)
        graph.add_span("memory", start if start is not None else arrival,
                       event.ts, component, at=node, settles=node,
                       detail=detail)

    def _on_dir_enter(self, event: Event) -> None:
        data = event.data
        holder = data.get("holder")
        holder_graph = self._open.get(holder) if holder is not None else None
        key = (event.node, data.get("block"), data.get("requester"))
        self._dirwaits[key] = (
            event.ts,
            holder_graph.txn_id if holder_graph is not None else None,
        )

    def _on_dir_leave(self, event: Event) -> None:
        data = event.data
        key = (event.node, data.get("block"), data.get("requester"))
        entered = self._dirwaits.pop(key, None)
        if entered is None:
            self.orphan_events += 1
            return
        graph = self._graph_of(data.get("requester"))
        if graph is None:
            return
        t0, holder_txn = entered
        graph.add_span("dirwait", t0, event.ts, f"dir.{event.node}",
                       at=event.node, settles=event.node,
                       detail=str(data.get("mtype", "?")),
                       blocked_on=holder_txn)
        if holder_txn is not None:
            graph.blockers.append(
                {"kind": "dirwait", "txn": holder_txn,
                 "cycles": event.ts - t0, "block": data.get("block")}
            )

    def _on_revoke(self, event: Event) -> None:
        by = event.data.get("by")
        if by is None:
            return  # self-inflicted (sc_consumed, spurious, eviction, ...)
        killer = self._open.get(by)
        note = {
            "kind": "res_kill",
            "txn": killer.txn_id if killer is not None else None,
            "reason": event.data.get("reason"),
            "block": event.data.get("block"),
            "ts": event.ts,
        }
        victim = self._open.get(event.node)
        if victim is not None:
            victim.blockers.append(note)
        else:
            # The reservation died between operations; blame lands on
            # the victim node's next operation (its store_conditional).
            self._pending_kills.setdefault(event.node, []).append(note)

    def _on_complete(self, event: Event) -> None:
        graph = self._open.pop(event.node, None)
        if graph is None:
            self.orphan_events += 1
            return
        graph.end = event.ts
        graph.local = bool(event.data.get("local"))
        op = event.data.get("op")
        if op:
            graph.op = op
        last_input = max((s.t1 for s in graph.spans), default=graph.start)
        graph.add_span("ctrl", min(last_input, event.ts), event.ts,
                       f"ctrl.{event.node}", at=event.node, detail=graph.op)
        if len(self.completed) >= self.limit:
            self.dropped += 1
            return
        self.completed.append(graph)

    # -- queries --------------------------------------------------------

    def remote(self) -> list[TxnSpanGraph]:
        """Completed graphs that left the node (have latency breakdowns)."""
        return [g for g in self.completed if not g.local]

    def check_all(self) -> list[str]:
        """Structural violations over every completed graph."""
        problems = []
        for graph in self.completed:
            for problem in graph.check():
                problems.append(f"txn {graph.txn_id} ({graph.op}): {problem}")
        return problems

    def __len__(self) -> int:
        return len(self.completed)
