"""Live run telemetry: deterministic heartbeats + host-resource tracking.

Long runs and sweeps are black boxes until they finish; this module
makes them observable *while they run* without perturbing them.  A
:class:`Heartbeat` attaches to a machine's simulator and fires every N
**executed events** — a cadence counted in simulation work, not wall
time, so the sequence of beats is a deterministic function of the run
(only the *measured values* on each beat vary with the host).  Each
beat publishes a ``run.progress`` event on the machine's
:class:`~repro.obs.events.EventBus` and/or serializes one JSONL record
carrying:

* ``sim_now`` / ``events`` / ``queue_depth`` — where the simulation is;
* ``events_per_second`` / ``wall_seconds`` — how fast the host is
  producing it (events/s over the window since the previous beat);
* ``rss_kib`` (``resource.getrusage``; kibibytes on Linux, bytes on
  macOS) and ``gc_counts`` / ``gc_collections`` — what it costs.

Determinism discipline, mirroring the spans layer: heartbeats never
schedule simulator events, never touch the metrics registry, and write
only to the telemetry stream — results stay bit-identical with
telemetry on or off, and the off path costs nothing (the engine's fast
loop is only left when a heartbeat or profiler is attached; gated at
≤2% by ``tests/obs/test_profile.py``).

Attachment mirrors :func:`repro.obs.profile.profiled`: inside a
:func:`telemetry_session` block every machine built wires a heartbeat
to the session's writer, so ``repro table1 --telemetry out.jsonl``
streams progress from machines constructed deep inside the runners.

:func:`telemetry_line` is the one JSON serializer shared by heartbeat
records and the sweep progress stream (``--progress-format jsonl``),
so every live-telemetry consumer parses a single framing: one compact
JSON object per line, discriminated by its ``record`` field.
"""

from __future__ import annotations

import gc
import json
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Iterator, Optional, TextIO

try:
    import resource
except ImportError:  # pragma: no cover - non-Unix hosts
    resource = None  # type: ignore[assignment]

__all__ = [
    "DEFAULT_EVERY",
    "Heartbeat",
    "TelemetryWriter",
    "host_sample",
    "telemetry_line",
    "telemetry_session",
    "active_session",
    "maybe_attach",
]

#: Default heartbeat cadence, in executed events.  Small enough that a
#: quick Table 1 panel beats several times, large enough that the
#: per-beat work (one getrusage + one JSON line) is noise.
DEFAULT_EVERY = 50_000


def host_sample() -> dict[str, Any]:
    """A point-in-time snapshot of this process's host resources.

    ``rss_kib`` is ``ru_maxrss`` — the peak (not current) resident set,
    in KiB on Linux and bytes on macOS; absent where :mod:`resource`
    is unavailable.  ``gc_counts`` are the three generation counters,
    ``gc_collections`` the total collections run so far.
    """
    sample: dict[str, Any] = {}
    if resource is not None:
        sample["rss_kib"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    sample["gc_counts"] = list(gc.get_count())
    sample["gc_collections"] = sum(
        generation["collections"] for generation in gc.get_stats()
    )
    return sample


def telemetry_line(record: dict[str, Any]) -> str:
    """One telemetry record as a compact, sorted-key JSON line."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class TelemetryWriter:
    """Writes telemetry records as JSONL, one line per record."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.lines = 0

    def write(self, record: dict[str, Any]) -> None:
        self.stream.write(telemetry_line(record) + "\n")
        self.stream.flush()
        self.lines += 1


class Heartbeat:
    """Periodic (by event count) run-progress emitter for one machine.

    Hooks :meth:`repro.sim.engine.Simulator.set_heartbeat`; each beat
    emits a ``run.progress`` event on the machine's bus and, when a
    ``writer`` is given, one JSONL record.  Detach with :meth:`detach`
    (idempotent) to return the simulator to its fast loop.
    """

    def __init__(
        self,
        machine: Any,
        every: int = DEFAULT_EVERY,
        writer: Optional[TelemetryWriter] = None,
    ) -> None:
        self.sim = machine.sim
        self.bus = getattr(machine, "events", None)
        self.writer = writer
        self.every = every
        self.beats = 0
        self._t0 = perf_counter()
        self._last_t = self._t0
        self._last_events = self.sim.events_processed
        self._attached = True
        self.sim.set_heartbeat(every, self._fire)

    def _fire(self, now: int, events: int, queue_depth: int) -> None:
        t = perf_counter()
        window_t = t - self._last_t
        window_events = events - self._last_events
        self._last_t = t
        self._last_events = events
        self.beats += 1
        eps = window_events / window_t if window_t > 0 else 0.0
        data = {
            "beat": self.beats,
            "events": events,
            "events_per_second": round(eps, 1),
            "queue_depth": queue_depth,
            "wall_seconds": round(t - self._t0, 6),
            **host_sample(),
        }
        if self.bus is not None:
            self.bus.emit("run.progress", ts=now, **data)
        if self.writer is not None:
            self.writer.write({"record": "run.progress", "sim_now": now,
                               **data})

    def detach(self) -> None:
        """Stop beating (idempotent)."""
        if self._attached:
            self.sim.clear_heartbeat()
            self._attached = False


# ----------------------------------------------------------------------
# Session attachment.
# ----------------------------------------------------------------------

@dataclass
class _Session:
    every: int
    writer: TelemetryWriter


_ACTIVE: Optional[_Session] = None


def active_session() -> Optional[_Session]:
    """The telemetry session new machines should attach to, if any."""
    return _ACTIVE


@contextmanager
def telemetry_session(
    every: int = DEFAULT_EVERY,
    stream: Optional[TextIO] = None,
    writer: Optional[TelemetryWriter] = None,
) -> Iterator[TelemetryWriter]:
    """Attach a heartbeat to every machine built inside the block.

    Records go to ``writer`` (or a fresh :class:`TelemetryWriter` on
    ``stream``, default stderr).  Sessions nest; the previous one is
    restored on exit.  As with profiling, worker processes do not
    inherit the session — the CLI's ``--telemetry`` forces serial,
    in-process execution.
    """
    global _ACTIVE
    out = writer if writer is not None else TelemetryWriter(stream)
    previous = _ACTIVE
    _ACTIVE = _Session(every=every, writer=out)
    try:
        yield out
    finally:
        _ACTIVE = previous


def maybe_attach(machine: Any) -> Optional[Heartbeat]:
    """Wire ``machine`` into the active telemetry session, if any.

    Called from ``Machine.__init__``; returns the attached
    :class:`Heartbeat` or None.  Costs one module-global read per
    machine construction when no session is active.
    """
    if _ACTIVE is None:
        return None
    return Heartbeat(machine, every=_ACTIVE.every, writer=_ACTIVE.writer)
