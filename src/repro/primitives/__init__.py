"""Atomic-primitive definitions: operation types and their semantics."""

from .ops import (
    Op,
    Load,
    Store,
    LoadExclusive,
    DropCopy,
    FetchAndPhi,
    CompareAndSwap,
    LoadLinked,
    StoreConditional,
    Think,
    MagicBarrier,
    ContendBegin,
    ContendEnd,
    LLValue,
    CasResult,
)
from .semantics import PhiOp, apply_phi

__all__ = [
    "Op",
    "Load",
    "Store",
    "LoadExclusive",
    "DropCopy",
    "FetchAndPhi",
    "CompareAndSwap",
    "LoadLinked",
    "StoreConditional",
    "Think",
    "MagicBarrier",
    "ContendBegin",
    "ContendEnd",
    "LLValue",
    "CasResult",
    "PhiOp",
    "apply_phi",
]
