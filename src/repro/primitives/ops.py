"""Operation objects yielded by simulated programs.

A program is a Python generator; every memory access, atomic primitive,
auxiliary instruction, local-compute delay, or experiment-control action is
expressed by yielding one of these objects.  The processor shell hands
memory operations to the cache controller and resumes the generator with
the operation's result:

========================  =====================================
operation                 result of the ``yield``
========================  =====================================
:class:`Load`             the word's value
:class:`Store`            ``None``
:class:`LoadExclusive`    the word's value
:class:`DropCopy`         ``None``
:class:`FetchAndPhi`      the *old* value
:class:`CompareAndSwap`   :class:`CasResult` (truthy on success)
:class:`LoadLinked`       :class:`LLValue`
:class:`StoreConditional` ``bool`` (success)
:class:`Think`            ``None``
:class:`MagicBarrier`     ``None``
:class:`ContendBegin`     ``None`` (statistics hook, zero time)
:class:`ContendEnd`       ``None`` (statistics hook, zero time)
========================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .semantics import PhiOp

__all__ = [
    "Op",
    "Load",
    "Store",
    "LoadExclusive",
    "DropCopy",
    "FetchAndPhi",
    "CompareAndSwap",
    "LoadLinked",
    "StoreConditional",
    "Think",
    "MagicBarrier",
    "ContendBegin",
    "ContendEnd",
    "LLValue",
    "CasResult",
]


class Op:
    """Base class for everything a program may yield."""

    __slots__ = ()


class MemOp(Op):
    """Base class for operations that reference a memory address."""

    __slots__ = ()


@dataclass(frozen=True)
class Load(MemOp):
    """Ordinary word load."""

    addr: int


@dataclass(frozen=True)
class Store(MemOp):
    """Ordinary word store."""

    addr: int
    value: int


@dataclass(frozen=True)
class LoadExclusive(MemOp):
    """Auxiliary instruction: load that acquires an exclusive copy.

    Under INV it primes the line for an upcoming compare_and_swap (or for
    migratory data) so the atomic update hits locally.  Under UPD/UNC it
    behaves as an ordinary load.
    """

    addr: int


@dataclass(frozen=True)
class DropCopy(MemOp):
    """Auxiliary instruction: self-invalidate the cached line, if any.

    An exclusive line is written back; a shared copy sends a drop notice so
    the directory can forget the sharer.  A subsequent writer then finds
    the line uncached and pays 2 serialized messages instead of 3 or 4.
    """

    addr: int


@dataclass(frozen=True)
class FetchAndPhi(MemOp):
    """The fetch_and_phi family (fetch_and_add, test_and_set, ...)."""

    addr: int
    phi: PhiOp
    operand: int = 0


@dataclass(frozen=True)
class CompareAndSwap(MemOp):
    """compare_and_swap(addr, expected, new) -> CasResult."""

    addr: int
    expected: int
    new: int


@dataclass(frozen=True)
class LoadLinked(MemOp):
    """load_linked(addr) -> LLValue; sets a reservation."""

    addr: int


@dataclass(frozen=True)
class StoreConditional(MemOp):
    """store_conditional(addr, value[, token]) -> bool.

    ``token`` is only meaningful with the serial-number reservation
    strategy, where it enables a *bare* store_conditional: a processor that
    knows the expected serial number may attempt the store without a
    preceding load_linked (paper §3.1).  When ``None``, the token from the
    most recent load_linked is used.
    """

    addr: int
    value: int
    token: Optional[int] = None


@dataclass(frozen=True)
class Think(Op):
    """Local computation for ``cycles`` cycles; no memory traffic."""

    cycles: int


@dataclass(frozen=True)
class MagicBarrier(Op):
    """Constant-time barrier, as provided by MINT in the paper.

    Used by the synthetic applications to control sharing patterns.  It
    aligns the participating processors' clocks at the latest arrival time
    and costs nothing else — no memory or network traffic.  Real
    applications use the memory-based tree barrier in
    :mod:`repro.sync.barrier` instead.
    """

    barrier_id: int
    participants: int


@dataclass(frozen=True)
class ContendBegin(Op):
    """Statistics hook: this processor starts contending for ``addr``."""

    addr: int


@dataclass(frozen=True)
class ContendEnd(Op):
    """Statistics hook: this processor stops contending for ``addr``."""

    addr: int


@dataclass(frozen=True)
class LLValue:
    """Result of a load_linked.

    Attributes:
        value: The word read.
        token: Serial-number token to pass to a matching
            store_conditional (serial strategy only; ``None`` otherwise).
        doomed: True when the memory could not record the reservation
            (limited strategy over capacity); the matching
            store_conditional will fail locally without network traffic.
    """

    value: int
    token: Optional[int] = None
    doomed: bool = False


@dataclass(frozen=True)
class CasResult:
    """Result of a compare_and_swap: success flag plus the old value."""

    success: bool
    old: int

    def __bool__(self) -> bool:
        return self.success
