"""Pure value semantics of the fetch_and_phi family.

A ``fetch_and_phi`` atomically replaces a word with ``phi(old, operand)``
and returns the old value.  These functions are the "adders and
comparators" the paper adds to cache controllers (INV) or memory modules
(UPD/UNC); keeping them pure lets both placements share one definition and
makes them trivially property-testable.
"""

from __future__ import annotations

import enum

__all__ = ["PhiOp", "apply_phi", "WORD_MASK"]

WORD_MASK = (1 << 32) - 1
"""Atomic words are 32 bits, matching the MIPS R4000 word size."""


class PhiOp(enum.Enum):
    """The fetch_and_phi variants used in the paper."""

    ADD = "add"  # fetch_and_add
    STORE = "store"  # fetch_and_store (atomic swap)
    OR = "or"  # fetch_and_or
    AND = "and"  # fetch_and_and
    TEST_AND_SET = "test_and_set"  # read old, store 1


def apply_phi(op: PhiOp, old: int, operand: int) -> int:
    """Compute the new value ``phi(old, operand)`` for a fetch_and_phi.

    All arithmetic wraps at 32 bits, like the hardware it models.
    """
    if op is PhiOp.ADD:
        return (old + operand) & WORD_MASK
    if op is PhiOp.STORE:
        return operand & WORD_MASK
    if op is PhiOp.OR:
        return (old | operand) & WORD_MASK
    if op is PhiOp.AND:
        return (old & operand) & WORD_MASK
    if op is PhiOp.TEST_AND_SET:
        return 1
    raise ValueError(f"unknown PhiOp {op!r}")
