"""The processor model: program shells and the program-facing API."""

from .processor import Processor
from .api import Proc
from .magic import BarrierManager

__all__ = ["Processor", "Proc", "BarrierManager"]
