"""The program-facing API.

A :class:`Proc` is handed to every simulated program.  Its methods build
operation objects for the program to ``yield``; the processor shell
executes them and the ``yield`` evaluates to the result:

.. code-block:: python

    def my_program(p: Proc, counter: int):
        old = yield p.fetch_add(counter, 1)
        ok = yield p.cas(counter, old + 1, 42)
        yield p.think(100)

Composite synchronization operations (locks, barriers, counters) in
:mod:`repro.sync` are generators used with ``yield from``.
"""

from __future__ import annotations

import random
from typing import Optional

from ..primitives.ops import (
    CompareAndSwap,
    ContendBegin,
    ContendEnd,
    DropCopy,
    FetchAndPhi,
    Load,
    LoadExclusive,
    LoadLinked,
    MagicBarrier,
    Store,
    StoreConditional,
    Think,
)
from ..primitives.semantics import PhiOp

__all__ = ["Proc"]


class Proc:
    """Operation factory bound to one processor."""

    def __init__(self, pid: int, nprocs: int, rng: random.Random) -> None:
        self.pid = pid
        self.nprocs = nprocs
        self.rng = rng

    # ------------------------------------------------------------------
    # Ordinary accesses.
    # ------------------------------------------------------------------

    def load(self, addr: int) -> Load:
        """Word load; yields the value."""
        return Load(addr)

    def store(self, addr: int, value: int) -> Store:
        """Word store."""
        return Store(addr, value)

    # ------------------------------------------------------------------
    # Atomic primitives.
    # ------------------------------------------------------------------

    def fetch_add(self, addr: int, operand: int = 1) -> FetchAndPhi:
        """fetch_and_add; yields the old value."""
        return FetchAndPhi(addr, PhiOp.ADD, operand)

    def fetch_store(self, addr: int, value: int) -> FetchAndPhi:
        """fetch_and_store (atomic swap); yields the old value."""
        return FetchAndPhi(addr, PhiOp.STORE, value)

    def fetch_or(self, addr: int, operand: int) -> FetchAndPhi:
        """fetch_and_or; yields the old value."""
        return FetchAndPhi(addr, PhiOp.OR, operand)

    def test_and_set(self, addr: int) -> FetchAndPhi:
        """test_and_set; stores 1, yields the old value."""
        return FetchAndPhi(addr, PhiOp.TEST_AND_SET, 1)

    def cas(self, addr: int, expected: int, new: int) -> CompareAndSwap:
        """compare_and_swap; yields a truthy CasResult on success."""
        return CompareAndSwap(addr, expected, new)

    def ll(self, addr: int) -> LoadLinked:
        """load_linked; yields an LLValue and sets the reservation."""
        return LoadLinked(addr)

    def sc(self, addr: int, value: int,
           token: Optional[int] = None) -> StoreConditional:
        """store_conditional; yields True on success.

        Pass ``token`` for a *bare* store_conditional under the
        serial-number reservation strategy.
        """
        return StoreConditional(addr, value, token)

    # ------------------------------------------------------------------
    # Auxiliary instructions.
    # ------------------------------------------------------------------

    def load_exclusive(self, addr: int) -> LoadExclusive:
        """Load that acquires an exclusive copy (paper §3)."""
        return LoadExclusive(addr)

    def drop_copy(self, addr: int) -> DropCopy:
        """Self-invalidate the cached copy of ``addr``'s line, if any."""
        return DropCopy(addr)

    # ------------------------------------------------------------------
    # Experiment control.
    # ------------------------------------------------------------------

    def think(self, cycles: int) -> Think:
        """Local computation for ``cycles`` cycles."""
        return Think(cycles)

    def barrier(self, barrier_id: int, participants: int | None = None
                ) -> MagicBarrier:
        """Constant-time barrier over ``participants`` processors.

        Defaults to all processors.  Magic barriers are an experiment
        instrument (the paper uses MINT's); applications that want to
        measure barrier cost use :func:`repro.sync.barrier.tree_barrier`.
        """
        return MagicBarrier(barrier_id, participants or self.nprocs)

    def contend_begin(self, addr: int) -> ContendBegin:
        """Mark the start of one contended access attempt (statistics)."""
        return ContendBegin(addr)

    def contend_end(self, addr: int) -> ContendEnd:
        """Mark the end of one contended access attempt (statistics)."""
        return ContendEnd(addr)
