"""Constant-time ("magic") barriers.

The paper's synthetic applications use barriers provided by MINT that take
constant time and generate no memory traffic, so they shape the sharing
pattern without perturbing the measurements.  This manager blocks each
arriving process and releases all of them at the moment the last one
arrives.
"""

from __future__ import annotations

from ..errors import ProgramError
from ..sim.engine import Simulator
from ..sim.process import Process

__all__ = ["BarrierManager"]


class BarrierManager:
    """Tracks arrivals at magic barriers and releases full episodes."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._waiting: dict[int, list[Process]] = {}
        self.episodes = 0

    def arrive(self, barrier_id: int, participants: int, process: Process) -> None:
        """Block ``process`` until ``participants`` processes have arrived."""
        if participants < 1:
            raise ProgramError("barrier needs at least one participant")
        waiting = self._waiting.setdefault(barrier_id, [])
        waiting.append(process)
        if len(waiting) > participants:
            raise ProgramError(
                f"barrier {barrier_id} overflow: {len(waiting)} arrivals "
                f"for {participants} participants"
            )
        if len(waiting) == participants:
            del self._waiting[barrier_id]
            self.episodes += 1
            for proc in waiting:
                self.sim.schedule(0, proc.resume, None)

    def idle(self) -> bool:
        """True when no process is blocked at any barrier."""
        return not self._waiting
