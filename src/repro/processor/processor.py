"""The in-order processor shell.

Each node has one processor, which executes exactly one program.  Programs
are generators yielding operation objects (see
:mod:`repro.primitives.ops`); the processor interprets them:

* memory operations and atomic primitives go to the node's cache
  controller and block the processor until the result returns;
* :class:`~repro.primitives.ops.Think` models local computation;
* :class:`~repro.primitives.ops.MagicBarrier` aligns processors through
  the constant-time barrier manager;
* the contend hooks feed the contention tracker in zero simulated time.

The processor also keeps the per-processor deterministic RNG used by
backoff code, seeded from the machine seed and the pid.
"""

from __future__ import annotations

import random
from typing import Any

from ..errors import ProgramError
from ..primitives import ops as _ops
from ..primitives.ops import ContendBegin, ContendEnd, MagicBarrier
from ..sim.process import Process

__all__ = ["Processor"]


class Processor:
    """Drives one program against one cache controller."""

    def __init__(self, pid: int, machine: Any) -> None:
        self.pid = pid
        self.machine = machine
        self.sim = machine.sim
        self.controller = machine.nodes[pid].controller
        self.rng = random.Random((machine.config.seed << 20) ^ pid)
        self.faults = getattr(machine, "faults", None)
        self.process: Process | None = None
        self.ops_issued = 0
        self.finish_time: int | None = None

    def run_program(self, generator) -> Process:
        """Attach and start a program generator."""
        if self.process is not None and not self.process.done:
            raise ProgramError(f"processor {self.pid} is already running")
        self.process = Process(
            name=f"cpu{self.pid}",
            generator=generator,
            interpreter=self._interpret,
            on_exit=self._on_exit,
        )
        self.sim.schedule(0, self.process.start)
        return self.process

    @property
    def done(self) -> bool:
        """True once the attached program has returned."""
        return self.process is not None and self.process.done

    def _on_exit(self, process: Process) -> None:
        self.finish_time = self.sim.now
        self.machine.on_processor_exit(self)

    def _interpret(self, process: Process, op: Any) -> None:
        if isinstance(op, _ops.Think):
            if op.cycles < 0:
                raise ProgramError("think() needs a non-negative cycle count")
            self.sim.schedule(op.cycles, process.resume, None)
            return
        if isinstance(op, MagicBarrier):
            self.machine.barriers.arrive(op.barrier_id, op.participants, process)
            return
        if isinstance(op, ContendBegin):
            self.machine.stats.contention.begin(op.addr, self.pid)
            self.sim.schedule(0, process.resume, None)
            return
        if isinstance(op, ContendEnd):
            self.machine.stats.contention.end(op.addr, self.pid)
            self.sim.schedule(0, process.resume, None)
            return
        if isinstance(op, _ops.MemOp):
            self.ops_issued += 1
            if self.faults is not None:
                stall = self.faults.cpu_stall(self.pid)
                if stall:
                    # Injected stall window (an interrupt hits before
                    # the op issues): the operation is late, never
                    # lost, so program semantics are untouched.
                    self.sim.schedule(stall, self.controller.execute,
                                      op, process.resume)
                    return
            self.controller.execute(op, process.resume)
            return
        raise ProgramError(f"program yielded a non-operation: {op!r}")
