"""Discrete-event simulation core: event queue, clock, process shells."""

from .engine import Simulator
from .process import Process

__all__ = ["Simulator", "Process"]
