"""The discrete-event simulation engine.

A :class:`Simulator` owns a monotonically increasing cycle counter and a
priority queue of pending events.  Components schedule callbacks with
:meth:`Simulator.schedule`; :meth:`Simulator.run` drains the queue in
timestamp order.  Ties are broken by insertion order, which makes every
simulation fully deterministic.

The engine knows nothing about multiprocessors; the machine model in
:mod:`repro.machine` is built entirely out of scheduled callbacks.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from ..errors import SimulationError
from ..obs.registry import MetricsRegistry

__all__ = ["Simulator"]


class Simulator:
    """A deterministic discrete-event simulator with an integer clock."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._now: int = 0
        self._queue: list[tuple[int, int, Callable[..., None], tuple]] = []
        self._seq: int = 0
        self._running: bool = False
        self.registry = registry if registry is not None else MetricsRegistry()
        self._events_processed = self.registry.counter("sim.events_processed")

    @property
    def events_processed(self) -> int:
        """Total events executed (registry: ``sim.events_processed``)."""
        return self._events_processed.value

    @events_processed.setter
    def events_processed(self, value: int) -> None:
        self._events_processed.value = value

    @property
    def now(self) -> int:
        """Current simulation time, in cycles."""
        return self._now

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` ``delay`` cycles from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current cycle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self.at(self._now + delay, fn, *args)

    def at(self, time: int, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at absolute cycle ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        heapq.heappush(self._queue, (time, self._seq, fn, args))
        self._seq += 1

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: Stop (without executing) events after this cycle.
            max_events: Safety valve; raise :class:`SimulationError` if more
                than this many events execute (deadlock/livelock detector
                for tests).

        Returns:
            The simulation time when the run stopped.
        """
        self._running = True
        executed = 0
        try:
            while self._queue:
                time, _seq, fn, args = self._queue[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = time
                fn(*args)
                executed += 1
                self._events_processed.inc()
                if max_events is not None and executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely livelock"
                    )
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        """Number of events currently queued."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now}, pending={len(self._queue)})"
