"""The discrete-event simulation engine.

A :class:`Simulator` owns a monotonically increasing cycle counter and a
queue of pending events.  Components schedule callbacks with
:meth:`Simulator.schedule`; :meth:`Simulator.run` drains the queue in
timestamp order.  Ties are broken by insertion order, which makes every
simulation fully deterministic.

The queue is a two-level structure tuned for the delays this machine
actually schedules (see ``docs/performance.md``):

* a **calendar front end** — a ring of ``_WINDOW`` per-cycle buckets
  covering ``[now, now + _WINDOW)``.  The small integer delays that
  dominate (cache hits, controller occupancy, memory service, mesh
  hops) land here with one ``list.append`` and drain with no
  comparisons at all;
* a **heap back end** (``heapq``) for the rare far-future events, e.g.
  deliveries delayed behind a long network-port backlog.

Both levels carry ``(time, seq, fn, args)`` entries, so events at the
same cycle replay in exact insertion order even when they straddle the
two levels.  The engine knows nothing about multiprocessors; the machine
model in :mod:`repro.machine` is built entirely out of scheduled
callbacks.

A second event class exists for the sharded runner
(:mod:`repro.harness.shardrun`): :meth:`Simulator.schedule_priority`
entries carry *negative* sequence numbers, so at any given timestamp
they execute before every ordinary event, regardless of when either was
scheduled.  Ordinary insertion order depends on execution history, which
differs between a whole-machine run and a per-region run; priority
events are the hook the sharded mesh uses to arbitrate boundary-crossing
arrivals in an order that does not.  The default path never calls it and
is unaffected.
"""

from __future__ import annotations

import heapq
import sys
from time import perf_counter_ns
from typing import Any, Callable, Optional

from ..errors import SimulationError
from ..obs.profile import active_profiler
from ..obs.registry import MetricsRegistry

__all__ = ["Simulator"]

# Bucket entries are (time, seq, fn, args); within one bucket all times
# are equal, so ordering by seq alone is a total order.
def _entry_seq(entry: tuple) -> int:
    return entry[1]


class Simulator:
    """A deterministic discrete-event simulator with an integer clock."""

    #: Width (in cycles) of the calendar-queue window.  Power of two so
    #: the bucket index is a mask instead of a modulo.
    _WINDOW = 256
    _MASK = _WINDOW - 1

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._now: int = 0
        # Far-future events (delay >= _WINDOW): a classic binary heap.
        self._queue: list[tuple[int, int, Callable[..., None], tuple]] = []
        # Near-future events: one bucket per cycle in [now, now+_WINDOW).
        # Invariant: all entries in one bucket share a single timestamp
        # (two distinct times in the window cannot collide mod _WINDOW).
        self._buckets: list[list[tuple[int, int, Callable[..., None], tuple]]]
        self._buckets = [[] for _ in range(self._WINDOW)]
        self._near: int = 0
        # No bucket entry has a timestamp earlier than _cursor.
        self._cursor: int = 0
        self._seq: int = 0
        # Priority events count down from -1 so every priority entry
        # sorts before every ordinary entry at the same timestamp.
        self._pseq: int = -1
        self._running: bool = False
        self.registry = registry if registry is not None else MetricsRegistry()
        self._events_processed = self.registry.counter("sim.events_processed")
        # Host-observability hooks.  When either is attached, run()
        # dispatches to _run_observed(); the fast loop stays untouched,
        # so the disabled path's only cost is one check per run() call.
        self._profiler = active_profiler()
        self._hb_every: int = 0
        self._hb_fire: Optional[Callable[[int, int, int], None]] = None
        self._hb_countdown: int = 0

    @property
    def events_processed(self) -> int:
        """Total events executed (registry: ``sim.events_processed``)."""
        return self._events_processed.value

    @events_processed.setter
    def events_processed(self, value: int) -> None:
        self._events_processed.value = value

    @property
    def now(self) -> int:
        """Current simulation time, in cycles."""
        return self._now

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` ``delay`` cycles from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current cycle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        time = self._now + delay
        if delay < 256:
            self._buckets[time & 255].append((time, seq, fn, args))
            self._near += 1
        else:
            heapq.heappush(self._queue, (time, seq, fn, args))

    def at(self, time: int, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at absolute cycle ``time`` (>= now)."""
        now = self._now
        if time < now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {now}"
            )
        seq = self._seq
        self._seq = seq + 1
        if time - now < 256:
            self._buckets[time & 255].append((time, seq, fn, args))
            self._near += 1
        else:
            heapq.heappush(self._queue, (time, seq, fn, args))

    def schedule_priority(
        self, delay: int, fn: Callable[..., None], *args: Any
    ) -> None:
        """Run ``fn(*args)`` ``delay`` cycles from now, before every
        ordinary event of that cycle.

        Priority entries carry negative, decreasing sequence numbers:
        at one timestamp they all sort before ordinary entries, and
        *among themselves* run in reverse scheduling order — callers
        must only use this for handlers that commute with each other
        (the sharded mesh's arrival/delivery drains do; they impose
        their own canonical order via per-node buffers).

        While the simulator is running, ``delay`` must be at least 1:
        a same-cycle priority event would have to cut into the bucket
        currently being drained, which the fast loop does not support.
        """
        if delay < 1 and (self._running or delay < 0):
            raise SimulationError(
                f"priority events must be strictly future (delay={delay}, "
                f"running={self._running})"
            )
        seq = self._pseq
        self._pseq = seq - 1
        time = self._now + delay
        if delay < 256:
            bucket = self._buckets[time & 255]
            bucket.append((time, seq, fn, args))
            if len(bucket) > 1:
                # Keep priority-before-ordinary within the bucket (the
                # drain executes in list order).  Entries share one
                # timestamp and have unique seqs, so the tuple sort
                # never reaches the callables.
                bucket.sort(key=_entry_seq)
            self._near += 1
        else:
            heapq.heappush(self._queue, (time, seq, fn, args))

    def next_event_time(self) -> Optional[int]:
        """Timestamp of the earliest pending event, or ``None`` if idle.

        A between-runs probe for the conservative-window shard runner
        (it bounds how far every region may safely advance); O(window)
        per call, never used on the per-event path.
        """
        best: Optional[int] = None
        if self._near:
            for bucket in self._buckets:
                if bucket:
                    time = bucket[0][0]
                    if best is None or time < best:
                        best = time
        if self._queue:
            h_time = self._queue[0][0]
            if best is None or h_time < best:
                best = h_time
        return best

    def set_heartbeat(
        self, every: int, fire: Callable[[int, int, int], None]
    ) -> None:
        """Fire ``fire(now, events_total, queue_depth)`` every ``every``
        executed events.

        The cadence is counted in *events*, not wall time, so enabling a
        heartbeat never perturbs event ordering — the callback observes
        the simulation, it must not schedule into it.  The countdown
        persists across :meth:`run` calls, so a machine that runs in
        many short turns still beats at the configured period.
        """
        if every <= 0:
            raise SimulationError(
                f"heartbeat interval must be positive (got {every})"
            )
        self._hb_every = every
        self._hb_fire = fire
        self._hb_countdown = every

    def clear_heartbeat(self) -> None:
        """Detach the heartbeat (idempotent)."""
        self._hb_every = 0
        self._hb_fire = None
        self._hb_countdown = 0

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: Stop (without executing) events after this cycle; the
                clock always advances to ``until``, even if the queue
                drains earlier.
            max_events: Safety valve; raise :class:`SimulationError` if more
                than this many events execute (deadlock/livelock detector
                for tests).

        Returns:
            The simulation time when the run stopped.
        """
        if self._profiler is not None or self._hb_fire is not None:
            return self._run_observed(until, max_events)
        self._running = True
        executed = 0
        # Hot-loop locals: every per-event attribute lookup hoisted once.
        heap = self._queue
        buckets = self._buckets
        heappop = heapq.heappop
        stop = sys.maxsize if until is None else until
        limit = sys.maxsize if max_events is None else max_events
        now = self._now
        cursor = self._cursor
        if cursor < now:
            cursor = now
        try:
            while True:
                if self._near:
                    bucket = buckets[cursor & 255]
                    while not bucket:
                        cursor += 1
                        bucket = buckets[cursor & 255]
                    # All entries in this bucket share one timestamp
                    # (taken from the entry, not the cursor, so the
                    # invariant is load-bearing in exactly one place).
                    time = bucket[0][0]
                    if heap and heap[0][0] <= time:
                        h_time = heap[0][0]
                        if h_time < time or heap[0][1] < bucket[0][1]:
                            # A far-scheduled event comes first.
                            if h_time > stop:
                                if stop > now:
                                    now = stop
                                break
                            entry = heappop(heap)
                            self._now = now = entry[0]
                            # The scan above may have pushed the cursor
                            # past `now`; this callback can schedule near
                            # events anywhere in [now, now + _WINDOW), so
                            # the scan must restart from `now` or those
                            # buckets are never visited again.
                            cursor = now
                            entry[2](*entry[3])
                            executed += 1
                            if executed > limit:
                                raise SimulationError(
                                    f"exceeded max_events={max_events}; "
                                    f"likely livelock"
                                )
                            continue
                    if time > stop:
                        if stop > now:
                            now = stop
                        break
                    self._now = now = time
                    if cursor < now:
                        cursor = now
                    # Drain the bucket by index: callbacks may append
                    # same-cycle events to this very list mid-drain, and
                    # a heap entry may tie this timestamp (seq decides;
                    # no new heap entry can gain this timestamp, since a
                    # same-cycle schedule always lands in the bucket).
                    i = 0
                    try:
                        if heap and heap[0][0] == time:
                            while i < len(bucket):
                                entry = bucket[i]
                                if (heap and heap[0][0] == time
                                        and heap[0][1] < entry[1]):
                                    far = heappop(heap)
                                    far[2](*far[3])
                                else:
                                    i += 1
                                    entry[2](*entry[3])
                                executed += 1
                                if executed > limit:
                                    raise SimulationError(
                                        f"exceeded max_events={max_events}; "
                                        f"likely livelock"
                                    )
                            while heap and heap[0][0] == time:
                                far = heappop(heap)
                                far[2](*far[3])
                                executed += 1
                                if executed > limit:
                                    raise SimulationError(
                                        f"exceeded max_events={max_events}; "
                                        f"likely livelock"
                                    )
                        else:
                            while i < len(bucket):
                                entry = bucket[i]
                                i += 1
                                entry[2](*entry[3])
                                executed += 1
                                if executed > limit:
                                    raise SimulationError(
                                        f"exceeded max_events={max_events}; "
                                        f"likely livelock"
                                    )
                    finally:
                        self._near -= i
                        del bucket[:i]
                elif heap:
                    time = heap[0][0]
                    if time > stop:
                        if stop > now:
                            now = stop
                        break
                    entry = heappop(heap)
                    self._now = now = time
                    cursor = now  # all buckets empty; restart scan here
                    entry[2](*entry[3])
                    executed += 1
                    if executed > limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; likely livelock"
                        )
                else:
                    if until is not None and now < until:
                        now = until
                    break
        finally:
            self._running = False
            self._now = now
            # Events scheduled between runs may land behind any scan
            # progress past `now`, so the cursor resumes from `now`
            # (rescanning a few empty buckets is cheap; missing a
            # bucket is not).
            self._cursor = now
            # Deferred flush: exact at run end (and on any exception)
            # without a per-event counter call.
            if executed:
                self._events_processed.inc(executed)
        return now

    def _run_observed(
        self, until: Optional[int] = None, max_events: Optional[int] = None
    ) -> int:
        """The instrumented twin of :meth:`run`'s hot loop.

        Executes events in exactly the same (time, seq) order as the
        fast loop — each iteration picks the global minimum of the
        calendar scan head and the heap top — but goes one event at a
        time through a single dispatch point so each callback can be
        timed (profiler) and counted (heartbeat).  Slower per event than
        the fast loop's bucket drains; that cost exists only while a
        profiler or heartbeat is attached.
        """
        self._running = True
        executed = 0
        heap = self._queue
        buckets = self._buckets
        heappop = heapq.heappop
        clock = perf_counter_ns
        profiler = self._profiler
        record = profiler.record if profiler is not None else None
        hb_fire = self._hb_fire
        hb_every = self._hb_every
        hb_left = self._hb_countdown
        base_events = self._events_processed.value
        stop = sys.maxsize if until is None else until
        limit = sys.maxsize if max_events is None else max_events
        now = self._now
        cursor = self._cursor
        if cursor < now:
            cursor = now
        run_t0 = clock()
        try:
            while True:
                entry = None
                bucket = None
                if self._near:
                    bucket = buckets[cursor & 255]
                    while not bucket:
                        cursor += 1
                        bucket = buckets[cursor & 255]
                    # One-timestamp-per-bucket invariant: bucket[0] is
                    # the earliest near event (FIFO within the cycle).
                    entry = bucket[0]
                if heap:
                    head = heap[0]
                    if entry is None or (head[0], head[1]) < (entry[0], entry[1]):
                        entry = head
                        bucket = None
                if entry is None:
                    if until is not None and now < until:
                        now = until
                    break
                time = entry[0]
                if time > stop:
                    if stop > now:
                        now = stop
                    break
                if bucket is not None:
                    del bucket[0]
                    self._near -= 1
                else:
                    heappop(heap)
                self._now = now = time
                # The callback may schedule near events behind any scan
                # progress past `now`; rescan from `now` next iteration.
                cursor = now
                fn = entry[2]
                if record is not None:
                    t0 = clock()
                    fn(*entry[3])
                    record(fn, clock() - t0)
                else:
                    fn(*entry[3])
                executed += 1
                if executed > limit:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely livelock"
                    )
                if hb_fire is not None:
                    hb_left -= 1
                    if hb_left <= 0:
                        hb_left = hb_every
                        hb_fire(now, base_events + executed,
                                self._near + len(heap))
        finally:
            self._running = False
            self._now = now
            self._cursor = now
            self._hb_countdown = hb_left
            if executed:
                self._events_processed.inc(executed)
            if profiler is not None:
                profiler.finish_run(clock() - run_t0, executed)
        return now

    def pending(self) -> int:
        """Number of events currently queued."""
        return self._near + len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now}, pending={self.pending()})"
