"""Generator-driven simulation processes.

A :class:`Process` wraps a Python generator.  The generator *yields*
request objects; an interpreter callback (supplied by the owner, e.g. the
processor model) decides what each request means and, some number of
simulated cycles later, calls :meth:`Process.resume` with a result.  The
result becomes the value of the ``yield`` expression inside the generator.

This is the standard coroutine-process pattern for execution-driven
simulation: the generator is the "program", the interpreter is the
"hardware".
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..errors import SimulationError

__all__ = ["Process"]

ProgramGen = Generator[Any, Any, Any]


class Process:
    """Drives one program generator to completion.

    Args:
        name: Human-readable identifier (used in error messages).
        generator: The program.  Each yielded value is passed to
            ``interpreter``; the process stays blocked until
            :meth:`resume` is called.
        interpreter: Callback ``interpreter(process, request)`` invoked for
            every yielded value.  It must eventually call
            ``process.resume(result)`` (possibly synchronously).
        on_exit: Optional callback invoked once when the generator returns.
    """

    def __init__(
        self,
        name: str,
        generator: ProgramGen,
        interpreter: Callable[["Process", Any], None],
        on_exit: Optional[Callable[["Process"], None]] = None,
    ) -> None:
        self.name = name
        self._gen = generator
        self._interpreter = interpreter
        self._on_exit = on_exit
        self.done = False
        self.result: Any = None
        self._blocked = False

    def start(self) -> None:
        """Advance the generator to its first yield."""
        self._step(None, first=True)

    def resume(self, value: Any = None) -> None:
        """Deliver ``value`` as the result of the pending request."""
        if self.done:
            raise SimulationError(f"process {self.name!r} resumed after exit")
        if not self._blocked:
            raise SimulationError(f"process {self.name!r} resumed while not blocked")
        self._step(value, first=False)

    def _step(self, value: Any, first: bool) -> None:
        self._blocked = False
        try:
            request = self._gen.send(None if first else value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            if self._on_exit is not None:
                self._on_exit(self)
            return
        self._blocked = True
        self._interpreter(self, request)

    @property
    def blocked(self) -> bool:
        """True while the process waits for :meth:`resume`."""
        return self._blocked

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else ("blocked" if self._blocked else "ready")
        return f"Process({self.name!r}, {state})"
