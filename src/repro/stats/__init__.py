"""Sharing-pattern and protocol statistics."""

from .contention import ContentionTracker
from .writerun import WriteRunTracker
from .collect import MachineStats

__all__ = ["ContentionTracker", "WriteRunTracker", "MachineStats"]
