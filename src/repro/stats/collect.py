"""Machine-wide statistics aggregation."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from ..obs.latency import LatencyTracker, TxnBreakdown
from ..obs.registry import MetricsRegistry
from .contention import ContentionTracker
from .writerun import WriteRunTracker

__all__ = ["MachineStats"]


@dataclass
class MachineStats:
    """All cross-cutting counters of one simulation.

    Component-local counters (cache hit rates, memory queue waits, network
    flits) live on the components (registry-backed; see
    :mod:`repro.obs.registry`); this object holds the sharing-pattern
    statistics the paper's evaluation is built on, per-transaction
    serialized-message accounting, and the per-transaction latency
    breakdown tracker.

    When attached to a registry (every :class:`~repro.machine.machine.
    Machine` does this), transaction counts and chain totals are also
    published as ``txn.<kind>.count`` / ``txn.<kind>.chain`` so they can
    be snapshotted and exported with everything else.
    """

    contention: ContentionTracker = field(default_factory=ContentionTracker)
    writerun: WriteRunTracker = field(default_factory=WriteRunTracker)
    transactions: Counter = field(default_factory=Counter)
    chain_total: Counter = field(default_factory=Counter)
    latency: LatencyTracker = field(default_factory=LatencyTracker)

    def __post_init__(self) -> None:
        self._registry: Optional[MetricsRegistry] = None
        self._txn_counters: dict[str, tuple] = {}

    def attach_registry(self, registry: MetricsRegistry) -> None:
        """Mirror transaction accounting into ``registry`` (``txn.*``)."""
        self._registry = registry
        self._txn_counters.clear()

    def note_access(self, addr: int, pid: int, is_write: bool) -> None:
        """Record a program-level access for write-run tracking."""
        self.writerun.note_access(addr, pid, is_write)

    def note_transaction(self, kind: str, chain: int) -> None:
        """Record a completed requester transaction and its chain depth."""
        self.transactions[kind] += 1
        self.chain_total[kind] += chain
        if self._registry is not None:
            pair = self._txn_counters.get(kind)
            if pair is None:
                pair = self._txn_counters[kind] = (
                    self._registry.counter(f"txn.{kind}.count"),
                    self._registry.counter(f"txn.{kind}.chain"),
                )
            pair[0].value += 1
            pair[1].value += chain

    def note_txn_latency(
        self, kind: str, policy: str, breakdown: TxnBreakdown
    ) -> None:
        """Record one transaction's finished latency breakdown."""
        self.latency.note(kind, policy, breakdown)

    def mean_chain(self, kind: str) -> float:
        """Mean serialized messages for transactions of ``kind``."""
        n = self.transactions.get(kind, 0)
        return self.chain_total.get(kind, 0) / n if n else 0.0
