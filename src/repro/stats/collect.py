"""Machine-wide statistics aggregation."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .contention import ContentionTracker
from .writerun import WriteRunTracker

__all__ = ["MachineStats"]


@dataclass
class MachineStats:
    """All cross-cutting counters of one simulation.

    Component-local counters (cache hit rates, memory queue waits, network
    flits) live on the components; this object holds the sharing-pattern
    statistics the paper's evaluation is built on, plus per-transaction
    serialized-message accounting.
    """

    contention: ContentionTracker = field(default_factory=ContentionTracker)
    writerun: WriteRunTracker = field(default_factory=WriteRunTracker)
    transactions: Counter = field(default_factory=Counter)
    chain_total: Counter = field(default_factory=Counter)

    def note_access(self, addr: int, pid: int, is_write: bool) -> None:
        """Record a program-level access for write-run tracking."""
        self.writerun.note_access(addr, pid, is_write)

    def note_transaction(self, kind: str, chain: int) -> None:
        """Record a completed requester transaction and its chain depth."""
        self.transactions[kind] += 1
        self.chain_total[kind] += chain

    def mean_chain(self, kind: str) -> float:
        """Mean serialized messages for transactions of ``kind``."""
        n = self.transactions.get(kind, 0)
        return self.chain_total.get(kind, 0) / n if n else 0.0
