"""Contention histograms (paper Figure 2).

The paper measures, at the beginning of each access to an atomically
accessed shared location, how many processors are concurrently trying to
access it.  Programs bracket each attempt (a lock acquisition, a lock-free
update) with :class:`repro.primitives.ops.ContendBegin` /
:class:`~repro.primitives.ops.ContendEnd`; the tracker samples the number
of concurrent contenders — including the newcomer — at every begin.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["ContentionTracker"]


class ContentionTracker:
    """Counts concurrent contenders per synchronization variable."""

    def __init__(self) -> None:
        self._active: dict[int, set[int]] = {}
        self.histogram: Counter[int] = Counter()
        self.per_addr: dict[int, Counter[int]] = {}

    def begin(self, addr: int, pid: int) -> None:
        """Processor ``pid`` starts contending for ``addr``."""
        active = self._active.setdefault(addr, set())
        active.add(pid)
        level = len(active)
        self.histogram[level] += 1
        self.per_addr.setdefault(addr, Counter())[level] += 1

    def end(self, addr: int, pid: int) -> None:
        """Processor ``pid`` stops contending for ``addr``."""
        active = self._active.get(addr)
        if active is not None:
            active.discard(pid)

    @property
    def samples(self) -> int:
        """Total number of access attempts recorded."""
        return sum(self.histogram.values())

    def percentage(self, level: int) -> float:
        """Percentage of accesses that saw exactly ``level`` contenders."""
        total = self.samples
        return 100.0 * self.histogram.get(level, 0) / total if total else 0.0

    def percentages(self) -> dict[int, float]:
        """Histogram normalized to percentages, keyed by contention level."""
        total = self.samples
        if not total:
            return {}
        return {
            level: 100.0 * count / total
            for level, count in sorted(self.histogram.items())
        }

    def mean_level(self) -> float:
        """Average contention level over all recorded accesses."""
        total = self.samples
        if not total:
            return 0.0
        return sum(level * n for level, n in self.histogram.items()) / total
