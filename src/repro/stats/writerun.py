"""Average write-run length (paper §4.2).

A *write run* is a sequence of consecutive writes (including atomic
updates) by one processor to an atomically accessed location with no
intervening access — read or write — by any other processor [Eggers &
Katz].  The paper reports runs of 1.70–1.83 for LocusRoute's locks,
1.59–1.62 for Cholesky's, and ≈1.0 for Transitive Closure's counter.

The tracker observes the logical access stream (every program-level read
and write of registered synchronization addresses, in serialization order)
and accumulates completed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["WriteRunTracker"]


@dataclass
class _RunState:
    writer: int | None = None
    length: int = 0


@dataclass
class _RunTotals:
    runs: int = 0
    total_length: int = 0
    histogram: dict[int, int] = field(default_factory=dict)

    def close(self, length: int) -> None:
        if length <= 0:
            return
        self.runs += 1
        self.total_length += length
        self.histogram[length] = self.histogram.get(length, 0) + 1


class WriteRunTracker:
    """Tracks write runs for registered synchronization addresses."""

    def __init__(self) -> None:
        self._registered: set[int] = set()
        self._state: dict[int, _RunState] = {}
        self._totals: dict[int, _RunTotals] = {}

    def register(self, addr: int) -> None:
        """Start tracking ``addr`` as an atomically accessed location."""
        self._registered.add(addr)

    @property
    def registered(self) -> frozenset[int]:
        """The tracked addresses."""
        return frozenset(self._registered)

    def note_access(self, addr: int, pid: int, is_write: bool) -> None:
        """Observe one access in serialization order."""
        if addr not in self._registered:
            return
        state = self._state.setdefault(addr, _RunState())
        totals = self._totals.setdefault(addr, _RunTotals())
        if is_write:
            if state.writer == pid:
                state.length += 1
            else:
                totals.close(state.length)
                state.writer = pid
                state.length = 1
        else:
            if state.writer is not None and state.writer != pid:
                # A foreign read ends the current run.
                totals.close(state.length)
                state.writer = None
                state.length = 0
            # A read by the current writer does not break its own run.

    def finalize(self) -> None:
        """Close all open runs (call at end of simulation)."""
        for addr, state in self._state.items():
            self._totals.setdefault(addr, _RunTotals()).close(state.length)
            state.writer = None
            state.length = 0

    def average(self, addr: int | None = None) -> float:
        """Average write-run length for ``addr`` (or over all addresses)."""
        if addr is not None:
            totals = self._totals.get(addr)
            if totals is None or not totals.runs:
                return 0.0
            return totals.total_length / totals.runs
        runs = sum(t.runs for t in self._totals.values())
        if not runs:
            return 0.0
        length = sum(t.total_length for t in self._totals.values())
        return length / runs

    def run_count(self, addr: int | None = None) -> int:
        """Number of completed runs."""
        if addr is not None:
            totals = self._totals.get(addr)
            return totals.runs if totals else 0
        return sum(t.runs for t in self._totals.values())
