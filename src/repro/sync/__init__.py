"""Synchronization algorithms built on the atomic primitives.

Everything here is a *simulated program fragment*: generators used with
``yield from`` inside programs running on the machine.  The library covers
the algorithms the paper's experiments use:

* lock-free counters (fetch_and_add, compare_and_swap loop, LL/SC loop);
* the test-and-test-and-set lock with bounded exponential backoff,
  implementable with any of the three primitive families;
* the MCS queue lock (native fetch_and_store + compare_and_swap, the
  LL/SC-simulated version, and the fetch_and_store-only variant);
* the scalable (MCS) tree barrier;

plus the synchronization styles the paper cites as motivation for
universal primitives:

* reader-writer locks in all three primitive families;
* lock-free objects (the Treiber stack and the Michael & Scott queue);
* the §2.2 primitive-simulation fragments (fetch_and_phi from CAS or
  LL/SC, compare_and_swap from LL/SC).
"""

from .backoff import Backoff
from .emulation import fetch_phi_via_cas, fetch_phi_via_llsc, cas_via_llsc
from .counters import increment, read_counter
from .variant import PrimitiveVariant
from .tts_lock import TtsLock
from .mcs_lock import McsLock
from .rwlock import ReaderWriterLock
from .lockfree import TreiberStack, LockFreeQueue, EMPTY
from .barrier import TreeBarrier

__all__ = [
    "Backoff",
    "fetch_phi_via_cas",
    "fetch_phi_via_llsc",
    "cas_via_llsc",
    "increment",
    "read_counter",
    "PrimitiveVariant",
    "TtsLock",
    "McsLock",
    "ReaderWriterLock",
    "TreiberStack",
    "LockFreeQueue",
    "EMPTY",
    "TreeBarrier",
]
