"""Bounded exponential backoff.

Used by the test-and-test-and-set lock, exactly as in the paper ("the
test-and-test-and-set lock with bounded exponential backoff").  Delays are
drawn uniformly from ``[0, limit)`` and the limit doubles on every failure
up to a cap, resetting on success.
"""

from __future__ import annotations

import random

from ..errors import ConfigError

__all__ = ["Backoff"]


class Backoff:
    """Per-acquisition bounded exponential backoff state."""

    def __init__(self, rng: random.Random, base: int = 16, cap: int = 1024) -> None:
        if base < 1 or cap < base:
            raise ConfigError("backoff needs 1 <= base <= cap")
        self.rng = rng
        self.base = base
        self.cap = cap
        self._limit = base

    def next_delay(self) -> int:
        """Cycles to wait before the next attempt; doubles the limit."""
        delay = self.rng.randrange(self._limit)
        self._limit = min(self._limit * 2, self.cap)
        return delay

    def reset(self) -> None:
        """Success: restart from the base limit."""
        self._limit = self.base
