"""The scalable (MCS) tree barrier [Mellor-Crummey & Scott 1991, §3.3].

Arrival climbs a 4-ary tree: each processor spins on *its own*
child-not-ready flags (in its local memory) until its subtree has arrived,
then signals its parent.  Wakeup descends a binary tree of parent-sense
flags, again with purely local spinning.  Sense reversal makes the barrier
reusable with no re-initialization.

This is the barrier the paper's Transitive Closure application uses; the
synthetic applications use the zero-cost magic barrier instead so the
barrier does not perturb the measurement.
"""

from __future__ import annotations

from ..machine.machine import Machine
from ..processor.api import Proc

__all__ = ["TreeBarrier"]

_ARRIVAL_ARITY = 4
_SPIN_MIN = 4
_SPIN_MAX = 64


class TreeBarrier:
    """A reusable sense-reversing tree barrier over all processors."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        n = machine.n_nodes
        word = machine.config.machine.word_size
        self.n = n

        # Per-processor flag blocks, homed locally.
        self._cnr_base: list[int] = []  # 4 child-not-ready words
        self._parentsense: list[int] = []
        for pid in range(n):
            cnr = machine.alloc_node_block(home=pid)
            sense_block = machine.alloc_node_block(home=pid)
            self._cnr_base.append(cnr)
            self._parentsense.append(sense_block)

        self._havechild: list[list[bool]] = []
        for pid in range(n):
            self._havechild.append(
                [
                    _ARRIVAL_ARITY * pid + j + 1 < n
                    for j in range(_ARRIVAL_ARITY)
                ]
            )
            # Initialize child-not-ready: pending for real children only.
            for j in range(_ARRIVAL_ARITY):
                machine.write_word(
                    self._cnr_base[pid] + j * word,
                    1 if self._havechild[pid][j] else 0,
                )
            machine.write_word(self._parentsense[pid], 0)

        self._word = word
        # Program-local sense values (not shared memory).
        self._sense = [1] * n

    # ------------------------------------------------------------------

    def _cnr_addr(self, pid: int, slot: int) -> int:
        return self._cnr_base[pid] + slot * self._word

    def _parent_slot(self, pid: int) -> tuple[int, int]:
        parent = (pid - 1) // _ARRIVAL_ARITY
        slot = (pid - 1) % _ARRIVAL_ARITY
        return parent, slot

    def wait(self, p: Proc):
        """Program fragment: arrive and block until all have arrived."""
        pid = p.pid
        sense = self._sense[pid]

        # Arrival: wait for our whole subtree.
        for j in range(_ARRIVAL_ARITY):
            if not self._havechild[pid][j]:
                continue
            delay = _SPIN_MIN
            while True:
                pending = yield p.load(self._cnr_addr(pid, j))
                if not pending:
                    break
                yield p.think(delay)
                delay = min(delay * 2, _SPIN_MAX)
        # Re-arm our flags for the next episode.
        for j in range(_ARRIVAL_ARITY):
            if self._havechild[pid][j]:
                yield p.store(self._cnr_addr(pid, j), 1)

        if pid != 0:
            parent, slot = self._parent_slot(pid)
            yield p.store(self._cnr_addr(parent, slot), 0)
            # Block until the wakeup wave reaches us.  The spin poll
            # interval escalates: local spinning is free on real hardware
            # but every poll is a simulated event, and the wakeup wave
            # takes log-depth time anyway.
            delay = _SPIN_MIN
            while True:
                value = yield p.load(self._parentsense[pid])
                if value == sense:
                    break
                yield p.think(delay)
                delay = min(delay * 2, _SPIN_MAX)

        # Propagate the wakeup down the binary tree.
        for child in (2 * pid + 1, 2 * pid + 2):
            if child < self.n:
                yield p.store(self._parentsense[child], sense)

        self._sense[pid] = 1 - sense
