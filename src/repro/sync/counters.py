"""Lock-free shared counters.

The first synthetic application of the paper: a counter updated with
fetch_and_add directly, or with compare_and_swap / LL-SC loops simulating
it.  The CAS loop optionally reads with ``load_exclusive`` (the paper's
recommended combination) and every variant can ``drop_copy`` the line
after the update.

These are program fragments: use ``old = yield from increment(p, addr,
variant)``.
"""

from __future__ import annotations

from ..processor.api import Proc
from ..primitives.semantics import PhiOp
from .emulation import fetch_phi_via_cas, fetch_phi_via_llsc
from .variant import PrimitiveVariant

__all__ = ["increment", "read_counter"]


def increment(p: Proc, addr: int, variant: PrimitiveVariant, amount: int = 1):
    """Atomically add ``amount`` to the counter; return the old value.

    Lock-free under every variant: some processor always completes in a
    bounded number of protocol steps.
    """
    yield p.contend_begin(addr)
    if variant.family == "fap":
        old = yield p.fetch_add(addr, amount)
    elif variant.family == "cas":
        old = yield from fetch_phi_via_cas(p, addr, PhiOp.ADD, amount,
                                           use_lx=variant.use_lx)
    else:
        old = yield from fetch_phi_via_llsc(p, addr, PhiOp.ADD, amount)
    if variant.use_drop:
        yield p.drop_copy(addr)
    yield p.contend_end(addr)
    return old


def read_counter(p: Proc, addr: int):
    """Read the counter's current value (ordinary load)."""
    value = yield p.load(addr)
    return value
