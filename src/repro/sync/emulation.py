"""Simulating one atomic primitive with another (paper §2.2).

Herlihy's hierarchy places compare_and_swap and load_linked/
store_conditional at level ∞: each can simulate any fetch_and_phi
lock-free, and LL/SC can simulate compare_and_swap (the reverse fails
because CAS cannot observe a same-value write — the ABA problem).  These
generators are those simulations, written once and shared by the lock
and counter implementations:

========================  =============================================
fragment                  semantics
========================  =============================================
:func:`fetch_phi_via_cas`   lock-free fetch_and_phi from CAS
:func:`fetch_phi_via_llsc`  lock-free fetch_and_phi from LL/SC
:func:`cas_via_llsc`        compare_and_swap from LL/SC
========================  =============================================

Each simulation of a fetch_and_phi costs at least one extra cache miss
over the native primitive (the read and the update are separate
coherence transactions) — the effect Figures 3–5 quantify.
"""

from __future__ import annotations

from ..primitives.semantics import PhiOp, apply_phi
from ..processor.api import Proc

__all__ = ["fetch_phi_via_cas", "fetch_phi_via_llsc", "cas_via_llsc"]


def fetch_phi_via_cas(p: Proc, addr: int, phi: PhiOp, operand: int = 1,
                      use_lx: bool = False):
    """Lock-free fetch_and_phi built from compare_and_swap.

    With ``use_lx`` the read acquires an exclusive copy so the
    compare_and_swap that follows hits locally — the paper's recommended
    pairing under the INV policy.  Returns the old value.
    """
    while True:
        if use_lx:
            old = yield p.load_exclusive(addr)
        else:
            old = yield p.load(addr)
        new = apply_phi(phi, old, operand)
        result = yield p.cas(addr, old, new)
        if result:
            return old


def fetch_phi_via_llsc(p: Proc, addr: int, phi: PhiOp, operand: int = 1):
    """Lock-free fetch_and_phi built from load_linked/store_conditional.

    Returns the old value.  Unlike the CAS loop this cannot suffer ABA:
    any intervening write — same value or not — fails the
    store_conditional.
    """
    while True:
        linked = yield p.ll(addr)
        new = apply_phi(phi, linked.value, operand)
        ok = yield p.sc(addr, new, linked.token)
        if ok:
            return linked.value


def cas_via_llsc(p: Proc, addr: int, expected: int, new: int):
    """compare_and_swap built from load_linked/store_conditional.

    Returns True on success.  Strictly *stronger* than a hardware CAS:
    it fails if the word was written at all since the load_linked, even
    back to ``expected`` — which is why the reverse simulation is
    impossible (§2.2).  A spurious store_conditional failure retries.
    """
    while True:
        linked = yield p.ll(addr)
        if linked.value != expected:
            return False
        ok = yield p.sc(addr, new, linked.token)
        if ok:
            return True
