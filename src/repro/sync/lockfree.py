"""Lock-free data structures built on the universal primitives.

The paper's case for compare_and_swap and load_linked/store_conditional
is that they enable lock-free object implementations (§1, §2.2).  This
module provides two classics on the simulated machine:

* :class:`TreiberStack` — the IBM/Treiber lock-free stack: a single
  top-of-stack pointer updated with CAS (or an LL/SC loop).
* :class:`LockFreeQueue` — the Michael & Scott lock-free FIFO queue
  (the same Michael as the paper): head/tail pointers with helping, a
  dummy node, and per-node next links, all swung by CAS.

Nodes are preallocated from a shared pool and never reused, which keeps
the CAS variants immune to the ABA problem the paper discusses; the
LL/SC variants are reservation-protected and would tolerate reuse.
Pointers are encoded as small integers (0 is null) naming nodes in a
Python-side address table — the moral equivalent of indices into a node
arena.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..coherence.policy import SyncPolicy
from ..errors import ConfigError, ProgramError
from ..machine.machine import Machine
from ..processor.api import Proc
from .variant import PrimitiveVariant

__all__ = ["TreiberStack", "LockFreeQueue", "EMPTY"]

EMPTY = object()
"""Sentinel returned by ``pop``/``dequeue`` on an empty structure."""

_NULL = 0


@dataclass(frozen=True)
class _Node:
    """Word addresses of one arena node."""

    value: int
    next: int


class _NodeArena:
    """A shared pool of nodes with an atomic allocation cursor."""

    def __init__(self, machine: Machine, capacity: int,
                 cursor_policy: SyncPolicy) -> None:
        if capacity < 1:
            raise ConfigError("node arena needs capacity >= 1")
        word = machine.config.machine.word_size
        self.capacity = capacity
        self._nodes = []
        for i in range(capacity):
            base = machine.alloc_node_block(home=i % machine.n_nodes)
            self._nodes.append(_Node(value=base, next=base + word))
        # The allocation cursor is itself a lock-free fetch_and_add
        # counter; UNC keeps it cheap under bursts (paper §4.3.2).
        self.cursor = machine.alloc_sync(cursor_policy, home=0)

    def node(self, code: int) -> _Node:
        """The node named by pointer code ``code`` (1-based)."""
        return self._nodes[code - 1]

    def allocate(self, p: Proc):
        """Program fragment: grab a fresh node; returns its code."""
        index = yield p.fetch_add(self.cursor, 1)
        if index >= self.capacity:
            raise ProgramError(
                f"node arena exhausted ({self.capacity} nodes); size the "
                "structure for the workload"
            )
        return index + 1


class _PointerOps:
    """CAS- or LL/SC-based atomic pointer update, per the variant."""

    def __init__(self, variant: PrimitiveVariant) -> None:
        if variant.family not in ("cas", "llsc"):
            raise ConfigError(
                "lock-free structures need a universal primitive "
                "(cas or llsc), not fetch_and_phi"
            )
        self.variant = variant

    def compare_swap(self, p: Proc, addr: int, expected: int, new: int):
        """Program fragment: one atomic pointer-swing attempt."""
        if self.variant.family == "cas":
            result = yield p.cas(addr, expected, new)
            return bool(result)
        while True:
            linked = yield p.ll(addr)
            if linked.value != expected:
                return False
            ok = yield p.sc(addr, new, linked.token)
            if ok:
                return True
            # Spurious-failure retry: re-linked value decides.


class TreiberStack:
    """A lock-free LIFO stack (Treiber, IBM 1986)."""

    def __init__(
        self,
        machine: Machine,
        variant: PrimitiveVariant,
        capacity: int = 256,
        home: int = 0,
    ) -> None:
        self.machine = machine
        self.ops = _PointerOps(variant)
        self.top = machine.alloc_sync(variant.policy, home=home)
        self.arena = _NodeArena(machine, capacity, SyncPolicy.UNC)

    def push(self, p: Proc, value: int):
        """Program fragment: push ``value``; lock-free."""
        code = yield from self.arena.allocate(p)
        node = self.arena.node(code)
        yield p.store(node.value, value)
        while True:
            top = yield p.load(self.top)
            yield p.store(node.next, top)
            ok = yield from self.ops.compare_swap(p, self.top, top, code)
            if ok:
                return

    def pop(self, p: Proc):
        """Program fragment: pop a value, or :data:`EMPTY`."""
        while True:
            top = yield p.load(self.top)
            if top == _NULL:
                return EMPTY
            node = self.arena.node(top)
            succ = yield p.load(node.next)
            ok = yield from self.ops.compare_swap(p, self.top, top, succ)
            if ok:
                value = yield p.load(node.value)
                return value


class LockFreeQueue:
    """The Michael & Scott lock-free FIFO queue (PODC 1996).

    ``head`` points at a dummy node; ``tail`` may lag by one and is
    helped forward by any operation that notices.  Both are
    synchronization variables under the chosen policy; node links are
    ordinary shared memory updated with the same universal primitive.
    """

    def __init__(
        self,
        machine: Machine,
        variant: PrimitiveVariant,
        capacity: int = 256,
        home: int = 0,
    ) -> None:
        self.machine = machine
        self.ops = _PointerOps(variant)
        self.head = machine.alloc_sync(variant.policy, home=home)
        self.tail = machine.alloc_sync(variant.policy, home=home)
        self.arena = _NodeArena(machine, capacity + 1, SyncPolicy.UNC)
        # Install the dummy node (code 1) before any program runs, and
        # advance the allocation cursor past it.
        machine.write_word(self.head, 1)
        machine.write_word(self.tail, 1)
        machine.write_word(self.arena.cursor, 1)

    def enqueue(self, p: Proc, value: int):
        """Program fragment: append ``value``; lock-free."""
        code = yield from self.arena.allocate(p)
        node = self.arena.node(code)
        yield p.store(node.value, value)
        yield p.store(node.next, _NULL)
        while True:
            tail = yield p.load(self.tail)
            tail_node = self.arena.node(tail)
            succ = yield p.load(tail_node.next)
            recheck = yield p.load(self.tail)
            if tail != recheck:
                continue
            if succ == _NULL:
                ok = yield from self.ops.compare_swap(
                    p, tail_node.next, _NULL, code)
                if ok:
                    break
            else:
                # Help a lagging tail forward.
                yield from self.ops.compare_swap(p, self.tail, tail, succ)
        yield from self.ops.compare_swap(p, self.tail, tail, code)

    def dequeue(self, p: Proc):
        """Program fragment: remove the oldest value, or :data:`EMPTY`."""
        while True:
            head = yield p.load(self.head)
            tail = yield p.load(self.tail)
            head_node = self.arena.node(head)
            succ = yield p.load(head_node.next)
            recheck = yield p.load(self.head)
            if head != recheck:
                continue
            if head == tail:
                if succ == _NULL:
                    return EMPTY
                # Tail lags behind a half-finished enqueue: help it.
                yield from self.ops.compare_swap(p, self.tail, tail, succ)
                continue
            succ_node = self.arena.node(succ)
            value = yield p.load(succ_node.value)
            ok = yield from self.ops.compare_swap(p, self.head, head, succ)
            if ok:
                return value
