"""The MCS queue-based spin lock [Mellor-Crummey & Scott 1991].

Each processor spins only on a flag in its own queue node, which lives in
its local memory — the locality property that makes MCS scale.  The lock
variable proper is the queue *tail*, the only synchronization variable.

Three implementations, selected by the primitive family of the variant:

* ``cas``  — native ``fetch_and_store`` for enqueue and native
  ``compare_and_swap`` for the release fast path (the paper's third
  synthetic application: "load_linked/store_conditional simulates
  compare_and_swap" is measured against this);
* ``llsc`` — both ``fetch_and_store`` and ``compare_and_swap`` are
  simulated with load_linked / store_conditional loops;
* ``fap``  — ``fetch_and_store`` only, using the no-compare_and_swap
  release of the MCS paper (§ "lock with fetch_and_store only"), which
  can momentarily splice waiters out and back in.

Queue nodes are encoded as small integers (0 is nil, processor ``i`` is
``i + 1``) stored in the tail word, with a Python-side table mapping codes
to the nodes' word addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.machine import Machine
from ..processor.api import Proc
from ..primitives.semantics import PhiOp
from .emulation import cas_via_llsc, fetch_phi_via_llsc
from .variant import PrimitiveVariant

__all__ = ["McsLock"]

_NIL = 0
_SPIN_MIN = 4
_SPIN_MAX = 64


@dataclass(frozen=True)
class _QNode:
    """Word addresses of one processor's queue node fields."""

    next: int
    locked: int


class McsLock:
    """An MCS lock: a tail synchronization variable plus per-CPU nodes."""

    def __init__(
        self, machine: Machine, variant: PrimitiveVariant, home: int = 0
    ) -> None:
        self.machine = machine
        self.variant = variant
        self.addr = machine.alloc_sync(variant.policy, home=home)
        word = machine.config.machine.word_size
        self._nodes: list[_QNode] = []
        for pid in range(machine.n_nodes):
            base = machine.alloc_node_block(home=pid)
            self._nodes.append(_QNode(next=base, locked=base + word))

    def _qnode(self, code: int) -> _QNode:
        return self._nodes[code - 1]

    # ------------------------------------------------------------------
    # Primitive selection.
    # ------------------------------------------------------------------

    def _fetch_store(self, p: Proc, value: int):
        """Atomic swap on the tail, native or LL/SC-simulated."""
        if self.variant.family == "llsc":
            old = yield from fetch_phi_via_llsc(p, self.addr, PhiOp.STORE,
                                                value)
            return old
        old = yield p.fetch_store(self.addr, value)
        return old

    def _cas_tail(self, p: Proc, expected: int, new: int):
        """compare_and_swap on the tail, native or LL/SC-simulated."""
        if self.variant.family == "llsc":
            ok = yield from cas_via_llsc(p, self.addr, expected, new)
            return ok
        result = yield p.cas(self.addr, expected, new)
        return bool(result)

    # ------------------------------------------------------------------
    # Lock operations (program fragments).
    # ------------------------------------------------------------------

    def acquire(self, p: Proc):
        """Enqueue our node and spin locally until granted."""
        me = p.pid + 1
        mine = self._nodes[p.pid]
        yield p.store(mine.next, _NIL)
        yield p.contend_begin(self.addr)
        pred = yield from self._fetch_store(p, me)
        if pred != _NIL:
            yield p.store(mine.locked, 1)
            yield p.store(self._qnode(pred).next, me)
            delay = _SPIN_MIN
            while True:
                locked = yield p.load(mine.locked)
                if not locked:
                    break
                yield p.think(delay)
                delay = min(delay * 2, _SPIN_MAX)
        yield p.contend_end(self.addr)

    def release(self, p: Proc):
        """Hand the lock to our successor (or empty the queue)."""
        me = p.pid + 1
        mine = self._nodes[p.pid]
        succ = yield p.load(mine.next)
        if succ != _NIL:
            yield p.store(self._qnode(succ).locked, 0)
        elif self.variant.family == "fap":
            yield from self._release_no_cas(p, me, mine)
        else:
            swung = yield from self._cas_tail(p, me, _NIL)
            if not swung:
                # A successor is enqueueing; wait for the link, then grant.
                succ = yield from self._await_successor(p, mine)
                yield p.store(self._qnode(succ).locked, 0)
        if self.variant.use_drop:
            yield p.drop_copy(self.addr)

    def _release_no_cas(self, p: Proc, me: int, mine: _QNode):
        """MCS release using only fetch_and_store (no compare_and_swap).

        If new waiters slipped in, they are atomically detached and then
        re-attached behind any "usurpers" that enqueued in the window —
        the trade-off the MCS paper accepts for machines without CAS.
        """
        old_tail = yield from self._fetch_store(p, _NIL)
        if old_tail == me:
            return
        usurper = yield from self._fetch_store(p, old_tail)
        succ = yield from self._await_successor(p, mine)
        if usurper != _NIL:
            yield p.store(self._qnode(usurper).next, succ)
        else:
            yield p.store(self._qnode(succ).locked, 0)

    def _await_successor(self, p: Proc, mine: _QNode):
        delay = _SPIN_MIN
        while True:
            succ = yield p.load(mine.next)
            if succ != _NIL:
                return succ
            yield p.think(delay)
            delay = min(delay * 2, _SPIN_MAX)
