"""Reader-writer locks built from the atomic primitives.

The paper motivates general-purpose primitives partly by the variety of
synchronization styles they enable, citing reader-writer locks
[Mellor-Crummey & Scott, PPoPP 1991].  This module provides a centralized
reader-preference reader-writer lock in three flavours, one per primitive
family:

* ``cas``  — a single status word: bit 0 is the writer-active flag, the
  upper bits count active readers.  Readers enter with a CAS loop that
  bumps the count while the writer bit is clear; the writer enters with
  ``compare_and_swap(status, 0, WRITER)``.
* ``llsc`` — the same single-word algorithm with LL/SC loops.
* ``fap``  — fetch_and_phi only (no comparison primitive): readers
  announce with ``fetch_and_add`` and back out if they raced a writer;
  the writer claims a ``test_and_set`` flag inside the same word with
  ``fetch_and_or`` and then waits for the reader count to drain.

All three spin with bounded exponential backoff on contended entry.
"""

from __future__ import annotations

from ..machine.machine import Machine
from ..processor.api import Proc
from ..primitives.semantics import WORD_MASK
from .backoff import Backoff
from .variant import PrimitiveVariant

__all__ = ["ReaderWriterLock"]

_WRITER = 1          # bit 0: writer active (or claiming, for fap)
_READER = 2          # reader count increment (upper 31 bits)
_SPIN_DELAY = 8


class ReaderWriterLock:
    """A reader-preference reader-writer lock on one status word."""

    def __init__(
        self, machine: Machine, variant: PrimitiveVariant, home: int = 0
    ) -> None:
        self.machine = machine
        self.variant = variant
        self.addr = machine.alloc_sync(variant.policy, home=home)

    # ------------------------------------------------------------------
    # Reader side.
    # ------------------------------------------------------------------

    def acquire_read(self, p: Proc):
        """Program fragment: enter a read-side critical section."""
        yield p.contend_begin(self.addr)
        if self.variant.family == "fap":
            yield from self._fap_acquire_read(p)
        else:
            yield from self._word_acquire_read(p)
        yield p.contend_end(self.addr)

    def release_read(self, p: Proc):
        """Program fragment: leave a read-side critical section."""
        if self.variant.family == "fap":
            yield p.fetch_add(self.addr, (-_READER) & WORD_MASK)
        elif self.variant.family == "cas":
            while True:
                status = yield p.load(self.addr)
                ok = yield p.cas(self.addr, status, status - _READER)
                if ok:
                    return
        else:
            while True:
                linked = yield p.ll(self.addr)
                ok = yield p.sc(self.addr, linked.value - _READER,
                                linked.token)
                if ok:
                    return

    def _word_acquire_read(self, p: Proc):
        """CAS/LLSC readers: bump the count while no writer holds."""
        backoff = Backoff(p.rng)
        while True:
            status = yield p.load(self.addr)
            if status & _WRITER:
                yield p.think(backoff.next_delay())
                continue
            if self.variant.family == "cas":
                ok = yield p.cas(self.addr, status, status + _READER)
            else:
                linked = yield p.ll(self.addr)
                if linked.value & _WRITER:
                    yield p.think(backoff.next_delay())
                    continue
                ok = yield p.sc(self.addr, linked.value + _READER,
                                linked.token)
            if ok:
                return
            yield p.think(backoff.next_delay())

    def _fap_acquire_read(self, p: Proc):
        """fetch_and_phi readers: announce, then back out on a writer.

        Without a comparison primitive a reader cannot atomically check
        and increment, so it increments optimistically and retracts if a
        writer already claimed the word (the classic counter-based
        algorithm).
        """
        backoff = Backoff(p.rng)
        while True:
            old = yield p.fetch_add(self.addr, _READER)
            if not old & _WRITER:
                return
            yield p.fetch_add(self.addr, (-_READER) & WORD_MASK)
            while True:
                status = yield p.load(self.addr)
                if not status & _WRITER:
                    break
                yield p.think(backoff.next_delay())

    # ------------------------------------------------------------------
    # Writer side.
    # ------------------------------------------------------------------

    def acquire_write(self, p: Proc):
        """Program fragment: enter the (exclusive) write-side section."""
        yield p.contend_begin(self.addr)
        if self.variant.family == "fap":
            yield from self._fap_acquire_write(p)
        else:
            yield from self._word_acquire_write(p)
        yield p.contend_end(self.addr)

    def release_write(self, p: Proc):
        """Program fragment: leave the write-side section."""
        if self.variant.family == "fap":
            yield p.fetch_add(self.addr, (-_WRITER) & WORD_MASK)
            return
        if self.variant.family == "cas":
            while True:
                status = yield p.load(self.addr)
                ok = yield p.cas(self.addr, status, status & ~_WRITER)
                if ok:
                    return
        else:
            while True:
                linked = yield p.ll(self.addr)
                ok = yield p.sc(self.addr, linked.value & ~_WRITER,
                                linked.token)
                if ok:
                    return

    def _word_acquire_write(self, p: Proc):
        """CAS/LLSC writer: swing the whole word from 0 to WRITER."""
        backoff = Backoff(p.rng)
        while True:
            status = yield p.load(self.addr)
            if status == 0:
                if self.variant.family == "cas":
                    ok = yield p.cas(self.addr, 0, _WRITER)
                else:
                    linked = yield p.ll(self.addr)
                    if linked.value != 0:
                        yield p.think(backoff.next_delay())
                        continue
                    ok = yield p.sc(self.addr, _WRITER, linked.token)
                if ok:
                    return
            yield p.think(backoff.next_delay())

    def _fap_acquire_write(self, p: Proc):
        """fetch_and_phi writer: claim the flag, then drain readers.

        ``fetch_and_or`` atomically claims the writer bit; a loser spins
        and retries.  The winner then waits for the announced readers to
        retract or finish (they observe the claimed bit and back out).
        """
        backoff = Backoff(p.rng)
        while True:
            old = yield p.fetch_or(self.addr, _WRITER)
            if not old & _WRITER:
                break
            yield p.think(backoff.next_delay())
        # Claimed; wait until all readers have drained.
        while True:
            status = yield p.load(self.addr)
            if status == _WRITER:
                return
            yield p.think(_SPIN_DELAY)
