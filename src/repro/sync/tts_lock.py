"""Test-and-test-and-set lock with bounded exponential backoff.

The lock used for the paper's "real" applications (it replaced the SPLASH
library locks) and for the second synthetic application.  The *test*
phase spins on ordinary loads; the *set* phase attempts the atomic update
with whichever primitive family the experiment selects:

* ``fap``  — ``test_and_set`` proper;
* ``cas``  — ``compare_and_swap(lock, 0, 1)``, optionally preceded by a
  ``load_exclusive`` confirming read (the paper's recommended pairing);
* ``llsc`` — a load_linked / store_conditional attempt.

Backoff bounds contention: each failed attempt waits a random delay whose
limit doubles up to a cap [Mellor-Crummey & Scott].
"""

from __future__ import annotations

from ..machine.machine import Machine
from ..processor.api import Proc
from .backoff import Backoff
from .variant import PrimitiveVariant

__all__ = ["TtsLock"]

_FREE = 0
_HELD = 1


class TtsLock:
    """A test-and-test-and-set lock on one synchronization variable."""

    def __init__(
        self,
        machine: Machine,
        variant: PrimitiveVariant,
        home: int = 0,
        backoff_base: int = 16,
        backoff_cap: int = 16384,
    ) -> None:
        self.machine = machine
        self.variant = variant
        self.addr = machine.alloc_sync(variant.policy, home=home)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap

    def acquire(self, p: Proc):
        """Program fragment: acquire the lock (``yield from``)."""
        addr = self.addr
        backoff = Backoff(p.rng, self.backoff_base, self.backoff_cap)
        yield p.contend_begin(addr)
        while True:
            # Test phase: spin on ordinary loads until the lock looks free.
            value = yield p.load(addr)
            if value != _FREE:
                yield p.think(backoff.next_delay())
                continue
            # Set phase: one atomic attempt.
            acquired = yield from self._attempt(p)
            if acquired:
                break
            yield p.think(backoff.next_delay())
        yield p.contend_end(addr)

    def _attempt(self, p: Proc):
        variant = self.variant
        addr = self.addr
        if variant.family == "fap":
            old = yield p.test_and_set(addr)
            return old == _FREE
        if variant.family == "cas":
            if variant.use_lx:
                # Confirming read that also acquires the line exclusive,
                # so the compare_and_swap that follows hits locally.
                value = yield p.load_exclusive(addr)
                if value != _FREE:
                    return False
            result = yield p.cas(addr, _FREE, _HELD)
            return bool(result)
        # llsc
        linked = yield p.ll(addr)
        if linked.value != _FREE:
            return False
        ok = yield p.sc(addr, _HELD, linked.token)
        return bool(ok)

    def release(self, p: Proc):
        """Program fragment: release the lock (``yield from``)."""
        yield p.store(self.addr, _FREE)
        if self.variant.use_drop:
            yield p.drop_copy(self.addr)
