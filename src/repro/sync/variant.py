"""Primitive-variant descriptors.

Every bar in the paper's Figures 3–5 is one combination of

* a primitive family — ``fap`` (fetch_and_phi), ``cas``
  (compare_and_swap), or ``llsc`` (load_linked/store_conditional);
* a coherence policy for the synchronization variable — INV, INVd, INVs,
  UPD, or UNC;
* the auxiliary instructions in use — ``load_exclusive`` before CAS
  (INV only) and/or ``drop_copy`` after the update/release.

:class:`PrimitiveVariant` bundles these so application code can be written
once and swept over every variant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..coherence.policy import SyncPolicy
from ..errors import ConfigError

__all__ = ["PrimitiveVariant"]

_FAMILIES = ("fap", "cas", "llsc")


@dataclass(frozen=True)
class PrimitiveVariant:
    """One primitive/policy/auxiliary combination."""

    family: str
    policy: SyncPolicy
    use_lx: bool = False
    use_drop: bool = False

    def __post_init__(self) -> None:
        if self.family not in _FAMILIES:
            raise ConfigError(f"family must be one of {_FAMILIES}")
        if self.use_lx and self.family != "cas":
            raise ConfigError("load_exclusive only applies to compare_and_swap")
        if self.use_lx and self.policy is not SyncPolicy.INV:
            raise ConfigError("load_exclusive pairs with the plain INV policy")
        if self.policy in (SyncPolicy.INVD, SyncPolicy.INVS) and self.family != "cas":
            raise ConfigError("INVd/INVs are compare_and_swap variants")
        if self.use_drop and not self.policy.cached:
            raise ConfigError("drop_copy is meaningless for uncached data")

    @property
    def label(self) -> str:
        """Display label, e.g. ``"CAS/INVd"`` or ``"CAS+lx/INV+dc"``."""
        fam = {"fap": "FAP", "cas": "CAS", "llsc": "LLSC"}[self.family]
        if self.use_lx:
            fam += "+lx"
        name = f"{fam}/{self.policy.value}"
        if self.use_drop:
            name += "+dc"
        return name
