"""History recording and correctness checkers for concurrent objects."""

from .history import History, Event
from .checkers import (
    check_counter_history,
    check_stack_history,
    check_queue_history,
    check_mutual_exclusion,
    CheckFailure,
)

__all__ = [
    "History",
    "Event",
    "check_counter_history",
    "check_stack_history",
    "check_queue_history",
    "check_mutual_exclusion",
    "CheckFailure",
]
