"""Correctness checkers over operation histories.

Full linearizability checking is NP-hard; these checkers validate
conditions that are (a) exactly decidable and (b) strong enough to catch
real protocol bugs — lost updates, duplicated or invented elements,
broken FIFO/LIFO order, overlapping critical sections:

* histories with **no concurrency** are replayed against the sequential
  specification and must match exactly;
* concurrent histories are checked for *element conservation* (nothing
  lost, nothing invented, nothing duplicated) plus order conditions that
  every linearizable execution must satisfy (per-producer FIFO for
  queues, a complete increment chain for counters).

Each checker raises :class:`CheckFailure` with a specific complaint.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Iterable

from .history import History

__all__ = [
    "CheckFailure",
    "check_counter_history",
    "check_stack_history",
    "check_queue_history",
    "check_mutual_exclusion",
]


class CheckFailure(AssertionError):
    """A history violated its object's specification."""


def _is_sequential(history: History) -> bool:
    events = sorted(history.events, key=lambda e: e.start)
    return all(first.end <= second.start
               for first, second in zip(events, events[1:]))


def check_counter_history(history: History, initial: int = 0) -> None:
    """Validate fetch_and_add-style events (op ``"inc"``).

    Each event's result must be the counter's pre-value.  The pre-values
    must chain: starting from ``initial``, following each observed
    ``pre -> pre + amount`` edge visits every event exactly once.  Any
    lost or duplicated increment breaks the chain.
    """
    events = history.of_op("inc")
    if not events:
        return
    seen = [e.result for e in events]
    if len(set(seen)) != len(seen):
        raise CheckFailure("duplicate counter pre-values (lost update)")
    chain = {e.result: e.result + e.arg for e in events}
    cursor = initial
    for _ in events:
        if cursor not in chain:
            raise CheckFailure(
                f"no increment observed pre-value {cursor}; "
                "updates were lost or reordered impossibly"
            )
        cursor = chain.pop(cursor)
    total = initial + sum(e.arg for e in events)
    if cursor != total:
        raise CheckFailure(f"increment chain ends at {cursor}, not {total}")


def _element_conservation(
    pushed: Iterable[Any], popped: Iterable[Any], leftovers: Iterable[Any]
) -> None:
    inserted = Counter(pushed)
    removed = Counter(popped) + Counter(leftovers)
    if inserted != removed:
        missing = inserted - removed
        extra = removed - inserted
        raise CheckFailure(
            f"element conservation violated: missing={dict(missing)}, "
            f"invented={dict(extra)}"
        )


def check_stack_history(history: History,
                        leftovers: Iterable[Any] = ()) -> None:
    """Validate push/pop events (ops ``"push"``/``"pop"``) of a stack.

    Always checks element conservation.  If the history is fully
    sequential it is additionally replayed against a list-based stack and
    every pop (including empty ones) must return exactly what the
    reference returns.
    """
    pushes = history.of_op("push")
    pops = history.of_op("pop")
    real_pops = [e for e in pops if not _is_empty(e.result)]
    _element_conservation((e.arg for e in pushes),
                          (e.result for e in real_pops), leftovers)

    if not _is_sequential(history):
        return
    reference: list[Any] = []
    for event in history.by_completion():
        if event.op == "push":
            reference.append(event.arg)
        elif event.op == "pop":
            if _is_empty(event.result):
                if reference:
                    raise CheckFailure(
                        f"pop at t={event.start} returned EMPTY with "
                        f"{len(reference)} elements stacked"
                    )
            else:
                expected = reference.pop() if reference else None
                if event.result != expected:
                    raise CheckFailure(
                        f"LIFO violation: pop returned {event.result}, "
                        f"top was {expected}"
                    )


def check_queue_history(history: History,
                        leftovers: Iterable[Any] = ()) -> None:
    """Validate enqueue/dequeue events (ops ``"enq"``/``"deq"``).

    Always checks element conservation and per-producer FIFO order (a
    consequence of linearizability).  Fully sequential histories are
    replayed exactly against a reference queue.
    """
    enqueues = history.of_op("enq")
    dequeues = history.of_op("deq")
    real_dequeues = [e for e in dequeues if not _is_empty(e.result)]
    _element_conservation((e.arg for e in enqueues),
                          (e.result for e in real_dequeues), leftovers)

    per_producer: dict[int, list[Any]] = defaultdict(list)
    for event in sorted(enqueues, key=lambda e: (e.end, e.start)):
        per_producer[event.pid].append(event.arg)
    dequeue_position = {e.result: i
                        for i, e in enumerate(history.by_completion())
                        if e.op == "deq" and not _is_empty(e.result)}
    for pid, items in per_producer.items():
        positions = [dequeue_position[item] for item in items
                     if item in dequeue_position]
        if positions != sorted(positions):
            raise CheckFailure(
                f"producer {pid}'s elements dequeued out of order"
            )

    if not _is_sequential(history):
        return
    reference: list[Any] = []
    for event in history.by_completion():
        if event.op == "enq":
            reference.append(event.arg)
        elif event.op == "deq":
            if _is_empty(event.result):
                if reference:
                    raise CheckFailure(
                        f"dequeue at t={event.start} returned EMPTY with "
                        f"{len(reference)} elements queued"
                    )
            else:
                expected = reference.pop(0) if reference else None
                if event.result != expected:
                    raise CheckFailure(
                        f"FIFO violation: dequeue returned "
                        f"{event.result}, head was {expected}"
                    )


def check_mutual_exclusion(history: History) -> None:
    """Validate critical-section events (op ``"cs"``): no two overlap."""
    sections = sorted(history.of_op("cs"), key=lambda e: e.start)
    for first, second in zip(sections, sections[1:]):
        if second.start < first.end:
            raise CheckFailure(
                f"critical sections overlap: cpu{first.pid} "
                f"[{first.start},{first.end}] and cpu{second.pid} "
                f"[{second.start},{second.end}]"
            )


def _is_empty(result: Any) -> bool:
    from ..sync.lockfree import EMPTY

    return result is EMPTY or result is None
