"""Operation histories of simulated concurrent objects.

A :class:`History` collects timestamped operation records — invocation
time, response time, operation name, argument, and result — from
simulated programs.  The checkers in :mod:`repro.verify.checkers` consume
these histories to validate concurrent objects (counters, stacks, queues,
critical sections) against their sequential specifications.

Programs record through :meth:`History.wrap`:

.. code-block:: python

    history = History(machine)

    def program(p):
        with_result = yield from history.wrap(
            p, "push", 5, stack.push(p, 5))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["Event", "History"]


@dataclass(frozen=True)
class Event:
    """One completed operation."""

    pid: int
    op: str
    arg: Any
    result: Any
    start: int
    end: int

    def overlaps(self, other: "Event") -> bool:
        """True if the two operations were concurrent."""
        return self.start <= other.end and other.start <= self.end

    def precedes(self, other: "Event") -> bool:
        """True if this operation completed before the other began."""
        return self.end < other.start


class History:
    """An append-only log of operations against one shared object."""

    def __init__(self, machine: Any) -> None:
        self.machine = machine
        self.events: list[Event] = []

    def wrap(self, p: Any, op: str, arg: Any, fragment):
        """Program fragment: run ``fragment`` and record it.

        ``fragment`` is a generator (e.g. ``stack.push(p, v)``); its
        return value becomes the event's result and is also returned.
        """
        start = self.machine.now
        result = yield from fragment
        self.events.append(
            Event(pid=p.pid, op=op, arg=arg, result=result,
                  start=start, end=self.machine.now)
        )
        return result

    def record(self, pid: int, op: str, arg: Any, result: Any,
               start: int, end: Optional[int] = None) -> None:
        """Append an event directly (for tests and custom recorders)."""
        self.events.append(
            Event(pid=pid, op=op, arg=arg, result=result, start=start,
                  end=end if end is not None else start)
        )

    def by_completion(self) -> list[Event]:
        """Events sorted by response time (ties by invocation)."""
        return sorted(self.events, key=lambda e: (e.end, e.start))

    def of_op(self, *ops: str) -> list[Event]:
        """Events whose operation name is one of ``ops``."""
        return [e for e in self.events if e.op in ops]

    def __len__(self) -> int:
        return len(self.events)
