"""AppResult semantics."""

from repro.apps.common import AppResult


def test_avg_cycles():
    result = AppResult(name="x", label="y", cycles=100, updates=4)
    assert result.avg_cycles == 25.0


def test_avg_cycles_no_updates():
    result = AppResult(name="x", label="y", cycles=100, updates=0)
    assert result.avg_cycles == 0.0


def test_default_collections_are_independent():
    a = AppResult(name="a", label="l", cycles=1, updates=1)
    b = AppResult(name="b", label="l", cycles=1, updates=1)
    a.extra["k"] = 1
    a.contention_histogram[1] = 50.0
    assert b.extra == {}
    assert b.contention_histogram == {}
