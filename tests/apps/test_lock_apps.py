"""LocusRoute-like and Cholesky-like kernels: sharing patterns."""

from repro.apps.cholesky import run_cholesky
from repro.apps.locusroute import run_locusroute
from repro.coherence.policy import SyncPolicy
from repro.config import SimConfig
from repro.sync.variant import PrimitiveVariant

CFG8 = SimConfig().with_nodes(8)
FAP_INV = PrimitiveVariant("fap", SyncPolicy.INV)


class TestLocusRoute:
    def test_all_wires_routed(self):
        result = run_locusroute(FAP_INV, n_wires=24, config=CFG8)
        # Every wire updates 4 cost words in 1-2 regions, each by +1:
        # total cost mass equals total region updates.
        assert result.extra["cost_total"] % 4 == 0
        assert result.extra["cost_total"] >= 24 * 4

    def test_deterministic_across_runs(self):
        a = run_locusroute(FAP_INV, n_wires=16, config=CFG8)
        b = run_locusroute(FAP_INV, n_wires=16, config=CFG8)
        assert a.cycles == b.cycles
        assert a.extra["cost_total"] == b.extra["cost_total"]

    def test_workload_identical_across_variants(self):
        # The routing plan must not depend on the primitive under test,
        # or Figure 6 comparisons would be apples to oranges.
        a = run_locusroute(FAP_INV, n_wires=16, config=CFG8)
        b = run_locusroute(PrimitiveVariant("cas", SyncPolicy.UNC),
                           n_wires=16, config=CFG8)
        assert a.extra["cost_total"] == b.extra["cost_total"]

    def test_mostly_uncontended(self):
        result = run_locusroute(FAP_INV, config=CFG8)
        assert result.contention_histogram.get(1, 0) > 50.0

    def test_runs_under_all_policies(self):
        for policy in (SyncPolicy.UNC, SyncPolicy.UPD):
            result = run_locusroute(PrimitiveVariant("fap", policy),
                                    n_wires=16, config=CFG8)
            assert result.cycles > 0


class TestCholesky:
    def test_completes_and_measures(self):
        result = run_cholesky(FAP_INV, n_columns=24, config=CFG8)
        assert result.name == "cholesky"
        assert result.cycles > 0
        assert result.updates > 0

    def test_deterministic(self):
        a = run_cholesky(FAP_INV, n_columns=16, config=CFG8)
        b = run_cholesky(FAP_INV, n_columns=16, config=CFG8)
        assert a.cycles == b.cycles

    def test_mostly_uncontended(self):
        result = run_cholesky(FAP_INV, config=CFG8)
        assert result.contention_histogram.get(1, 0) > 50.0

    def test_write_run_in_lock_regime(self):
        # Lock-dominated sharing: average write run must sit between the
        # alternating-writer floor (1) and the uncontended ceiling (2).
        result = run_cholesky(FAP_INV, config=CFG8)
        assert 1.0 <= result.write_run <= 2.1

    def test_runs_under_all_policies(self):
        for policy in (SyncPolicy.UNC, SyncPolicy.UPD):
            result = run_cholesky(PrimitiveVariant("llsc", policy),
                                  n_columns=16, config=CFG8)
            assert result.cycles > 0
