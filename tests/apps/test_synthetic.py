"""The synthetic applications: sharing-pattern control and measurement."""

import pytest

from repro.apps.synthetic import (
    SyntheticSpec,
    burst_lengths,
    run_lockfree_counter,
    run_mcs_counter,
    run_tts_counter,
)
from repro.coherence.policy import SyncPolicy
from repro.config import SimConfig
from repro.errors import ConfigError
from repro.sync.variant import PrimitiveVariant

CFG8 = SimConfig().with_nodes(8)
FAP_INV = PrimitiveVariant("fap", SyncPolicy.INV)
FAP_UNC = PrimitiveVariant("fap", SyncPolicy.UNC)


class TestBurstLengths:
    def test_integral_write_run(self):
        assert burst_lengths(1.0, 4) == [1, 1, 1, 1]
        assert burst_lengths(3.0, 3) == [3, 3, 3]

    def test_half_write_run_alternates(self):
        assert burst_lengths(1.5, 6) == [1, 2, 1, 2, 1, 2]

    def test_mean_converges(self):
        for target in (1.0, 1.5, 2.0, 3.0, 10.0, 2.25):
            lengths = burst_lengths(target, 64)
            assert abs(sum(lengths) / len(lengths) - target) < 0.1


class TestSpecValidation:
    def test_contention_bounds(self):
        with pytest.raises(ConfigError):
            SyntheticSpec(contention=0).validate(8)
        with pytest.raises(ConfigError):
            SyntheticSpec(contention=9).validate(8)

    def test_write_run_only_without_contention(self):
        with pytest.raises(ConfigError):
            SyntheticSpec(contention=2, write_run=2.0).validate(8)

    def test_write_run_minimum(self):
        with pytest.raises(ConfigError):
            SyntheticSpec(write_run=0.5).validate(8)


class TestLockFree:
    def test_counts_updates_exactly(self):
        spec = SyntheticSpec(contention=1, write_run=2.0, turns=8)
        result = run_lockfree_counter(FAP_INV, spec, CFG8)
        assert result.updates == 16
        assert result.extra["counter"] == 16

    def test_contention_case_counts(self):
        spec = SyntheticSpec(contention=4, turns=8)
        result = run_lockfree_counter(FAP_INV, spec, CFG8)
        assert result.updates == 32

    def test_write_run_control_reflected_in_measurement(self):
        long_spec = SyntheticSpec(contention=1, write_run=10.0, turns=8)
        short_spec = SyntheticSpec(contention=1, write_run=1.0, turns=8)
        long_run = run_lockfree_counter(FAP_INV, long_spec, CFG8)
        short_run = run_lockfree_counter(FAP_INV, short_spec, CFG8)
        assert long_run.write_run > 5.0
        assert short_run.write_run <= 1.5

    def test_contention_reflected_in_histogram(self):
        spec = SyntheticSpec(contention=8, turns=8)
        result = run_lockfree_counter(FAP_UNC, spec, CFG8)
        # Most samples should see substantial contention.
        high = sum(pct for level, pct in result.contention_histogram.items()
                   if level >= 4)
        assert high > 40.0

    def test_no_contention_histogram_is_mostly_ones(self):
        spec = SyntheticSpec(contention=1, turns=8)
        result = run_lockfree_counter(FAP_INV, spec, CFG8)
        assert result.contention_histogram.get(1, 0) == 100.0

    def test_avg_cycles_positive_and_finite(self):
        spec = SyntheticSpec(contention=2, turns=4)
        result = run_lockfree_counter(FAP_INV, spec, CFG8)
        assert 0 < result.avg_cycles < 100_000


class TestLocked:
    def test_tts_counter_exact(self):
        spec = SyntheticSpec(contention=4, turns=6)
        result = run_tts_counter(PrimitiveVariant("cas", SyncPolicy.INV),
                                 spec, CFG8)
        assert result.extra["counter"] == 24

    def test_mcs_counter_exact(self):
        spec = SyntheticSpec(contention=4, turns=6)
        result = run_mcs_counter(PrimitiveVariant("llsc", SyncPolicy.INV),
                                 spec, CFG8)
        assert result.extra["counter"] == 24

    def test_tts_uncontended_write_run_near_two(self):
        # Lock acquire+release with no interference: runs of 2 on the lock.
        spec = SyntheticSpec(contention=1, turns=8)
        result = run_tts_counter(FAP_INV, spec, CFG8)
        assert 1.8 <= result.write_run <= 2.2

    def test_labels_carried_through(self):
        spec = SyntheticSpec(contention=1, turns=2)
        result = run_tts_counter(FAP_INV, spec, CFG8)
        assert result.label == "FAP/INV"
        assert result.name == "tts"
