"""Transitive Closure: result correctness and sharing pattern."""

import pytest

from repro.apps.tclosure import (
    random_graph,
    reference_closure,
    run_transitive_closure,
)
from repro.coherence.policy import SyncPolicy
from repro.config import SimConfig
from repro.sync.variant import PrimitiveVariant

CFG8 = SimConfig().with_nodes(8)


def test_reference_closure_small_chain():
    matrix = [
        [1, 1, 0],
        [0, 1, 1],
        [0, 0, 1],
    ]
    closure = reference_closure(matrix)
    assert closure[0] == [1, 1, 1]
    assert closure[1] == [0, 1, 1]
    assert closure[2] == [0, 0, 1]


def test_reference_closure_cycle():
    matrix = [
        [1, 1, 0],
        [0, 1, 1],
        [1, 0, 1],
    ]
    closure = reference_closure(matrix)
    assert all(all(cell == 1 for cell in row) for row in closure)


def test_random_graph_deterministic():
    assert random_graph(8, 0.3, 5) == random_graph(8, 0.3, 5)
    assert random_graph(8, 0.3, 5) != random_graph(8, 0.3, 6)


def test_random_graph_has_self_loops():
    g = random_graph(6, 0.0, 1)
    assert all(g[i][i] == 1 for i in range(6))


@pytest.mark.parametrize("variant", [
    PrimitiveVariant("fap", SyncPolicy.INV),
    PrimitiveVariant("fap", SyncPolicy.UNC),
    PrimitiveVariant("cas", SyncPolicy.INV),
    PrimitiveVariant("llsc", SyncPolicy.UPD),
], ids=lambda v: v.label)
def test_parallel_closure_matches_reference(variant):
    # `check=True` raises on any mismatch against the sequential result.
    result = run_transitive_closure(variant, size=12, config=CFG8)
    assert result.name == "tclosure"
    assert result.updates > 0


def test_high_contention_pattern():
    # The paper's point about this application: barrier-aligned counter
    # access produces a common case of high contention.
    result = run_transitive_closure(
        PrimitiveVariant("fap", SyncPolicy.UNC), size=16, config=CFG8)
    assert result.extra["mean_contention"] > 2.0


def test_write_run_approaches_one_with_scale():
    # §4.2: "the average write-run length was ... always slightly above
    # 1.00" for Transitive Closure — measured on 64 processors.  The runs
    # shorten toward 1 as the machine grows; check the trend and the
    # 16-processor value.
    small = run_transitive_closure(
        PrimitiveVariant("fap", SyncPolicy.INV), size=16, config=CFG8)
    large = run_transitive_closure(
        PrimitiveVariant("fap", SyncPolicy.INV), size=16,
        config=SimConfig().with_nodes(16))
    assert large.write_run < small.write_run
    assert 1.0 <= large.write_run < 1.6


def test_denser_graph_is_more_work():
    sparse = run_transitive_closure(
        PrimitiveVariant("fap", SyncPolicy.INV), size=12, density=0.02,
        config=CFG8)
    dense = run_transitive_closure(
        PrimitiveVariant("fap", SyncPolicy.INV), size=12, density=0.5,
        config=CFG8)
    assert dense.cycles > sparse.cycles


def test_parallel_efficiency_grows_with_input():
    # The paper reports 45% efficiency on 64 processors with production
    # inputs.  At our (much smaller) input sizes the app is
    # synchronization-dominated; efficiency must at least climb steeply
    # with the work available per processor.
    from repro.apps.tclosure import parallel_efficiency

    variant = PrimitiveVariant("fap", SyncPolicy.UNC)
    small = parallel_efficiency(variant, size=12, density=0.3,
                                config=SimConfig().with_nodes(4))
    large = parallel_efficiency(variant, size=32, density=0.3,
                                config=SimConfig().with_nodes(4))
    assert 0.0 < small < large < 1.0
    assert large > 1.8 * small
