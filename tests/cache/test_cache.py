"""Unit tests for the set-associative cache array."""

from repro.cache.cache import Cache
from repro.cache.line import LineState
from repro.config import MachineConfig


def build(sets=4, assoc=2):
    return Cache(MachineConfig(cache_sets=sets, cache_assoc=assoc))


def data(v=0):
    return [v] * MachineConfig().words_per_block


def test_miss_on_empty_cache():
    cache = build()
    assert cache.lookup(3) is None


def test_install_then_hit():
    cache = build()
    cache.install(3, LineState.SHARED, data(7))
    line = cache.lookup(3)
    assert line is not None
    assert line.state is LineState.SHARED
    assert line.read_word(0) == 7


def test_reinstall_updates_in_place():
    cache = build()
    cache.install(3, LineState.SHARED, data(1))
    victim = cache.install(3, LineState.EXCLUSIVE, data(2), dirty=True)
    assert victim is None
    line = cache.lookup(3)
    assert line.state is LineState.EXCLUSIVE
    assert line.dirty
    assert line.read_word(0) == 2


def test_lru_eviction_within_set():
    cache = build(sets=1, assoc=2)
    cache.install(0, LineState.SHARED, data(0))
    cache.install(1, LineState.SHARED, data(1))
    cache.lookup(0)  # touch 0, making 1 the LRU
    victim = cache.install(2, LineState.SHARED, data(2))
    assert victim is not None
    assert victim.block == 1
    assert cache.lookup(0) is not None
    assert cache.lookup(1) is None


def test_eviction_returns_victim_payload():
    cache = build(sets=1, assoc=1)
    cache.install(0, LineState.EXCLUSIVE, data(9), dirty=True)
    victim = cache.install(1, LineState.SHARED, data(1))
    assert victim.block == 0
    assert victim.state is LineState.EXCLUSIVE
    assert victim.dirty
    assert victim.data == data(9)


def test_blocks_map_to_sets_by_modulo():
    cache = build(sets=4, assoc=1)
    cache.install(0, LineState.SHARED, data())
    cache.install(1, LineState.SHARED, data())  # different set: no eviction
    assert cache.lookup(0) is not None
    assert cache.lookup(1) is not None
    victim = cache.install(4, LineState.SHARED, data())  # same set as 0
    assert victim.block == 0


def test_drop_removes_silently():
    cache = build()
    cache.install(3, LineState.SHARED, data())
    cache.drop(3)
    assert cache.lookup(3) is None


def test_lookup_without_touch_keeps_lru_order():
    cache = build(sets=1, assoc=2)
    cache.install(0, LineState.SHARED, data())
    cache.install(1, LineState.SHARED, data())
    cache.lookup(0, touch=False)  # peek: 0 stays LRU
    victim = cache.install(2, LineState.SHARED, data())
    assert victim.block == 0


def test_stats_count_evictions():
    cache = build(sets=1, assoc=1)
    cache.install(0, LineState.SHARED, data())
    cache.install(1, LineState.SHARED, data())
    assert cache.stats.evictions == 1


def test_valid_blocks_listing():
    cache = build()
    cache.install(5, LineState.SHARED, data())
    cache.install(2, LineState.EXCLUSIVE, data())
    assert cache.valid_blocks() == [2, 5]


def test_invalidated_line_is_a_miss():
    cache = build()
    cache.install(3, LineState.SHARED, data())
    cache.lookup(3).invalidate()
    assert cache.lookup(3) is None
