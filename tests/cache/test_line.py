"""Unit tests for cache lines."""

from repro.cache.line import CacheLine, LineState


def test_default_invalid():
    line = CacheLine(block=1)
    assert line.state is LineState.INVALID
    assert not line.valid


def test_write_marks_dirty():
    line = CacheLine(block=1, state=LineState.EXCLUSIVE, data=[0] * 8)
    assert not line.dirty
    line.write_word(2, 5)
    assert line.dirty
    assert line.read_word(2) == 5


def test_invalidate_clears_state_and_data():
    line = CacheLine(block=1, state=LineState.SHARED, data=[1] * 8, dirty=True)
    line.invalidate()
    assert line.state is LineState.INVALID
    assert not line.dirty
    assert line.data == []


def test_valid_for_both_stable_states():
    assert CacheLine(0, LineState.SHARED, [0]).valid
    assert CacheLine(0, LineState.EXCLUSIVE, [0]).valid
