"""Unit tests for the MSHR / transaction bookkeeping."""

import pytest

from repro.cache.mshr import Mshr, Transaction
from repro.errors import ProtocolError
from repro.network.message import Message, MessageType, Unit


def txn(block=1):
    return Transaction(op=None, block=block, callback=lambda r: None)


def msg(block=1):
    return Message(mtype=MessageType.FLUSH_REQ, src=1, dst=0,
                   unit=Unit.CACHE, block=block)


def test_begin_finish_cycle():
    mshr = Mshr()
    t = txn()
    mshr.begin(t)
    assert mshr.pending_for(1)
    assert not mshr.pending_for(2)
    assert mshr.finish() is t
    assert not mshr.pending_for(1)


def test_double_begin_rejected():
    mshr = Mshr()
    mshr.begin(txn(1))
    with pytest.raises(ProtocolError):
        mshr.begin(txn(2))


def test_finish_without_begin_rejected():
    with pytest.raises(ProtocolError):
        Mshr().finish()


def test_deferred_messages_round_trip():
    mshr = Mshr()
    m1, m2 = msg(1), msg(1)
    mshr.defer(m1)
    mshr.defer(m2)
    assert mshr.take_deferred(1) == [m1, m2]
    assert mshr.take_deferred(1) == []


def test_deferred_messages_keyed_by_block():
    mshr = Mshr()
    mshr.defer(msg(1))
    assert mshr.take_deferred(2) == []
    assert len(mshr.take_deferred(1)) == 1


def test_transaction_completion_rules():
    t = txn()
    assert not t.complete
    t.reply = msg()
    t.acks_needed = 2
    assert not t.complete
    t.acks_got = 2
    assert t.complete


def test_completion_with_no_acks_expected():
    t = txn()
    t.reply = msg()
    t.acks_needed = 0
    assert t.complete


def test_note_chain_keeps_max():
    t = txn()
    t.note_chain(2)
    t.note_chain(1)
    t.note_chain(4)
    assert t.chain == 4
