"""Semantics of fetch_and_phi and compare_and_swap under every policy."""

import pytest

from repro.coherence.policy import SyncPolicy
from repro.primitives.ops import CasResult

from tests.conftest import make_machine, run_one, run_seq

ALL_POLICIES = list(SyncPolicy)
CAS_POLICIES = ALL_POLICIES
FAP_POLICIES = [SyncPolicy.INV, SyncPolicy.UPD, SyncPolicy.UNC]


def faa(p, addr, amount):
    old = yield p.fetch_add(addr, amount)
    return old


def tset(p, addr):
    old = yield p.test_and_set(addr)
    return old


def fstore(p, addr, value):
    old = yield p.fetch_store(addr, value)
    return old


def cas(p, addr, expected, new):
    result = yield p.cas(addr, expected, new)
    return result


def load(p, addr):
    value = yield p.load(addr)
    return value


@pytest.mark.parametrize("policy", FAP_POLICIES, ids=lambda p: p.value)
class TestFetchAndPhi:
    def test_fetch_add_returns_old_and_stores_sum(self, policy):
        m = make_machine()
        addr = m.alloc_sync(policy, home=1)
        assert run_one(m, 0, faa, addr, 5) == 0
        assert run_one(m, 2, faa, addr, 3) == 5
        assert m.read_word(addr) == 8

    def test_fetch_store_swaps(self, policy):
        m = make_machine()
        addr = m.alloc_sync(policy, home=1)
        assert run_one(m, 0, fstore, addr, 9) == 0
        assert run_one(m, 2, fstore, addr, 4) == 9
        assert m.read_word(addr) == 4

    def test_test_and_set(self, policy):
        m = make_machine()
        addr = m.alloc_sync(policy, home=1)
        assert run_one(m, 0, tset, addr) == 0
        assert run_one(m, 2, tset, addr) == 1
        assert m.read_word(addr) == 1

    def test_concurrent_fetch_adds_all_count(self, policy):
        m = make_machine(8)
        addr = m.alloc_sync(policy, home=1)

        def prog(p):
            for _ in range(5):
                yield p.fetch_add(addr, 1)

        m.spawn_all(prog)
        m.run()
        assert m.read_word(addr) == 40

    def test_concurrent_fetch_adds_return_distinct_olds(self, policy):
        m = make_machine(8)
        addr = m.alloc_sync(policy, home=1)
        olds = []

        def prog(p):
            old = yield p.fetch_add(addr, 1)
            olds.append(old)

        m.spawn_all(prog)
        m.run()
        assert sorted(olds) == list(range(8))


@pytest.mark.parametrize("policy", CAS_POLICIES, ids=lambda p: p.value)
class TestCompareAndSwap:
    def test_success_replaces_value(self, policy):
        m = make_machine()
        addr = m.alloc_sync(policy, home=1)
        result = run_one(m, 0, cas, addr, 0, 7)
        assert isinstance(result, CasResult)
        assert result.success and result.old == 0
        assert m.read_word(addr) == 7

    def test_failure_leaves_value(self, policy):
        m = make_machine()
        addr = m.alloc_sync(policy, home=1)
        m.write_word(addr, 3)
        result = run_one(m, 0, cas, addr, 0, 7)
        assert not result.success
        assert result.old == 3
        assert m.read_word(addr) == 3

    def test_remote_value_compared(self, policy):
        # The value to compare lives exclusive in another cache.
        m = make_machine()
        addr = m.alloc_sync(policy, home=1)

        def put(p, addr, v):
            yield p.store(addr, v)

        run_one(m, 2, put, addr, 5)
        result = run_one(m, 0, cas, addr, 5, 6)
        assert result.success and result.old == 5
        assert m.read_word(addr) == 6

    def test_remote_failure(self, policy):
        m = make_machine()
        addr = m.alloc_sync(policy, home=1)

        def put(p, addr, v):
            yield p.store(addr, v)

        run_one(m, 2, put, addr, 5)
        result = run_one(m, 0, cas, addr, 1, 6)
        assert not result.success and result.old == 5
        assert m.read_word(addr) == 5

    def test_concurrent_cas_one_winner(self, policy):
        m = make_machine(8)
        addr = m.alloc_sync(policy, home=1)
        wins = []

        def prog(p):
            result = yield p.cas(addr, 0, p.pid + 1)
            if result:
                wins.append(p.pid)

        m.spawn_all(prog)
        m.run()
        assert len(wins) == 1
        assert m.read_word(addr) == wins[0] + 1

    def test_cas_loop_counter_is_exact(self, policy):
        m = make_machine(8)
        addr = m.alloc_sync(policy, home=1)

        def prog(p):
            for _ in range(4):
                while True:
                    old = yield p.load(addr)
                    ok = yield p.cas(addr, old, old + 1)
                    if ok:
                        break

        m.spawn_all(prog)
        m.run(max_events=5_000_000)
        assert m.read_word(addr) == 32


class TestLoadExclusive:
    def test_returns_value(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)
        m.write_word(addr, 5)

        def prog(p):
            value = yield p.load_exclusive(addr)
            return value

        assert run_one(m, 0, prog) == 5

    def test_acquires_exclusive_copy(self):
        from repro.cache.line import LineState
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)

        def prog(p):
            yield p.load_exclusive(addr)

        run_one(m, 0, prog)
        line = m.nodes[0].controller.cache.lookup(m.block_of(addr),
                                                  touch=False)
        assert line.state is LineState.EXCLUSIVE

    def test_cas_after_lx_is_local(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)

        def prog(p):
            old = yield p.load_exclusive(addr)
            before = m.mesh.stats.messages
            ok = yield p.cas(addr, old, old + 1)
            return ok.success, m.mesh.stats.messages - before

        success, messages = run_one(m, 0, prog)
        assert success and messages == 0

    def test_lx_invalidate_other_copies(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)

        def reader(p):
            yield p.load(addr)

        def lx(p):
            yield p.load_exclusive(addr)

        run_seq(m, [(2, reader), (0, lx)])
        assert m.nodes[2].controller.cache.lookup(m.block_of(addr),
                                                  touch=False) is None

    def test_lx_under_unc_behaves_as_load(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.UNC, home=1)
        m.write_word(addr, 4)

        def prog(p):
            value = yield p.load_exclusive(addr)
            return value

        assert run_one(m, 0, prog) == 4
        # Nothing may be cached under UNC.
        assert m.nodes[0].controller.cache.lookup(m.block_of(addr),
                                                  touch=False) is None


class TestUncachedNeverCaches:
    def test_no_copies_after_any_op(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.UNC, home=1)

        def prog(p):
            yield p.store(addr, 1)
            yield p.load(addr)
            yield p.fetch_add(addr, 1)
            yield p.cas(addr, 2, 3)

        run_one(m, 0, prog)
        assert m.nodes[0].controller.cache.lookup(m.block_of(addr),
                                                  touch=False) is None
        assert m.read_word(addr) == 3

    def test_every_unc_op_costs_two_messages(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.UNC, home=1)

        def prog(p):
            yield p.fetch_add(addr, 1)
            yield p.fetch_add(addr, 1)

        run_one(m, 0, prog)
        assert m.nodes[0].controller.last_chain == 2
