"""Integration tests of the base write-invalidate protocol.

Ordinary (non-synchronization) data: loads, stores, sharing,
invalidation, ownership transfer through the home, writeback, eviction.
"""

from repro.cache.line import LineState
from repro.coherence.policy import SyncPolicy
from repro.memory.directory import DirState

from tests.conftest import make_machine, run_one, run_seq


def put(p, addr, value):
    yield p.store(addr, value)


def get(p, addr):
    value = yield p.load(addr)
    return value


def sync_addr(machine, policy=SyncPolicy.INV, home=1):
    return machine.alloc_sync(policy, home=home)


class TestLoadsAndStores:
    def test_load_of_uninitialized_word_is_zero(self):
        m = make_machine()
        addr = m.alloc_data(1)
        assert run_one(m, 0, get, addr) == 0

    def test_store_then_load_same_cpu(self):
        m = make_machine()
        addr = m.alloc_data(1)
        run_one(m, 0, put, addr, 42)
        assert run_one(m, 0, get, addr) == 42

    def test_store_visible_to_other_cpu(self):
        m = make_machine()
        addr = m.alloc_data(1)
        run_one(m, 0, put, addr, 42)
        assert run_one(m, 2, get, addr) == 42

    def test_initialized_memory_visible_everywhere(self):
        m = make_machine()
        addr = m.alloc_data(4)
        m.write_word(addr + 8, 9)
        assert run_one(m, 3, get, addr + 8) == 9

    def test_write_after_write_other_cpu(self):
        m = make_machine()
        addr = m.alloc_data(1)
        run_one(m, 0, put, addr, 1)
        run_one(m, 1, put, addr, 2)
        assert run_one(m, 2, get, addr) == 2
        assert m.read_word(addr) == 2

    def test_words_in_one_block_are_independent(self):
        m = make_machine()
        addr = m.alloc_data(8)
        run_one(m, 0, put, addr, 1)
        run_one(m, 0, put, addr + 4, 2)
        assert run_one(m, 1, get, addr) == 1
        assert run_one(m, 1, get, addr + 4) == 2


class TestDirectoryStates:
    def entry(self, m, addr):
        block = m.block_of(addr)
        return m.nodes[m.home_of(block)].home.directory.entry(block)

    def test_load_makes_shared(self):
        m = make_machine()
        addr = sync_addr(m)
        run_one(m, 0, get, addr)
        entry = self.entry(m, addr)
        assert entry.state is DirState.SHARED
        assert entry.sharers == {0}

    def test_two_loads_make_two_sharers(self):
        m = make_machine()
        addr = sync_addr(m)
        run_seq(m, [(0, get, addr), (2, get, addr)])
        assert self.entry(m, addr).sharers == {0, 2}

    def test_store_makes_exclusive(self):
        m = make_machine()
        addr = sync_addr(m)
        run_one(m, 0, put, addr, 5)
        entry = self.entry(m, addr)
        assert entry.state is DirState.EXCLUSIVE
        assert entry.owner == 0

    def test_store_invalidates_sharers(self):
        m = make_machine()
        addr = sync_addr(m)
        run_seq(m, [(0, get, addr), (2, get, addr), (3, put, addr, 5)])
        entry = self.entry(m, addr)
        assert entry.state is DirState.EXCLUSIVE and entry.owner == 3
        block = m.block_of(addr)
        assert m.nodes[0].controller.cache.lookup(block, touch=False) is None
        assert m.nodes[2].controller.cache.lookup(block, touch=False) is None

    def test_read_of_remote_exclusive_demotes_owner(self):
        m = make_machine()
        addr = sync_addr(m)
        run_seq(m, [(0, put, addr, 5), (2, get, addr)])
        entry = self.entry(m, addr)
        assert entry.state is DirState.SHARED
        assert entry.sharers == {0, 2}
        block = m.block_of(addr)
        line = m.nodes[0].controller.cache.lookup(block, touch=False)
        assert line is not None and line.state is LineState.SHARED

    def test_write_of_remote_exclusive_transfers_ownership(self):
        m = make_machine()
        addr = sync_addr(m)
        run_seq(m, [(0, put, addr, 5), (2, put, addr, 6)])
        entry = self.entry(m, addr)
        assert entry.owner == 2
        assert m.read_word(addr) == 6
        block = m.block_of(addr)
        assert m.nodes[0].controller.cache.lookup(block, touch=False) is None

    def test_upgrade_from_shared(self):
        m = make_machine()
        addr = sync_addr(m)
        run_seq(m, [(0, get, addr), (2, get, addr), (0, put, addr, 7)])
        entry = self.entry(m, addr)
        assert entry.state is DirState.EXCLUSIVE and entry.owner == 0
        assert run_one(m, 2, get, addr) == 7


class TestHitBehaviour:
    def test_second_load_hits_locally(self):
        m = make_machine()
        addr = sync_addr(m)

        def two_loads(p, addr):
            yield p.load(addr)
            before = m.mesh.stats.messages
            yield p.load(addr)
            return m.mesh.stats.messages - before

        assert run_one(m, 0, two_loads, addr) == 0

    def test_store_after_store_hits_locally(self):
        m = make_machine()
        addr = sync_addr(m)

        def two_stores(p, addr):
            yield p.store(addr, 1)
            before = m.mesh.stats.messages
            yield p.store(addr, 2)
            return m.mesh.stats.messages - before

        assert run_one(m, 0, two_stores, addr) == 0
        assert m.read_word(addr) == 2


class TestEviction:
    def test_dirty_eviction_writes_back(self):
        # Use a tiny cache so installs collide.
        from repro.config import SimConfig, MachineConfig
        from repro import build_machine
        m = build_machine(SimConfig(machine=MachineConfig(
            n_nodes=4, cache_sets=1, cache_assoc=1)))
        a = m.alloc_data(1)
        b = m.alloc_data(1)

        def prog(p):
            yield p.store(a, 11)   # exclusive, dirty
            yield p.store(b, 22)   # evicts a -> writeback

        m.spawn(0, lambda p: prog(p))
        m.run()
        assert m.read_word(a) == 11
        assert m.read_word(b) == 22

    def test_shared_eviction_notifies_directory(self):
        from repro.config import SimConfig, MachineConfig
        from repro import build_machine
        m = build_machine(SimConfig(machine=MachineConfig(
            n_nodes=4, cache_sets=1, cache_assoc=1)))
        a = m.alloc_data(1)
        b = m.alloc_data(1)
        m.write_word(a, 1)
        m.write_word(b, 2)

        def prog(p):
            yield p.load(a)
            yield p.load(b)  # evicts a's shared copy

        m.spawn(0, lambda p: prog(p))
        m.run()
        entry = m.nodes[m.home_of(m.block_of(a))].home.directory.entry(
            m.block_of(a))
        assert 0 not in entry.sharers
