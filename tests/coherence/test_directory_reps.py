"""Machine-level behavior of the sharer-set representations.

Exact-capacity configurations must be *bit-identical* to the full bit
vector (same registry snapshot — identical message counts and timing);
sparse configurations must produce the same final values while honestly
paying extra invalidation traffic, visible in the lazily-created
``spurious_targets`` counters.
"""

import dataclasses

import pytest

from repro.coherence.policy import SyncPolicy
from repro.config import SimConfig, small_config
from repro.machine.machine import build_machine


def _with_directory(n_nodes, **kwargs):
    base = small_config(n_nodes=n_nodes)
    return dataclasses.replace(
        base, machine=dataclasses.replace(base.machine, **kwargs)
    )


def _share_then_write(machine, contention, turns=2):
    counter = machine.alloc_sync(SyncPolicy.INV, home=0)
    n = machine.n_nodes

    def program(p):
        for turn in range(turns):
            yield p.barrier(turn, n)
            if p.pid < contention:
                yield p.load(counter)
                if p.pid == turn % contention:
                    yield p.fetch_add(counter, 1)

    machine.spawn_all(program)
    machine.run()
    return machine.read_word(counter)


@pytest.mark.parametrize("kwargs", [
    {"directory": "limited", "dir_pointers": 8},
    {"directory": "coarse", "dir_region": 1},
])
def test_exact_capacity_is_bit_identical_to_full(kwargs):
    """Enough pointers / 1-node regions: indistinguishable runs."""
    n = 8
    reference = build_machine(_with_directory(n))
    assert _share_then_write(reference, contention=6) == 2

    other = build_machine(_with_directory(n, **kwargs))
    assert _share_then_write(other, contention=6) == 2
    assert (other.registry.snapshot() == reference.registry.snapshot())
    assert other.now == reference.now


def test_limited_overflow_broadcasts_and_counts_spurious():
    n = 8
    machine = build_machine(
        _with_directory(n, directory="limited", dir_pointers=2)
    )
    assert _share_then_write(machine, contention=6) == 2
    snap = machine.registry.snapshot()
    spurious = sum(
        v for k, v in snap.items() if k.endswith(".spurious_targets")
    )
    fanouts = sum(
        v for k, v in snap.items() if k.endswith(".imprecise_fanouts")
    )
    assert spurious > 0
    assert fanouts > 0
    # More messages than the exact directory for the same workload.
    reference = build_machine(_with_directory(n))
    _share_then_write(reference, contention=6)
    assert machine.mesh.stats.messages > reference.mesh.stats.messages


def test_coarse_regions_invalidate_bystanders():
    n = 8
    machine = build_machine(
        _with_directory(n, directory="coarse", dir_region=4)
    )
    # Sharers 0 and 4 mark both regions; every write invalidates all 8.
    assert _share_then_write(machine, contention=5) == 2
    snap = machine.registry.snapshot()
    assert sum(
        v for k, v in snap.items() if k.endswith(".spurious_targets")
    ) > 0


def test_exact_directory_publishes_no_imprecision_counters():
    machine = build_machine(_with_directory(8))
    _share_then_write(machine, contention=6)
    snap = machine.registry.snapshot()
    assert not any("spurious_targets" in k for k in snap)
    assert not any("imprecise_fanouts" in k for k in snap)


def test_exact_capacity_sparse_reps_publish_no_counters_either():
    """Lazy counter creation: a never-overflowing limited directory
    keeps the metric namespace identical to the full bit vector."""
    machine = build_machine(
        _with_directory(8, directory="limited", dir_pointers=8)
    )
    _share_then_write(machine, contention=6)
    assert not any(
        "spurious_targets" in k or "imprecise_fanouts" in k
        for k in machine.registry.snapshot()
    )


def test_scale_config_presets():
    from repro.config import scale_config

    cfg = scale_config(256, topology="torus", directory="coarse")
    cfg.validate()
    assert cfg.machine.mesh_width == 16
    assert cfg.machine.directory_label == "coarse:32"
    cfg = scale_config(1024)
    cfg.validate()
    assert cfg.machine.mesh_width == 32
    assert cfg.machine.directory_label == "limited:8"


def test_sync_policies_match_across_reps_under_upd():
    """UPD keeps long-lived sharer sets — the hardest case for sticky
    imprecision.  Final values still match the exact machine."""
    n = 8
    values = []
    for kwargs in ({}, {"directory": "limited", "dir_pointers": 2},
                   {"directory": "coarse", "dir_region": 4}):
        machine = build_machine(_with_directory(n, **kwargs))
        counter = machine.alloc_sync(SyncPolicy.UPD, home=1)

        def program(p):
            for turn in range(3):
                yield p.barrier(turn, n)
                yield p.fetch_add(counter, 1)

        machine.spawn_all(program)
        machine.run()
        values.append(machine.read_word(counter))
    assert values == [3 * n] * 3
