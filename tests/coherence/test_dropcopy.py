"""The drop_copy auxiliary instruction and its races (paper §3, §4.3.1)."""

from repro.coherence.policy import SyncPolicy
from repro.memory.directory import DirState

from tests.conftest import make_machine, run_one


def put(p, addr, v):
    yield p.store(addr, v)


def get(p, addr):
    v = yield p.load(addr)
    return v


def entry_of(m, addr):
    block = m.block_of(addr)
    return m.nodes[m.home_of(block)].home.directory.entry(block)


def line_of(m, pid, addr):
    return m.nodes[pid].controller.cache.lookup(m.block_of(addr), touch=False)


class TestSemantics:
    def test_drop_exclusive_writes_back(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)

        def prog(p):
            yield p.store(addr, 9)
            yield p.drop_copy(addr)

        run_one(m, 0, prog)
        assert line_of(m, 0, addr) is None
        assert entry_of(m, addr).state is DirState.UNCACHED
        assert m.read_word(addr) == 9

    def test_drop_shared_removes_sharer(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)

        def prog(p):
            yield p.load(addr)
            yield p.drop_copy(addr)

        run_one(m, 0, prog)
        assert entry_of(m, addr).state is DirState.UNCACHED

    def test_drop_without_copy_is_noop(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)

        def prog(p):
            before = m.mesh.stats.messages + m.mesh.stats.local_messages
            yield p.drop_copy(addr)
            after = m.mesh.stats.messages + m.mesh.stats.local_messages
            return after - before

        assert run_one(m, 0, prog) == 0

    def test_drop_under_unc_is_noop(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.UNC, home=1)

        def prog(p):
            yield p.store(addr, 1)
            yield p.drop_copy(addr)

        run_one(m, 0, prog)
        assert m.read_word(addr) == 1

    def test_drop_clears_ll_reservation(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)

        def prog(p):
            yield p.ll(addr)
            yield p.drop_copy(addr)
            ok = yield p.sc(addr, 5)
            return bool(ok)

        assert run_one(m, 0, prog) is False

    def test_store_after_drop_costs_two_messages(self):
        # The point of drop_copy: the next writer finds the line uncached
        # and pays 2 serialized messages instead of 4.
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)

        def owner(p):
            yield p.store(addr, 1)
            yield p.drop_copy(addr)

        run_one(m, 0, owner)
        run_one(m, 2, put, addr, 2)
        assert m.nodes[2].controller.last_chain == 2

    def test_store_without_drop_costs_four_messages(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)
        run_one(m, 0, put, addr, 1)
        run_one(m, 2, put, addr, 2)
        assert m.nodes[2].controller.last_chain == 4

    def test_drop_under_upd_stops_updates(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.UPD, home=1)

        def reader_then_drop(p):
            yield p.load(addr)
            yield p.drop_copy(addr)

        run_one(m, 0, reader_then_drop)
        assert 0 not in entry_of(m, addr).sharers
        # A later store pays 2 serialized messages, not 3.
        run_one(m, 2, put, addr, 5)
        assert m.nodes[2].controller.last_chain == 2


class TestDropRace:
    """A recall that crosses an in-flight voluntary writeback.

    The paper: "an exclusive cache line may be dropped just when its owner
    is about to receive a remote request ... instead of granting the
    remote request, the local node replies with a negative acknowledgment,
    and the remote node has to repeat its request."
    """

    def _race_machine(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)
        return m, addr

    def test_concurrent_drop_and_write_converge(self):
        m, addr = self._race_machine()

        def owner(p):
            yield p.store(addr, 1)
            yield p.barrier(0, 2)
            yield p.drop_copy(addr)

        def writer(p):
            yield p.barrier(0, 2)
            yield p.store(addr, 2)

        m.spawn(0, owner)
        m.spawn(2, writer)
        m.run(max_events=1_000_000)
        assert m.read_word(addr) == 2
        entry = entry_of(m, addr)
        assert entry.state is DirState.EXCLUSIVE and entry.owner == 2
        assert not entry.busy and not entry.awaiting_wb

    def test_race_with_many_writers_stays_consistent(self):
        m, addr = self._race_machine()
        done = []

        def owner(p):
            yield p.store(addr, 100)
            yield p.barrier(0, 4)
            yield p.drop_copy(addr)
            done.append(p.pid)

        def writer(p):
            yield p.barrier(0, 4)
            yield p.store(addr, p.pid)
            done.append(p.pid)

        m.spawn(0, owner)
        for pid in (1, 2, 3):
            m.spawn(pid, writer)
        m.run(max_events=2_000_000)
        assert len(done) == 4
        assert m.read_word(addr) in (1, 2, 3)

    def test_drop_while_own_request_queued(self):
        # cpu0 drops its line while its next request for the same block is
        # queued behind another processor's at the home: the stale recall
        # must be NAK'd, not deferred (deadlock regression test).
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)

        def dropper(p):
            yield p.store(addr, 1)
            yield p.barrier(0, 3)
            yield p.drop_copy(addr)
            yield p.fetch_add(addr, 1)

        def contender(p):
            yield p.barrier(0, 3)
            yield p.fetch_add(addr, 1)

        m.spawn(0, dropper)
        m.spawn(2, contender)
        m.spawn(3, contender)
        m.run(max_events=2_000_000)
        assert m.read_word(addr) == 4  # 1 + three increments
