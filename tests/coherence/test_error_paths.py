"""Protocol error paths and defensive checks."""

import pytest

from repro import SyncPolicy
from repro.errors import ProtocolError
from repro.network.message import Message, MessageType, Unit

from tests.conftest import make_machine, run_one


def test_home_rejects_unknown_message():
    m = make_machine(4)
    home = m.nodes[1].home
    bogus = Message(mtype=MessageType.DATA_S, src=0, dst=1,
                    unit=Unit.HOME, block=3)
    with pytest.raises(ProtocolError):
        home._dispatch(bogus)


def test_cache_rejects_unknown_message():
    m = make_machine(4)
    controller = m.nodes[0].controller
    bogus = Message(mtype=MessageType.GETS, src=1, dst=0,
                    unit=Unit.CACHE, block=3)
    with pytest.raises(ProtocolError):
        controller.handle(bogus)


def test_reply_without_transaction_rejected():
    m = make_machine(4)
    controller = m.nodes[0].controller
    stray = Message(mtype=MessageType.DATA_S, src=1, dst=0,
                    unit=Unit.CACHE, block=3, payload={"data": [0] * 8})
    with pytest.raises(ProtocolError):
        controller.handle(stray)


def test_flush_reply_without_pending_rejected():
    m = make_machine(4)
    home = m.nodes[1].home
    stray = Message(mtype=MessageType.FLUSH_REPLY, src=0, dst=1,
                    unit=Unit.HOME, block=1, requester=0,
                    payload={"data": [0] * 8})
    with pytest.raises(ProtocolError):
        home._dispatch(stray)


def test_sync_req_with_bad_kind_rejected():
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.UNC, home=1)
    home = m.nodes[1].home
    bad = Message(mtype=MessageType.SYNC_REQ, src=0, dst=1,
                  unit=Unit.HOME, block=m.block_of(addr), requester=0,
                  payload={"kind": "frobnicate", "offset": 0, "addr": addr})
    with pytest.raises(ProtocolError):
        home._dispatch(bad)


def test_sync_req_under_plain_inv_rejected():
    # Only INVd/INVs CAS may arrive as SYNC_REQ for invalidate-family
    # blocks; anything else indicates a routing bug.
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.INV, home=1)
    home = m.nodes[1].home
    bad = Message(mtype=MessageType.SYNC_REQ, src=0, dst=1,
                  unit=Unit.HOME, block=m.block_of(addr), requester=0,
                  payload={"kind": "faa", "offset": 0, "addr": addr})
    with pytest.raises(ProtocolError):
        home._dispatch(bad)


def test_owner_nak_retry_cap():
    # A transaction that NAKs forever must eventually raise, not hang.
    from repro.cache.mshr import Mshr, Transaction

    m = make_machine(4)
    controller = m.nodes[0].controller
    txn = Transaction(op=None, block=1, callback=lambda r: None,
                      kind="store", request_mtype=MessageType.GETX)
    txn.retries = Mshr.MAX_RETRIES
    controller.mshr.begin(txn)
    nak = Message(mtype=MessageType.OWNER_NAK, src=2, dst=0,
                  unit=Unit.CACHE, block=1, requester=0)
    with pytest.raises(ProtocolError, match="livelock"):
        controller.handle(nak)


def test_gets_while_claiming_to_own_rejected():
    # Forge a GETS from a node the directory believes owns the block.
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.INV, home=1)

    def put(p):
        yield p.store(addr, 5)

    run_one(m, 0, put)
    home = m.nodes[1].home
    forged = Message(mtype=MessageType.GETS, src=0, dst=1, unit=Unit.HOME,
                     block=m.block_of(addr), requester=0)
    with pytest.raises(ProtocolError):
        home._dispatch(forged)


def test_unc_block_never_reaches_gets():
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.UNC, home=1)

    def prog(p):
        yield p.load(addr)

    run_one(m, 0, prog)
    # The controller must have used SYNC_REQ, not GETS.
    assert m.mesh.stats.by_type.get("GETS", 0) == 0
    assert m.mesh.stats.by_type.get("SYNC_REQ", 0) >= 1
