"""Protocol invariants that must not depend on timing or machine size."""

from dataclasses import replace

import pytest

from repro.config import MachineConfig, SimConfig, TimingConfig
from repro.harness.table1 import TABLE1_EXPECTED, run_table1


@pytest.mark.parametrize("timing", [
    TimingConfig(memory_service=5),
    TimingConfig(memory_service=100),
    TimingConfig(hop_cycles=10),
    TimingConfig(flit_cycles=3),
    TimingConfig(controller_occupancy=1),
], ids=["fast-mem", "slow-mem", "slow-hops", "slow-flits", "fast-ctrl"])
def test_table1_invariant_under_timing(timing):
    """Serialized message counts are protocol properties: timing-free."""
    config = SimConfig(machine=MachineConfig(n_nodes=4), timing=timing)
    assert run_table1(config) == TABLE1_EXPECTED


@pytest.mark.parametrize("n_nodes", [4, 9, 16, 64])
def test_table1_invariant_under_machine_size(n_nodes):
    config = SimConfig(machine=MachineConfig(n_nodes=n_nodes))
    assert run_table1(config) == TABLE1_EXPECTED


@pytest.mark.parametrize("strategy",
                         ["bitvector", "limited", "serial", "linkedlist"])
def test_table1_invariant_under_reservation_strategy(strategy):
    config = replace(SimConfig(machine=MachineConfig(n_nodes=4)),
                     reservation_strategy=strategy)
    assert run_table1(config) == TABLE1_EXPECTED


def test_counter_value_invariant_under_timing():
    """Timing changes reorder events but never lose atomic updates."""
    from repro import build_machine, SyncPolicy
    from repro.sync import PrimitiveVariant, increment

    for timing in (TimingConfig(), TimingConfig(memory_service=3),
                   TimingConfig(hop_cycles=9, flit_cycles=2)):
        m = build_machine(SimConfig(machine=MachineConfig(n_nodes=8),
                                    timing=timing))
        addr = m.alloc_sync(SyncPolicy.INV, home=1)
        variant = PrimitiveVariant("cas", SyncPolicy.INV, use_lx=True)

        def prog(p):
            for _ in range(4):
                yield from increment(p, addr, variant)

        m.spawn_all(prog)
        m.run(max_events=10_000_000)
        assert m.read_word(addr) == 32
