"""The INVd and INVs compare_and_swap variants (paper §3).

A failing CAS under these policies must not invalidate copies held by
other caches; on failure the requester gets no copy (INVd) or a read-only
copy (INVs).  On success both behave like plain INV: the requester
acquires an exclusive copy.
"""

from repro.cache.line import LineState
from repro.coherence.policy import SyncPolicy
from repro.memory.directory import DirState

from tests.conftest import make_machine, run_one, run_seq


def cas(p, addr, expected, new):
    result = yield p.cas(addr, expected, new)
    return result


def put(p, addr, v):
    yield p.store(addr, v)


def get(p, addr):
    v = yield p.load(addr)
    return v


def line_of(m, pid, addr):
    return m.nodes[pid].controller.cache.lookup(m.block_of(addr), touch=False)


def entry_of(m, addr):
    block = m.block_of(addr)
    return m.nodes[m.home_of(block)].home.directory.entry(block)


class TestFailureAtHome:
    """Comparison at the home node (line shared or uncached)."""

    def test_invd_failure_grants_no_copy(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INVD, home=1)
        m.write_word(addr, 5)
        result = run_one(m, 0, cas, addr, 1, 2)
        assert not result.success and result.old == 5
        assert line_of(m, 0, addr) is None

    def test_invs_failure_grants_readonly_copy(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INVS, home=1)
        m.write_word(addr, 5)
        result = run_one(m, 0, cas, addr, 1, 2)
        assert not result.success and result.old == 5
        line = line_of(m, 0, addr)
        assert line is not None and line.state is LineState.SHARED
        assert line.read_word(m.offset_of(addr)) == 5

    def test_failure_preserves_other_shared_copies(self):
        for policy in (SyncPolicy.INVD, SyncPolicy.INVS):
            m = make_machine()
            addr = m.alloc_sync(policy, home=1)
            m.write_word(addr, 5)
            run_one(m, 2, get, addr)          # cpu2 holds a shared copy
            run_one(m, 0, cas, addr, 1, 2)    # fails
            assert line_of(m, 2, addr) is not None, policy

    def test_plain_inv_failure_does_invalidate(self):
        # Contrast: plain INV CAS acquires exclusivity even when failing.
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)
        m.write_word(addr, 5)
        run_one(m, 2, get, addr)
        result = run_one(m, 0, cas, addr, 1, 2)
        assert not result.success
        assert line_of(m, 2, addr) is None
        line = line_of(m, 0, addr)
        assert line is not None and line.state is LineState.EXCLUSIVE


class TestFailureAtOwner:
    """Comparison delegated to the owner of an exclusive copy."""

    def test_invd_failure_owner_keeps_exclusive(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INVD, home=1)
        run_one(m, 2, put, addr, 5)           # cpu2 owns the line
        result = run_one(m, 0, cas, addr, 1, 2)
        assert not result.success and result.old == 5
        line = line_of(m, 2, addr)
        assert line is not None and line.state is LineState.EXCLUSIVE
        assert line_of(m, 0, addr) is None
        assert entry_of(m, addr).owner == 2

    def test_invs_failure_owner_demoted_requester_shares(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INVS, home=1)
        run_one(m, 2, put, addr, 5)
        result = run_one(m, 0, cas, addr, 1, 2)
        assert not result.success and result.old == 5
        owner_line = line_of(m, 2, addr)
        assert owner_line is not None and owner_line.state is LineState.SHARED
        req_line = line_of(m, 0, addr)
        assert req_line is not None and req_line.state is LineState.SHARED
        assert entry_of(m, addr).sharers == {0, 2}

    def test_success_at_owner_transfers_exclusive(self):
        for policy in (SyncPolicy.INVD, SyncPolicy.INVS):
            m = make_machine()
            addr = m.alloc_sync(policy, home=1)
            run_one(m, 2, put, addr, 5)
            result = run_one(m, 0, cas, addr, 5, 9)
            assert result.success and result.old == 5, policy
            assert m.read_word(addr) == 9
            line = line_of(m, 0, addr)
            assert line is not None and line.state is LineState.EXCLUSIVE
            assert line_of(m, 2, addr) is None
            assert entry_of(m, addr).owner == 0


class TestSuccessPaths:
    def test_success_invalidates_sharers(self):
        for policy in (SyncPolicy.INVD, SyncPolicy.INVS):
            m = make_machine()
            addr = m.alloc_sync(policy, home=1)
            run_one(m, 2, get, addr)
            result = run_one(m, 0, cas, addr, 0, 4)
            assert result.success, policy
            assert line_of(m, 2, addr) is None
            assert m.read_word(addr) == 4

    def test_local_exclusive_hit_stays_local(self):
        for policy in (SyncPolicy.INVD, SyncPolicy.INVS):
            m = make_machine()
            addr = m.alloc_sync(policy, home=1)

            def prog(p):
                yield p.store(addr, 1)
                before = m.mesh.stats.messages
                result = yield p.cas(addr, 1, 2)
                return result, m.mesh.stats.messages - before

            result, messages = run_one(m, 0, prog)
            assert result.success and messages == 0, policy
            assert m.read_word(addr) == 2

    def test_concurrent_cas_loop_exact(self):
        for policy in (SyncPolicy.INVD, SyncPolicy.INVS):
            m = make_machine(8)
            addr = m.alloc_sync(policy, home=1)

            def prog(p):
                for _ in range(3):
                    while True:
                        old = yield p.load(addr)
                        ok = yield p.cas(addr, old, old + 1)
                        if ok:
                            break

            m.spawn_all(prog)
            m.run(max_events=5_000_000)
            assert m.read_word(addr) == 24, policy

    def test_directory_consistent_after_mixed_traffic(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INVS, home=1)
        run_seq(m, [
            (0, put, addr, 1),
            (2, cas, addr, 1, 2),     # success at owner: 2 takes ownership
            (3, cas, addr, 0, 9),     # failure: 3 gets a shared copy
            (0, get, addr),
        ])
        entry = entry_of(m, addr)
        assert entry.state is DirState.SHARED
        assert 0 in entry.sharers and 3 in entry.sharers
        assert m.read_word(addr) == 2
