"""load_linked / store_conditional semantics under every policy."""

import pytest

from repro.coherence.policy import SyncPolicy
from repro.config import SimConfig, MachineConfig
from repro import build_machine
from repro.primitives.ops import LLValue

from tests.conftest import make_machine, run_one, run_seq

POLICIES = [SyncPolicy.INV, SyncPolicy.UPD, SyncPolicy.UNC]


def ll_sc(p, addr, new):
    linked = yield p.ll(addr)
    ok = yield p.sc(addr, new, linked.token)
    return linked, ok


def put(p, addr, v):
    yield p.store(addr, v)


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
class TestBasicSemantics:
    def test_ll_returns_value(self, policy):
        m = make_machine()
        addr = m.alloc_sync(policy, home=1)
        m.write_word(addr, 6)

        def prog(p):
            linked = yield p.ll(addr)
            return linked

        linked = run_one(m, 0, prog)
        assert isinstance(linked, LLValue)
        assert linked.value == 6
        assert not linked.doomed

    def test_undisturbed_sc_succeeds(self, policy):
        m = make_machine()
        addr = m.alloc_sync(policy, home=1)
        _linked, ok = run_one(m, 0, ll_sc, addr, 5)
        assert ok
        assert m.read_word(addr) == 5

    def test_sc_after_foreign_store_fails(self, policy):
        m = make_machine()
        addr = m.alloc_sync(policy, home=1)

        def prog(p):
            linked = yield p.ll(addr)
            yield p.barrier(0, 2)   # let cpu2 store
            yield p.barrier(1, 2)
            ok = yield p.sc(addr, linked.value + 1, linked.token)
            return ok

        def interferer(p):
            yield p.barrier(0, 2)
            yield p.store(addr, 99)
            yield p.barrier(1, 2)

        box = {}

        def wrapper(p):
            box["ok"] = yield from prog(p)

        m.spawn(0, wrapper)
        m.spawn(2, interferer)
        m.run()
        assert box["ok"] is False
        assert m.read_word(addr) == 99

    def test_sc_after_same_value_store_fails(self, policy):
        # The property CAS cannot have: a store of the *same* value still
        # breaks the reservation (no ABA).
        m = make_machine()
        addr = m.alloc_sync(policy, home=1)
        m.write_word(addr, 7)

        def prog(p):
            linked = yield p.ll(addr)
            yield p.barrier(0, 2)
            yield p.barrier(1, 2)
            ok = yield p.sc(addr, 50, linked.token)
            return ok

        def interferer(p):
            yield p.barrier(0, 2)
            yield p.store(addr, 7)  # same value
            yield p.barrier(1, 2)

        box = {}

        def wrapper(p):
            box["ok"] = yield from prog(p)

        m.spawn(0, wrapper)
        m.spawn(2, interferer)
        m.run()
        assert box["ok"] is False
        assert m.read_word(addr) == 7

    def test_sc_without_ll_fails_locally(self, policy):
        m = make_machine()
        addr = m.alloc_sync(policy, home=1)

        def prog(p):
            before = m.mesh.stats.messages
            ok = yield p.sc(addr, 5)
            return ok, m.mesh.stats.messages - before

        ok, messages = run_one(m, 0, prog)
        assert ok is False
        assert messages == 0
        assert m.read_word(addr) == 0

    def test_concurrent_llsc_counter_exact(self, policy):
        m = make_machine(8)
        addr = m.alloc_sync(policy, home=1)

        def prog(p):
            for _ in range(4):
                while True:
                    linked = yield p.ll(addr)
                    ok = yield p.sc(addr, linked.value + 1, linked.token)
                    if ok:
                        break

        m.spawn_all(prog)
        m.run(max_events=5_000_000)
        assert m.read_word(addr) == 32

    def test_two_racing_sc_one_winner(self, policy):
        m = make_machine(4)
        addr = m.alloc_sync(policy, home=1)
        outcomes = {}

        def prog(p):
            linked = yield p.ll(addr)
            yield p.barrier(0, 2)  # both hold reservations
            ok = yield p.sc(addr, p.pid + 10, linked.token)
            outcomes[p.pid] = bool(ok)

        m.spawn(0, prog)
        m.spawn(2, prog)
        m.run()
        assert sorted(outcomes.values()) == [False, True]
        winner = [pid for pid, ok in outcomes.items() if ok][0]
        assert m.read_word(addr) == winner + 10


class TestInvReservationDetails:
    def test_invalidation_clears_reservation(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)
        run_seq(m, [(0, lambda p: (yield p.ll(addr)))])
        assert m.nodes[0].controller.reservation.valid
        run_one(m, 2, put, addr, 1)
        m.run()
        assert not m.nodes[0].controller.reservation.valid

    def test_sc_on_exclusive_line_is_local(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)

        def prog(p):
            yield p.store(addr, 1)      # line exclusive here
            yield p.ll(addr)
            before = m.mesh.stats.messages
            ok = yield p.sc(addr, 2)
            return ok, m.mesh.stats.messages - before

        ok, messages = run_one(m, 0, prog)
        assert ok and messages == 0
        assert m.read_word(addr) == 2

    def test_sc_from_shared_goes_to_home(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)

        def prog(p):
            yield p.ll(addr)            # shared copy
            before = m.mesh.stats.messages
            ok = yield p.sc(addr, 2)
            return ok, m.mesh.stats.messages - before

        ok, messages = run_one(m, 0, prog)
        assert ok and messages > 0

    def test_sc_grant_invalidates_other_sharers(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)

        def reader(p):
            yield p.load(addr)

        def writer(p):
            linked = yield p.ll(addr)
            ok = yield p.sc(addr, 3, linked.token)
            return ok

        run_one(m, 2, reader)
        assert run_one(m, 0, writer)
        assert m.nodes[2].controller.cache.lookup(m.block_of(addr),
                                                  touch=False) is None

    def test_ll_on_remote_exclusive_line(self):
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.INV, home=1)
        run_one(m, 2, put, addr, 8)
        linked, ok = run_one(m, 0, ll_sc, addr, 9)
        assert linked.value == 8 and ok
        assert m.read_word(addr) == 9


class TestUpdLLTravelsToMemory:
    def test_ll_goes_to_memory_even_when_cached(self):
        # Under UPD the reservation lives at the memory, so load_linked
        # must travel even on a cache hit (paper §3 / §4.3.2).
        m = make_machine()
        addr = m.alloc_sync(SyncPolicy.UPD, home=1)

        def prog(p):
            yield p.load(addr)            # now cached shared
            before = m.mesh.stats.messages
            yield p.ll(addr)
            return m.mesh.stats.messages - before

        assert run_one(m, 0, prog) > 0


class TestReservationStrategies:
    def _machine(self, strategy, n=4):
        return build_machine(SimConfig(
            machine=MachineConfig(n_nodes=n),
            reservation_strategy=strategy,
            reservation_limit=2,
        ))

    @pytest.mark.parametrize("strategy", ["bitvector", "limited", "serial"])
    @pytest.mark.parametrize("policy", [SyncPolicy.UNC, SyncPolicy.UPD],
                             ids=lambda p: p.value)
    def test_counter_exact_under_each_strategy(self, strategy, policy):
        m = self._machine(strategy, n=8)
        addr = m.alloc_sync(policy, home=1)

        def prog(p):
            for _ in range(3):
                while True:
                    linked = yield p.ll(addr)
                    ok = yield p.sc(addr, linked.value + 1, linked.token)
                    if ok:
                        break

        m.spawn_all(prog)
        m.run(max_events=5_000_000)
        assert m.read_word(addr) == 24

    def test_limited_over_capacity_ll_is_doomed(self):
        m = self._machine("limited")
        addr = m.alloc_sync(SyncPolicy.UNC, home=1)
        grants = {}

        def prog(p):
            linked = yield p.ll(addr)
            grants[p.pid] = linked.doomed
            yield p.barrier(0, 3)

        for pid in range(3):
            m.spawn(pid, prog)
        m.run()
        assert sorted(grants.values()) == [False, False, True]

    def test_doomed_sc_fails_without_traffic(self):
        m = self._machine("limited")
        addr = m.alloc_sync(SyncPolicy.UNC, home=1)
        out = {}

        def prog(p):
            linked = yield p.ll(addr)
            yield p.barrier(0, 3)
            if linked.doomed:
                before = m.mesh.stats.messages
                ok = yield p.sc(addr, 5)
                out["doomed_sc"] = (bool(ok), m.mesh.stats.messages - before)
            yield p.barrier(1, 3)

        for pid in range(3):
            m.spawn(pid, prog)
        m.run()
        assert out["doomed_sc"] == (False, 0)

    def test_serial_strategy_returns_tokens(self):
        m = self._machine("serial")
        addr = m.alloc_sync(SyncPolicy.UNC, home=1)

        def prog(p):
            first = yield p.ll(addr)
            ok = yield p.sc(addr, 5, first.token)
            second = yield p.ll(addr)
            return first.token, bool(ok), second.token

        t1, ok, t2 = run_one(m, 0, prog)
        assert ok
        assert t2 == t1 + 1

    def test_serial_bare_sc(self):
        # A bare store_conditional with a known serial number succeeds
        # without a preceding load_linked (paper §3.1, the MCS unlock use).
        m = self._machine("serial")
        addr = m.alloc_sync(SyncPolicy.UNC, home=1)

        def prog(p):
            ok = yield p.sc(addr, 7, token=0)
            return bool(ok)

        assert run_one(m, 0, prog)
        assert m.read_word(addr) == 7

    def test_serial_bare_sc_with_stale_token_fails(self):
        m = self._machine("serial")
        addr = m.alloc_sync(SyncPolicy.UNC, home=1)
        run_one(m, 0, put, addr, 1)  # bumps the serial

        def prog(p):
            ok = yield p.sc(addr, 7, token=0)
            return bool(ok)

        assert run_one(m, 2, prog) is False
        assert m.read_word(addr) == 1
