"""Fine-grained reservation semantics at the cache controller."""

from repro import SyncPolicy

from tests.conftest import make_machine, run_one


def test_single_outstanding_reservation_newest_wins():
    # One reservation register per processor (paper §3.1): a second
    # load_linked to a different address replaces the first, so the
    # first store_conditional fails locally.
    m = make_machine(4)
    a = m.alloc_sync(SyncPolicy.INV, home=1)
    b = m.alloc_sync(SyncPolicy.INV, home=2)

    def prog(p):
        yield p.ll(a)
        yield p.ll(b)                 # replaces the reservation on a
        ok_a = yield p.sc(a, 5)
        ok_b = yield p.sc(b, 6)
        return bool(ok_a), bool(ok_b)

    ok_a, ok_b = run_one(m, 0, prog)
    assert ok_a is False
    assert ok_b is True
    assert m.read_word(a) == 0 and m.read_word(b) == 6


def test_second_sc_without_new_ll_fails():
    # store_conditional consumes the reservation whatever the outcome.
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.INV, home=1)

    def prog(p):
        yield p.ll(addr)
        first = yield p.sc(addr, 1)
        second = yield p.sc(addr, 2)
        return bool(first), bool(second)

    first, second = run_one(m, 0, prog)
    assert first is True and second is False
    assert m.read_word(addr) == 1


def test_reservation_survives_unrelated_accesses():
    # Loads and stores to *other* blocks between LL and SC are fine (the
    # paper's §2.1 advice is about what processors may deterministically
    # break; our idealized machine keeps the reservation).
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.INV, home=1)
    other = m.alloc_data(2)

    def prog(p):
        linked = yield p.ll(addr)
        yield p.store(other, 7)
        value = yield p.load(other)
        ok = yield p.sc(addr, linked.value + value, linked.token)
        return bool(ok)

    assert run_one(m, 0, prog) is True
    assert m.read_word(addr) == 7


def test_own_store_to_reserved_block_keeps_reservation():
    # Hardware-dependent behaviour; we model the permissive choice and
    # document it (programs that do this are outside the paper's rules).
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.INV, home=1)

    def prog(p):
        yield p.ll(addr)
        yield p.store(addr, 9)
        ok = yield p.sc(addr, 10)
        return bool(ok)

    assert run_one(m, 0, prog) is True
    assert m.read_word(addr) == 10


def test_eviction_of_reserved_line_kills_reservation():
    from repro.config import SimConfig, MachineConfig
    from repro import build_machine

    m = build_machine(SimConfig(machine=MachineConfig(
        n_nodes=4, cache_sets=1, cache_assoc=1)))
    addr = m.alloc_sync(SyncPolicy.INV, home=1)
    filler = m.alloc_data(1)

    def prog(p):
        yield p.ll(addr)
        yield p.load(filler)      # evicts the reserved line
        ok = yield p.sc(addr, 5)
        return bool(ok)

    assert run_one(m, 0, prog) is False
    assert m.read_word(addr) == 0
