"""§2.1: spurious reservation invalidation (fault injection).

Real processors lose LL reservations to context switches and TLB
exceptions; the paper argues this is harmless for lock-freedom as long
as programs retry.  With ``spurious_sc_rate`` enabled, retrying programs
must stay exactly correct while experiencing real losses.
"""

import pytest

from repro import SimConfig, SyncPolicy, build_machine
from repro.config import MachineConfig
from repro.errors import ConfigError


def machine(rate, n=8, strategy="bitvector"):
    return build_machine(SimConfig(
        machine=MachineConfig(n_nodes=n),
        spurious_sc_rate=rate,
        reservation_strategy=strategy,
    ))


def spurious_losses(m):
    return sum(node.controller.stats.spurious_losses for node in m.nodes)


def llsc_counter(addr, iters):
    def prog(p):
        for _ in range(iters):
            while True:
                linked = yield p.ll(addr)
                ok = yield p.sc(addr, linked.value + 1, linked.token)
                if ok:
                    break

    return prog


@pytest.mark.parametrize("policy",
                         [SyncPolicy.INV, SyncPolicy.UPD, SyncPolicy.UNC],
                         ids=lambda p: p.value)
def test_retry_loops_survive_heavy_spurious_loss(policy):
    m = machine(0.4)
    addr = m.alloc_sync(policy, home=1)
    m.spawn_all(llsc_counter(addr, 5))
    m.run(max_events=20_000_000)
    assert m.read_word(addr) == 40
    assert spurious_losses(m) > 0


def test_zero_rate_never_loses():
    m = machine(0.0)
    addr = m.alloc_sync(SyncPolicy.INV, home=1)
    m.spawn_all(llsc_counter(addr, 3))
    m.run(max_events=10_000_000)
    assert spurious_losses(m) == 0


def test_losses_are_deterministic():
    def run():
        m = machine(0.3)
        addr = m.alloc_sync(SyncPolicy.INV, home=1)
        m.spawn_all(llsc_counter(addr, 4))
        m.run(max_events=10_000_000)
        return m.now, spurious_losses(m)

    assert run() == run()


def test_single_uncontended_sc_can_fail_and_retry_succeeds():
    m = machine(0.9, n=4)
    addr = m.alloc_sync(SyncPolicy.INV, home=1)
    attempts = []

    def prog(p):
        while True:
            linked = yield p.ll(addr)
            ok = yield p.sc(addr, linked.value + 1, linked.token)
            attempts.append(bool(ok))
            if ok:
                return

    m.spawn(0, prog)
    m.run(max_events=1_000_000)
    assert m.read_word(addr) == 1
    assert attempts[-1] is True
    # At 90% loss some failures are (deterministically) expected here.
    assert attempts.count(False) > 0


def test_invalid_rate_rejected():
    with pytest.raises(ConfigError):
        SimConfig(spurious_sc_rate=1.0).validate()
    with pytest.raises(ConfigError):
        SimConfig(spurious_sc_rate=-0.1).validate()


def test_cas_unaffected_by_spurious_rate():
    # Spurious invalidation is an LL/SC phenomenon; compare_and_swap has
    # no reservation to lose.
    m = machine(0.9, n=4)
    addr = m.alloc_sync(SyncPolicy.INV, home=1)

    def prog(p):
        result = yield p.cas(addr, 0, 5)
        return bool(result)

    box = {}

    def wrapper(p):
        box["ok"] = yield from prog(p)

    m.spawn(0, wrapper)
    m.run()
    assert box["ok"] is True
    assert spurious_losses(m) == 0
