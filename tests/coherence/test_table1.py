"""Table 1 must reproduce exactly: it states protocol properties."""

import pytest

from repro.harness.table1 import TABLE1_EXPECTED, run_table1


@pytest.fixture(scope="module")
def measured():
    return run_table1()


@pytest.mark.parametrize("row", sorted(TABLE1_EXPECTED))
def test_table1_row(measured, row):
    assert measured[row] == TABLE1_EXPECTED[row], (
        f"{row}: measured {measured[row]}, paper says {TABLE1_EXPECTED[row]}"
    )


def test_table1_complete(measured):
    assert set(measured) == set(TABLE1_EXPECTED)
