"""Write-update (UPD) policy specifics."""

from repro.cache.line import LineState
from repro.coherence.policy import SyncPolicy
from repro.memory.directory import DirState

from tests.conftest import make_machine, run_one, run_seq


def put(p, addr, v):
    yield p.store(addr, v)


def get(p, addr):
    v = yield p.load(addr)
    return v


def line_of(m, pid, addr):
    return m.nodes[pid].controller.cache.lookup(m.block_of(addr), touch=False)


def entry_of(m, addr):
    block = m.block_of(addr)
    return m.nodes[m.home_of(block)].home.directory.entry(block)


def test_store_updates_all_cached_copies():
    m = make_machine()
    addr = m.alloc_sync(SyncPolicy.UPD, home=1)
    run_seq(m, [(0, get, addr), (2, get, addr), (3, put, addr, 9)])
    offset = m.offset_of(addr)
    for pid in (0, 2):
        line = line_of(m, pid, addr)
        assert line is not None
        assert line.read_word(offset) == 9


def test_writer_retains_shared_copy():
    m = make_machine()
    addr = m.alloc_sync(SyncPolicy.UPD, home=1)
    run_one(m, 0, put, addr, 3)
    line = line_of(m, 0, addr)
    assert line is not None and line.state is LineState.SHARED
    # Memory stays the owner: a following local read is a hit.
    assert run_one(m, 0, get, addr) == 3


def test_directory_never_exclusive():
    m = make_machine()
    addr = m.alloc_sync(SyncPolicy.UPD, home=1)
    run_seq(m, [(0, put, addr, 1), (2, put, addr, 2), (3, get, addr)])
    assert entry_of(m, addr).state is DirState.SHARED


def test_read_after_remote_write_is_hit():
    # The UPD advantage: alternating writers keep everyone's read hit rate
    # high (paper §3: "a high read hit rate, even in the case of
    # alternating accesses by different processors").
    m = make_machine()
    addr = m.alloc_sync(SyncPolicy.UPD, home=1)
    run_seq(m, [(0, get, addr), (2, put, addr, 5)])

    def hit_read(p):
        before = m.mesh.stats.messages
        value = yield p.load(addr)
        return value, m.mesh.stats.messages - before

    value, messages = run_one(m, 0, hit_read)
    assert value == 5 and messages == 0


def test_same_value_store_sends_no_updates():
    # Memory-side optimization: an update that does not change the word
    # sends no update traffic (the copies are already coherent).
    m = make_machine()
    addr = m.alloc_sync(SyncPolicy.UPD, home=1)
    m.write_word(addr, 7)
    run_seq(m, [(0, get, addr), (2, get, addr)])

    def same_store(p):
        yield p.store(addr, 7)

    before = m.mesh.stats.by_type.get("UPDATE", 0)
    run_one(m, 3, same_store)
    assert m.mesh.stats.by_type.get("UPDATE", 0) == before


def test_failed_cas_sends_no_updates():
    m = make_machine()
    addr = m.alloc_sync(SyncPolicy.UPD, home=1)
    m.write_word(addr, 7)
    run_seq(m, [(0, get, addr), (2, get, addr)])

    def failing_cas(p):
        result = yield p.cas(addr, 0, 1)
        return result

    before = m.mesh.stats.by_type.get("UPDATE", 0)
    result = run_one(m, 3, failing_cas)
    assert not result.success
    assert m.mesh.stats.by_type.get("UPDATE", 0) == before


def test_successful_cas_updates_copies():
    m = make_machine()
    addr = m.alloc_sync(SyncPolicy.UPD, home=1)
    run_seq(m, [(0, get, addr)])

    def winning_cas(p):
        result = yield p.cas(addr, 0, 4)
        return result

    assert run_one(m, 2, winning_cas).success
    assert line_of(m, 0, addr).read_word(m.offset_of(addr)) == 4


def test_fetch_add_result_and_updates():
    m = make_machine()
    addr = m.alloc_sync(SyncPolicy.UPD, home=1)
    run_seq(m, [(0, get, addr)])

    def adder(p):
        old = yield p.fetch_add(addr, 5)
        return old

    assert run_one(m, 2, adder) == 0
    assert line_of(m, 0, addr).read_word(m.offset_of(addr)) == 5
    assert m.read_word(addr) == 5


def test_evicted_sharer_still_acks_updates():
    # An UPDATE aimed at a sharer that silently lost its line must still
    # be acknowledged so the writer's transaction completes.
    from repro.config import SimConfig, MachineConfig
    from repro import build_machine
    m = build_machine(SimConfig(machine=MachineConfig(
        n_nodes=4, cache_sets=1, cache_assoc=1)))
    addr = m.alloc_sync(SyncPolicy.UPD, home=1)
    filler = m.alloc_data(1)

    def reader_then_evict(p):
        yield p.load(addr)
        yield p.load(filler)   # evicts the UPD line (drop notice in flight)
        yield p.barrier(0, 2)
        yield p.barrier(1, 2)

    def writer(p):
        yield p.barrier(0, 2)
        yield p.store(addr, 3)
        yield p.barrier(1, 2)

    m.spawn(0, reader_then_evict)
    m.spawn(2, writer)
    m.run(max_events=1_000_000)
    assert m.read_word(addr) == 3
