"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import pytest

from repro import SimConfig, build_machine
from repro.config import MachineConfig


def make_machine(n_nodes: int = 4, **kwargs):
    """A small machine for protocol tests."""
    config = SimConfig(machine=MachineConfig(n_nodes=n_nodes), **kwargs)
    return build_machine(config)


def run_one(machine, pid: int, program_fn, *args):
    """Run one program on ``pid`` to completion; return its result."""
    box = {}

    def wrapper(p):
        box["result"] = yield from program_fn(p, *args)

    machine.spawn(pid, wrapper)
    machine.run()
    return box.get("result")


def run_seq(machine, steps):
    """Run ``(pid, program_fn, *args)`` steps one after another.

    Each step runs to completion before the next starts, which lets tests
    stage caches and directories into exact states.  Returns the list of
    program results.
    """
    results = []
    for pid, program_fn, *args in steps:
        results.append(run_one(machine, pid, program_fn, *args))
    return results


@pytest.fixture
def machine4():
    """A 4-node machine with default timing."""
    return make_machine(4)


@pytest.fixture
def machine16():
    """A 16-node machine with default timing."""
    return make_machine(16)
