"""Protocol tracer tests."""

from repro import SyncPolicy
from repro.debug.trace import ProtocolTracer

from tests.conftest import make_machine, run_one


def put(p, addr, v):
    yield p.store(addr, v)


def test_trace_records_transaction_messages():
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.INV, home=1)
    tracer = ProtocolTracer(m)
    run_one(m, 0, put, addr, 5)
    types = [r.mtype for r in tracer.records]
    assert "GETX" in types and "DATA_X" in types


def test_block_filter():
    m = make_machine(4)
    a = m.alloc_sync(SyncPolicy.INV, home=1)
    b = m.alloc_sync(SyncPolicy.INV, home=1)
    tracer = ProtocolTracer(m, blocks={m.block_of(a)})
    run_one(m, 0, put, a, 1)
    run_one(m, 0, put, b, 2)
    assert len(tracer) > 0
    assert all(r.block == m.block_of(a) for r in tracer.records)


def test_chain_depths_recorded():
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.INV, home=1)
    run_one(m, 2, put, addr, 1)      # make the line remote exclusive
    tracer = ProtocolTracer(m, blocks={m.block_of(addr)})
    run_one(m, 0, put, addr, 2)      # 4-serialized-message transfer
    assert max(r.chain for r in tracer.records) == 4


def test_transactions_grouping():
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.INV, home=1)
    tracer = ProtocolTracer(m)
    run_one(m, 0, put, addr, 1)
    groups = tracer.transactions()
    assert (0, m.block_of(addr)) in groups


def test_render_and_len():
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.INV, home=1)
    tracer = ProtocolTracer(m)
    run_one(m, 0, put, addr, 1)
    text = tracer.render()
    assert "GETX" in text
    assert str(len(tracer)) in text.splitlines()[0]
    tail = tracer.render(last=1)
    assert len(tail.splitlines()) == 2


def test_limit_drops_excess():
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.INV, home=1)
    tracer = ProtocolTracer(m, limit=1)
    run_one(m, 0, put, addr, 1)
    assert len(tracer) == 1
    assert tracer.dropped > 0


def test_detach_stops_recording():
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.INV, home=1)
    tracer = ProtocolTracer(m)
    run_one(m, 0, put, addr, 1)
    count = len(tracer)
    tracer.detach()
    run_one(m, 2, put, addr, 2)
    assert len(tracer) == count


def test_chained_observers_both_fire():
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.INV, home=1)
    first = ProtocolTracer(m)
    second = ProtocolTracer(m)   # chains onto the first
    run_one(m, 0, put, addr, 1)
    assert len(first) == len(second) > 0


def test_detach_out_of_order():
    # Regression: the seed tracer restored mesh.observer on detach, so
    # detaching an earlier tracer silently disconnected every later one.
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.INV, home=1)
    first = ProtocolTracer(m)
    second = ProtocolTracer(m)
    third = ProtocolTracer(m)
    run_one(m, 0, put, addr, 1)
    baseline = len(third)
    assert baseline > 0
    second.detach()
    first.detach()
    first.detach()  # idempotent
    run_one(m, 2, put, addr, 2)
    assert len(third) > baseline
    assert len(first) == len(second) == baseline
