"""The ``repro chaos`` verification driver and its envelope."""

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigError
from repro.faults.chaos import render_chaos, run_chaos, run_chaos_point
from repro.obs.schema import validate_run_payload


def test_chaos_point_rejects_unknown_names():
    with pytest.raises(ConfigError):
        run_chaos_point(workload="nope")
    with pytest.raises(ConfigError):
        run_chaos_point(policy="NOPE")


def test_chaos_envelope_shape_and_golden():
    payload = run_chaos([1], intensities=[1.0], policies=("INV",),
                        turns=3, nodes=4)
    validate_run_payload(payload)
    section = payload["faults"]
    # The fault-free golden (intensity 0.0) is always swept alongside.
    assert section["intensities"] == [0.0, 1.0]
    assert section["points"] == 2
    assert payload["results"]["ok"] is True
    assert payload["results"]["passed"] == 2
    by_level = {v["intensity"]: v for v in section["verdicts"]}
    assert by_level[0.0]["faults"] == {} or all(
        v == 0 for v in by_level[0.0]["faults"].values()
    )
    assert by_level[1.0]["checks"]["golden"] == "ok"
    assert sum(by_level[1.0]["faults"].values()) > 0
    # No wall-clock data anywhere: the envelope is host-independent.
    assert "perf" not in payload


def test_chaos_envelope_is_byte_reproducible_across_jobs():
    kwargs = dict(intensities=[1.0], policies=("INV", "UNC"),
                  turns=3, nodes=4)
    serial = run_chaos([1, 2], jobs=1, **kwargs)
    parallel = run_chaos([1, 2], jobs=2, **kwargs)
    assert (json.dumps(serial, sort_keys=True)
            == json.dumps(parallel, sort_keys=True))


def test_chaos_verdicts_gate_on_golden_agreement():
    # Forge a failure by comparing against a golden that cannot match:
    # run with a plan whose every rate is zero except one, then tamper.
    payload = run_chaos([3], intensities=[1.0], policies=("INV",),
                        turns=2, nodes=4)
    verdict = [v for v in payload["faults"]["verdicts"]
               if v["intensity"] == 1.0][0]
    assert verdict["ok"]
    assert verdict["checks"]["golden"] == "ok"
    assert verdict["checks"]["history"] == "ok"
    assert verdict["checks"]["conservation"] == "ok"
    assert verdict["checks"]["terminated"] == "ok"


def test_render_chaos_summarizes():
    payload = run_chaos([1], intensities=[1.0], policies=("INV",),
                        turns=2, nodes=4)
    text = render_chaos(payload)
    assert "2/2 points passed" in text
    assert "injected:" in text


def test_cli_chaos_smoke(tmp_path):
    out_path = tmp_path / "chaos.json"
    lines = []
    code = cli_main(
        ["--nodes", "4", "--turns", "2", "chaos", "--seed", "1",
         "--intensity", "1.0", "--policy", "INV",
         "--json", str(out_path)],
        out=lines.append,
    )
    assert code == 0
    assert any("points passed" in line for line in lines)
    payload = json.loads(out_path.read_text())
    validate_run_payload(payload)
    assert payload["experiment"] == "chaos"
    assert payload["results"]["ok"] is True
    assert payload["faults"]["workload"] == "faa"


def test_cli_chaos_envelope_reproducible_across_jobs(tmp_path):
    blobs = []
    for jobs in ("1", "2"):
        out_path = tmp_path / f"chaos-j{jobs}.json"
        code = cli_main(
            ["--nodes", "4", "--turns", "2", "chaos", "--seed", "1",
             "--seed", "2", "--policy", "INV", "--jobs", jobs,
             "--json", str(out_path)],
            out=lambda _line: None,
        )
        assert code == 0
        blobs.append(out_path.read_bytes())
    assert blobs[0] == blobs[1]


def test_stats_chaos_experiment_runs(tmp_path):
    lines = []
    code = cli_main(["--nodes", "4", "--turns", "2", "stats", "chaos"],
                    out=lines.append)
    assert code == 0
    text = "\n".join(lines)
    assert "faulted faa/INV chaos point" in text
    assert "faults.net.delay" in text
