"""End-to-end fault injection: correctness and determinism under chaos."""

import dataclasses

import pytest

from repro.apps.synthetic import SyntheticSpec, run_lockfree_counter
from repro.coherence.policy import SyncPolicy
from repro.config import small_config
from repro.faults.chaos import run_chaos_point
from repro.faults.plan import DEFAULT_CHAOS_PLAN, FaultPlan
from repro.harness.shardrun import run_shard
from repro.sync.variant import PrimitiveVariant


def _chaos_machine(config, **kwargs):
    """Run one chaos point; return (verdict, machine)."""
    holder = {}
    verdict = run_chaos_point(
        config=config, observe=lambda m: holder.update(machine=m), **kwargs
    )
    return verdict, holder["machine"]


def test_zero_intensity_plan_is_bit_identical_to_plain_run():
    # An inactive plan must build no injector at all: same end time, same
    # registry, same verdict — structurally, not statistically, identical.
    plain = small_config(n_nodes=4)
    zeroed = dataclasses.replace(
        plain, faults=DEFAULT_CHAOS_PLAN.scaled(0.0)
    )
    verdict_a, machine_a = _chaos_machine(plain, turns=3)
    verdict_b, machine_b = _chaos_machine(zeroed, turns=3)
    assert machine_a.faults is None
    assert machine_b.faults is None
    assert machine_a.registry.snapshot() == machine_b.registry.snapshot()
    assert machine_a.now == machine_b.now
    # fault_seed legitimately differs (None vs the inactive plan's seed).
    verdict_a.pop("fault_seed")
    verdict_b.pop("fault_seed")
    assert verdict_a == verdict_b


@pytest.mark.parametrize("policy", ["INV", "UPD", "UNC"])
def test_full_intensity_chaos_point_stays_correct(policy):
    cfg = dataclasses.replace(
        small_config(n_nodes=8), faults=DEFAULT_CHAOS_PLAN
    )
    verdict, _ = _chaos_machine(cfg, policy=policy, turns=4)
    assert verdict["ok"], verdict["checks"]
    assert verdict["final"] == verdict["expected"] == 4 * 8
    # The plan's rates are high enough that faults actually fired.
    assert sum(verdict["faults"].values()) > 0


def test_llsc_point_survives_reservation_kills():
    plan = dataclasses.replace(DEFAULT_CHAOS_PLAN, res_kill_rate=0.3)
    cfg = dataclasses.replace(small_config(n_nodes=8), faults=plan)
    verdict, _ = _chaos_machine(cfg, policy="UNC", workload="llsc", turns=4)
    assert verdict["ok"], verdict["checks"]
    assert verdict["faults"]["faults.res.kill"] > 0


def test_dup_fires_on_drop_traffic_and_counter_stays_correct():
    # DROP notices flow when an update-policy line is relinquished via
    # drop_copy; the duplicated notice is idempotent, so the counter
    # check inside run_lockfree_counter must still pass.
    cfg = dataclasses.replace(
        small_config(n_nodes=4), faults=FaultPlan(seed=2, net_dup_rate=0.5)
    )
    holder = {}
    result = run_lockfree_counter(
        PrimitiveVariant("fap", SyncPolicy.UPD, use_drop=True),
        SyntheticSpec(contention=4, turns=3),
        cfg,
        observe=lambda m: holder.update(machine=m),
    )
    snap = holder["machine"].registry.snapshot()
    assert snap["faults.net.dup"] > 0
    assert result.extra["counter"] == result.updates


def test_chaos_point_is_deterministic():
    cfg = dataclasses.replace(
        small_config(n_nodes=8), faults=DEFAULT_CHAOS_PLAN
    )
    first = run_chaos_point(config=cfg, turns=3)
    second = run_chaos_point(config=cfg, turns=3)
    assert first == second


@pytest.mark.parametrize("shards", [2, 4])
def test_faulted_run_is_shard_invariant(shards):
    # The per-(site, node) fault streams make a faulted machine
    # bit-identical at any shard count, exactly like a fault-free one.
    cfg = dataclasses.replace(
        small_config(n_nodes=8),
        faults=dataclasses.replace(DEFAULT_CHAOS_PLAN, seed=5),
    )
    solo = run_shard(cfg, shards=1, turns=3)
    split = run_shard(cfg, shards=shards, turns=3)
    assert split.results == solo.results
    assert split.metrics == solo.metrics
    assert solo.metrics["faults.net.delay"] > 0
