"""The declarative fault plan and its seeded injector."""

import dataclasses
import pickle

import pytest

from repro.errors import ConfigError
from repro.faults.plan import (
    _RATE_FIELDS,
    DEFAULT_CHAOS_PLAN,
    FaultInjector,
    FaultPlan,
)
from repro.obs.events import EventBus, EventRecorder
from repro.obs.registry import MetricsRegistry


def test_inactive_by_default():
    plan = FaultPlan()
    assert not plan.active
    plan.validate()


def test_any_positive_rate_activates():
    for field in _RATE_FIELDS:
        plan = dataclasses.replace(FaultPlan(), **{field: 0.1})
        assert plan.active, field


def test_validate_rejects_illegal_rates_and_bounds():
    with pytest.raises(ConfigError):
        FaultPlan(net_delay_rate=1.0).validate()      # livelock-capable
    with pytest.raises(ConfigError):
        FaultPlan(res_kill_rate=-0.1).validate()
    with pytest.raises(ConfigError):
        FaultPlan(net_delay_max=0).validate()
    with pytest.raises(ConfigError):
        FaultPlan(cpu_stall_max=0).validate()
    DEFAULT_CHAOS_PLAN.validate()


def test_scaled_multiplies_and_clamps():
    plan = FaultPlan(net_delay_rate=0.4, net_dup_rate=0.1)
    half = plan.scaled(0.5)
    assert half.net_delay_rate == pytest.approx(0.2)
    assert half.net_dup_rate == pytest.approx(0.05)
    zero = plan.scaled(0.0)
    assert not zero.active
    zero.validate()
    # Large intensities can never push a rate to the livelock regime.
    huge = plan.scaled(100.0)
    huge.validate()
    assert huge.net_delay_rate < 1.0


def test_plan_is_picklable_and_hashable():
    plan = dataclasses.replace(DEFAULT_CHAOS_PLAN, seed=7)
    assert pickle.loads(pickle.dumps(plan)) == plan
    assert hash(plan) == hash(dataclasses.replace(plan))


def test_describe_round_trips():
    plan = DEFAULT_CHAOS_PLAN
    assert FaultPlan(**plan.describe()) == plan


def test_injector_streams_are_deterministic():
    def draws(seed):
        inj = FaultInjector(dataclasses.replace(
            DEFAULT_CHAOS_PLAN, seed=seed))
        return ([inj.net_delay(dst) for dst in range(4) for _ in range(50)],
                [inj.home_nak(node) for node in range(4) for _ in range(50)],
                [inj.cpu_stall(pid) for pid in range(4) for _ in range(50)])

    assert draws(1) == draws(1)
    assert draws(1) != draws(2)


def test_injector_streams_are_per_site_independent():
    # Drawing from one site must not perturb another site's stream, or
    # sharded machines (which interleave sites differently) would
    # diverge from the single-machine run.
    plan = dataclasses.replace(DEFAULT_CHAOS_PLAN, seed=3)
    solo = FaultInjector(plan)
    solo_delay = [solo.net_delay(0) for _ in range(100)]

    mixed = FaultInjector(plan)
    out = []
    for i in range(100):
        mixed.home_nak(1)          # interleave a different site
        out.append(mixed.net_delay(0))
        mixed.res_kill(2)
    assert out == solo_delay


def test_injector_counts_and_emits():
    registry = MetricsRegistry()
    bus = EventBus()
    recorder = EventRecorder(bus, kinds=("fault.inject",))

    class FakeSim:
        now = 42

    inj = FaultInjector(
        dataclasses.replace(DEFAULT_CHAOS_PLAN, seed=1,
                            net_delay_rate=0.9, net_delay_max=4),
        registry=registry, events=bus, sim=FakeSim(),
    )
    delays = [inj.net_delay(0) for _ in range(50)]
    fired = sum(1 for d in delays if d)
    assert fired > 0
    assert all(1 <= d <= 4 for d in delays if d)
    snap = registry.snapshot()
    assert snap["faults.net.delay"] == fired
    assert snap["faults.net.delay_cycles"] == sum(delays)
    assert len(recorder) == fired
    assert recorder.events[0].ts == 42
    assert recorder.events[0].data["site"] == "net.delay"
