"""Ablation drivers at small scale."""

from repro import SimConfig
from repro.config import small_config
from repro.harness.ablation import (
    RESERVATION_STRATEGIES,
    run_dropcopy_ablation,
    run_reservation_ablation,
)

CFG8 = SimConfig().with_nodes(8)


def test_reservation_ablation_covers_all_strategies():
    outcome = run_reservation_ablation(CFG8, contention=4, turns=3,
                                       reservation_limit=2)
    assert set(outcome.results) == set(RESERVATION_STRATEGIES)
    for avg, failures in outcome.results.values():
        assert avg > 0
        assert failures >= 0
    # With limit=2 and 4 contenders, the bounded strategies must shed.
    assert outcome.results["limited"][1] > 0


def test_dropcopy_ablation_table_shape():
    outcome = run_dropcopy_ablation(CFG8, turns=3)
    assert outcome.panels == ["a=1", "a=10", "c=8"]
    assert outcome.variants == ["INV", "INV+dc", "UPD", "UPD+dc"]
    assert len(outcome.table) == 12
    assert all(v > 0 for v in outcome.table.values())


def test_dropcopy_long_run_claim_at_small_scale():
    outcome = run_dropcopy_ablation(CFG8, turns=4)
    # Long write runs: dropping the line is always a loss for INV.
    assert outcome.table[("a=10", "INV+dc")] > outcome.table[("a=10", "INV")]


def test_directory_ablation_equivalence_and_sweep_shape():
    from repro.harness.ablation import (
        DIRECTORY_REPRESENTATIONS,
        run_directory_ablation,
    )

    outcome = run_directory_ablation(
        small_config(n_nodes=8), sizes=(8, 16), contentions=(4, 16), turns=2
    )
    eq = outcome.equivalence
    assert eq["nodes"] == 8
    assert eq["identical"] is True
    assert len(eq["runs"]) == len(DIRECTORY_REPRESENTATIONS)
    # Sweep: contention 16 only fits the 16-node machine -> 3 + 6 points.
    assert len(outcome.points) == 9
    for point in outcome.points:
        assert point["final_value"] == point["final_expected"]
    # At every (nodes, contention) the full vector sends the fewest
    # messages and never records spurious invalidation targets.
    by_cell = {}
    for point in outcome.points:
        by_cell.setdefault((point["nodes"], point["contention"]),
                           {})[point["representation"]] = point
    for cell in by_cell.values():
        assert cell["full"]["spurious_targets"] == 0
        assert cell["full"]["messages"] <= cell["limited"]["messages"]
        assert cell["full"]["messages"] <= cell["coarse"]["messages"]
