"""Ablation drivers at small scale."""

from repro import SimConfig
from repro.harness.ablation import (
    RESERVATION_STRATEGIES,
    run_dropcopy_ablation,
    run_reservation_ablation,
)

CFG8 = SimConfig().with_nodes(8)


def test_reservation_ablation_covers_all_strategies():
    outcome = run_reservation_ablation(CFG8, contention=4, turns=3,
                                       reservation_limit=2)
    assert set(outcome.results) == set(RESERVATION_STRATEGIES)
    for avg, failures in outcome.results.values():
        assert avg > 0
        assert failures >= 0
    # With limit=2 and 4 contenders, the bounded strategies must shed.
    assert outcome.results["limited"][1] > 0


def test_dropcopy_ablation_table_shape():
    outcome = run_dropcopy_ablation(CFG8, turns=3)
    assert outcome.panels == ["a=1", "a=10", "c=8"]
    assert outcome.variants == ["INV", "INV+dc", "UPD", "UPD+dc"]
    assert len(outcome.table) == 12
    assert all(v > 0 for v in outcome.table.values())


def test_dropcopy_long_run_claim_at_small_scale():
    outcome = run_dropcopy_ablation(CFG8, turns=4)
    # Long write runs: dropping the line is always a loss for INV.
    assert outcome.table[("a=10", "INV+dc")] > outcome.table[("a=10", "INV")]
