"""CLI smoke tests (small machines, captured output)."""

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, "\n".join(lines)


def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table1_exits_zero_and_prints():
    code, text = run_cli(["table1"])
    assert code == 0
    assert "Table 1" in text
    assert "INV to remote exclusive" in text


def test_figure3_small():
    code, text = run_cli(["--nodes", "4", "--turns", "2", "figure3"])
    assert code == 0
    assert "FAP/UNC" in text and "CAS+lx/INV" in text


def test_ablation_dropcopy_small():
    code, text = run_cli(["--nodes", "4", "--turns", "2",
                          "ablation-dropcopy"])
    assert code == 0
    assert "INV+dc" in text


def test_ablation_reservations_small():
    code, text = run_cli(["--nodes", "8", "--turns", "2",
                          "ablation-reservations"])
    assert code == 0
    for strategy in ("bitvector", "limited", "linkedlist", "serial"):
        assert strategy in text


def test_out_directory_written(tmp_path):
    code, text = run_cli(["--nodes", "4", "--turns", "2",
                          "--out", str(tmp_path), "figure3"])
    assert code == 0
    assert (tmp_path / "figure3.txt").exists()
    assert "FAP/UNC" in (tmp_path / "figure3.txt").read_text()


def test_table1_json_after_subcommand(tmp_path):
    from repro.obs.schema import validate_run_payload

    out = tmp_path / "table1.json"
    code, _ = run_cli(["table1", "--json", str(out)])
    assert code == 0
    payload = validate_run_payload(out.read_text(), experiment="table1")
    assert payload["results"]["match"] is True
    assert payload["results"]["measured"]["INV to remote exclusive"] == 4


def test_figure3_json_schema(tmp_path):
    from repro.obs.schema import validate_run_payload

    out = tmp_path / "fig3.json"
    code, _ = run_cli(["--nodes", "4", "--turns", "1", "figure3",
                       "--json", str(out)])
    assert code == 0
    payload = validate_run_payload(out.read_text(), experiment="figure3")
    assert payload["params"]["nodes"] == 4
    assert payload["results"]["panels"]


def test_stats_subcommand(tmp_path):
    from repro.obs.schema import validate_run_payload

    out = tmp_path / "stats.json"
    code, text = run_cli(["--nodes", "4", "--turns", "2", "stats",
                          "figure3", "--json", str(out)])
    assert code == 0
    assert "net.messages" in text
    assert "latency breakdown" in text
    payload = validate_run_payload(out.read_text())
    assert "metrics" in payload and "latency" in payload
    assert payload["metrics"]["net.messages"] > 0


def test_trace_subcommand_formats(tmp_path):
    import json

    code, text = run_cli(["--nodes", "4", "trace", "table1"])
    assert code == 0
    assert "GETX" in text

    code, text = run_cli(["--nodes", "4", "trace", "table1",
                          "--format", "chrome"])
    assert code == 0
    doc = json.loads(text)
    assert all("ph" in e and "ts" in e and "pid" in e
               for e in doc["traceEvents"])

    code, text = run_cli(["--nodes", "4", "trace", "table1",
                          "--format", "jsonl"])
    assert code == 0
    assert all(json.loads(line) for line in text.splitlines())


def test_trace_block_filter():
    import json

    code, text = run_cli(["--nodes", "4", "trace", "table1",
                          "--block", "99999", "--format", "jsonl"])
    assert code == 0
    assert text.strip() == ""  # nothing touches that block
    code, text = run_cli(["--nodes", "4", "trace", "table1",
                          "--format", "jsonl"])
    blocks = {json.loads(line).get("block") for line in text.splitlines()}
    assert blocks  # the unfiltered trace does see blocks
