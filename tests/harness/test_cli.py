"""CLI smoke tests (small machines, captured output)."""

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, "\n".join(lines)


def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table1_exits_zero_and_prints():
    code, text = run_cli(["table1"])
    assert code == 0
    assert "Table 1" in text
    assert "INV to remote exclusive" in text


def test_figure3_small():
    code, text = run_cli(["--nodes", "4", "--turns", "2", "figure3"])
    assert code == 0
    assert "FAP/UNC" in text and "CAS+lx/INV" in text


def test_ablation_dropcopy_small():
    code, text = run_cli(["--nodes", "4", "--turns", "2",
                          "ablation-dropcopy"])
    assert code == 0
    assert "INV+dc" in text


def test_ablation_reservations_small():
    code, text = run_cli(["--nodes", "8", "--turns", "2",
                          "ablation-reservations"])
    assert code == 0
    for strategy in ("bitvector", "limited", "linkedlist", "serial"):
        assert strategy in text


def test_out_directory_written(tmp_path):
    code, text = run_cli(["--nodes", "4", "--turns", "2",
                          "--out", str(tmp_path), "figure3"])
    assert code == 0
    assert (tmp_path / "figure3.txt").exists()
    assert "FAP/UNC" in (tmp_path / "figure3.txt").read_text()


def test_table1_json_after_subcommand(tmp_path):
    from repro.obs.schema import validate_run_payload

    out = tmp_path / "table1.json"
    code, _ = run_cli(["table1", "--json", str(out)])
    assert code == 0
    payload = validate_run_payload(out.read_text(), experiment="table1")
    assert payload["results"]["match"] is True
    assert payload["results"]["measured"]["INV to remote exclusive"] == 4


def test_figure3_json_schema(tmp_path):
    from repro.obs.schema import validate_run_payload

    out = tmp_path / "fig3.json"
    code, _ = run_cli(["--nodes", "4", "--turns", "1", "figure3",
                       "--json", str(out)])
    assert code == 0
    payload = validate_run_payload(out.read_text(), experiment="figure3")
    assert payload["params"]["nodes"] == 4
    assert payload["results"]["panels"]


def test_stats_subcommand(tmp_path):
    from repro.obs.schema import validate_run_payload

    out = tmp_path / "stats.json"
    code, text = run_cli(["--nodes", "4", "--turns", "2", "stats",
                          "figure3", "--json", str(out)])
    assert code == 0
    assert "net.messages" in text
    assert "latency breakdown" in text
    payload = validate_run_payload(out.read_text())
    assert "metrics" in payload and "latency" in payload
    assert payload["metrics"]["net.messages"] > 0


def test_trace_subcommand_formats(tmp_path):
    import json

    code, text = run_cli(["--nodes", "4", "trace", "table1"])
    assert code == 0
    assert "GETX" in text

    code, text = run_cli(["--nodes", "4", "trace", "table1",
                          "--format", "chrome"])
    assert code == 0
    doc = json.loads(text)
    assert all("ph" in e and "ts" in e and "pid" in e
               for e in doc["traceEvents"])

    code, text = run_cli(["--nodes", "4", "trace", "table1",
                          "--format", "jsonl"])
    assert code == 0
    assert all(json.loads(line) for line in text.splitlines())


def test_trace_block_filter():
    import json

    code, text = run_cli(["--nodes", "4", "trace", "table1",
                          "--block", "99999", "--format", "jsonl"])
    assert code == 0
    assert text.strip() == ""  # nothing touches that block
    code, text = run_cli(["--nodes", "4", "trace", "table1",
                          "--format", "jsonl"])
    blocks = {json.loads(line).get("block") for line in text.splitlines()}
    assert blocks  # the unfiltered trace does see blocks


def test_critpath_subcommand(tmp_path):
    import json

    from repro.obs.schema import validate_run_payload

    out = tmp_path / "critpath.json"
    code, text = run_cli(["--nodes", "4", "--turns", "2", "critpath",
                          "figure3", "--worst", "2", "--json", str(out)])
    assert code == 0
    assert "blame by hop kind" in text
    assert "worst transactions" in text
    payload = validate_run_payload(out.read_text())
    critpath = payload["critpath"]
    assert critpath["txns"] > 0
    assert sum(critpath["by_kind"].values()) == critpath["cycles"]
    assert len(critpath["worst"]) <= 2
    for txn in critpath["worst"]:
        assert sum(step["cycles"] for step in txn["path"]) == txn["cycles"]
    assert json.loads(out.read_text())["schema"] == "repro.run/1"


def test_hotspots_subcommand(tmp_path):
    from repro.obs.schema import validate_run_payload

    out = tmp_path / "hotspots.json"
    code, text = run_cli(["--nodes", "4", "--turns", "2", "hotspots",
                          "figure3", "--top", "3", "--json", str(out)])
    assert code == 0
    assert "contention score" in text
    payload = validate_run_payload(out.read_text())
    top = payload["hotspots"]["top"]
    assert top and top[0]["score"] >= top[-1]["score"]
    assert len(top) <= 3


def test_stats_jsonl_format():
    import json

    code, text = run_cli(["--nodes", "4", "--turns", "2", "stats",
                          "figure3", "--format", "jsonl"])
    assert code == 0
    records = [json.loads(line) for line in text.splitlines()]
    kinds = [r["record"] for r in records]
    assert kinds[0] == "run" and kinds[-1] == "results"
    assert "metric" in kinds and "latency" in kinds
    assert "critpath" in kinds and "hotspot" in kinds


def test_stats_json_envelope_carries_critpath_and_hotspots(tmp_path):
    from repro.obs.schema import validate_run_payload

    out = tmp_path / "stats.json"
    code, _ = run_cli(["--nodes", "4", "--turns", "2", "stats", "figure3",
                       "--json", str(out)])
    assert code == 0
    payload = validate_run_payload(out.read_text())
    assert "critpath" in payload and "hotspots" in payload
    assert payload["results"]["transactions"] > 0


def test_report_subcommand(tmp_path):
    run_json = tmp_path / "run.json"
    code, _ = run_cli(["--nodes", "4", "table1", "--json", str(run_json)])
    assert code == 0

    # default output: input path with .html suffix
    code, text = run_cli(["report", str(run_json)])
    assert code == 0
    default_out = tmp_path / "run.html"
    assert default_out.exists()
    assert str(default_out) in text

    target = tmp_path / "sub" / "report.html"
    code, _ = run_cli(["report", str(run_json), "-o", str(target),
                       "--title", "CLI report"])
    assert code == 0
    html = target.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "CLI report" in html
    for panel in ("panel-1", "panel-2", "panel-3", "panel-4"):
        assert panel in html


def test_report_rejects_invalid_json(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "nope"}')
    with pytest.raises(ValueError):
        run_cli(["report", str(bad)])


def test_perf_quick_prints_and_writes_envelope(tmp_path):
    from repro.obs.schema import validate_run_payload

    out = tmp_path / "BENCH_PERF.json"
    code, text = run_cli(["perf", "--quick", "--reps", "1",
                          "--kernel", "event_churn", "--json", str(out)])
    assert code == 0
    assert "event_churn" in text and "events/s" in text
    payload = validate_run_payload(out.read_text(), experiment="perf")
    assert payload["results"]["event_churn"]["proxies"]["events"] == 60_016


def test_stats_surfaces_wall_clock_perf():
    code, text = run_cli(["--nodes", "4", "--turns", "2",
                          "stats", "table1"])
    assert code == 0
    assert "events/s" in text


# ----------------------------------------------------------------------
# Self-profiling and telemetry.
# ----------------------------------------------------------------------

def test_profile_subcommand_text():
    code, text = run_cli(["profile", "--quick"])
    assert code == 0
    assert "profile — table1" in text
    assert "engine.dispatch" in text


def test_profile_subcommand_json_validates(tmp_path):
    import json

    from repro.obs.schema import validate_run_payload

    out = tmp_path / "prof"
    code, text = run_cli(["profile", "--quick", "--format", "json",
                          "--out", str(out)])
    assert code == 0
    payload = validate_run_payload(text, experiment="instrumented-table1")
    prof = payload["profile"]
    assert prof["attributed_ns"] + prof["dispatch_ns"] == prof["total_ns"]
    assert prof["kinds"]
    on_disk = json.loads((out / "profile-table1.json").read_text())
    assert on_disk == payload


def test_profile_subcommand_collapsed(tmp_path):
    stacks = tmp_path / "out.collapsed"
    code, text = run_cli(["profile", "--quick", "--format", "collapsed",
                          "--collapsed", str(stacks)])
    assert code == 0
    lines = stacks.read_text().splitlines()
    assert any(line.startswith("engine;dispatch ") for line in lines)
    for line in lines:
        frames, _, ns = line.rpartition(" ")
        assert ";" in frames and int(ns) >= 0


def test_profile_flag_injects_section_into_json(tmp_path, capsys):
    import json

    from repro.obs.schema import validate_run_payload

    target = tmp_path / "stats.json"
    code, _ = run_cli(["--nodes", "4", "--turns", "2", "--profile",
                       "stats", "figure3", "--json", str(target)])
    assert code == 0
    payload = validate_run_payload(target.read_text())
    assert "profile" in payload
    assert payload["profile"]["kinds"]
    # The human-readable table lands on stderr, leaving stdout clean.
    assert "engine.dispatch" in capsys.readouterr().err
    json.loads(target.read_text())


def test_telemetry_flag_streams_jsonl(tmp_path):
    import json

    sink = tmp_path / "beats.jsonl"
    code, _ = run_cli(["--nodes", "4", "--turns", "2",
                       "--telemetry", str(sink),
                       "--telemetry-every", "20", "stats", "figure3"])
    assert code == 0
    records = [json.loads(s) for s in sink.read_text().splitlines()]
    assert records, "no heartbeats written"
    for r in records:
        assert r["record"] == "run.progress"
        assert r["events"] % 20 == 0
        assert r["queue_depth"] >= 0


def test_telemetry_results_bit_identical(tmp_path):
    base = tmp_path / "plain.json"
    wired = tmp_path / "wired.json"
    code, _ = run_cli(["table1", "--no-cache", "--json", str(base)])
    assert code == 0
    code, _ = run_cli(["table1", "--no-cache", "--json", str(wired),
                       "--telemetry", str(tmp_path / "beats.jsonl"),
                       "--telemetry-every", "50"])
    assert code == 0
    assert base.read_text() == wired.read_text()


def test_progress_format_jsonl(tmp_path, capsys):
    import json

    code, _ = run_cli(["table1", "--no-cache", "--progress",
                       "--progress-format", "jsonl"])
    assert code == 0
    records = [json.loads(s)
               for s in capsys.readouterr().err.splitlines() if s]
    kinds = [r["record"] for r in records]
    assert kinds[0] == "sweep.start" and kinds[-1] == "sweep.done"
    assert kinds.count("sweep.point") == records[0]["total"]


def test_progress_format_rejects_unknown():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["table1", "--progress-format", "csv"])


def test_topology_and_directory_flags_parse():
    args = build_parser().parse_args(
        ["--nodes", "16", "--topology", "torus", "--directory", "limited",
         "--dir-pointers", "2", "--dir-region", "4", "figure3"]
    )
    assert args.topology == "torus"
    assert args.directory == "limited"
    assert args.dir_pointers == 2
    assert args.dir_region == 4


def test_unknown_topology_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--topology", "ring", "figure3"])


def test_machine_params_tag_envelopes(tmp_path):
    import json

    out = tmp_path / "figure3.json"
    code, _ = run_cli(["--nodes", "4", "--turns", "2",
                       "--topology", "torus", "--directory", "limited",
                       "--dir-pointers", "2", "figure3",
                       "--json", str(out)])
    assert code == 0
    params = json.loads(out.read_text())["params"]
    assert params["topology"] == "torus"
    assert params["directory"] == "limited:2"


def test_directory_flags_reach_the_machine():
    # limited:1 on 4 nodes must still produce correct figure3 numbers
    # (the directory representation never changes protocol results).
    code, text = run_cli(["--nodes", "4", "--turns", "2",
                          "--directory", "limited", "--dir-pointers", "1",
                          "figure3"])
    assert code == 0
    assert "FAP/UNC" in text


def test_ablation_directory_small(tmp_path):
    import json

    out = tmp_path / "ablation_directory.json"
    code, text = run_cli(["--nodes", "8", "--turns", "2",
                          "ablation-directory", "--sizes", "8",
                          "--json", str(out)])
    assert code == 0
    assert "directory sharer-set representations" in text.lower()
    payload = json.loads(out.read_text())
    eq = payload["results"]["equivalence"]
    assert eq["identical"] is True
    reps = {p["representation"] for p in payload["results"]["points"]}
    assert reps == {"full", "limited", "coarse"}
