"""CLI smoke tests (small machines, captured output)."""

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, "\n".join(lines)


def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table1_exits_zero_and_prints():
    code, text = run_cli(["table1"])
    assert code == 0
    assert "Table 1" in text
    assert "INV to remote exclusive" in text


def test_figure3_small():
    code, text = run_cli(["--nodes", "4", "--turns", "2", "figure3"])
    assert code == 0
    assert "FAP/UNC" in text and "CAS+lx/INV" in text


def test_ablation_dropcopy_small():
    code, text = run_cli(["--nodes", "4", "--turns", "2",
                          "ablation-dropcopy"])
    assert code == 0
    assert "INV+dc" in text


def test_ablation_reservations_small():
    code, text = run_cli(["--nodes", "8", "--turns", "2",
                          "ablation-reservations"])
    assert code == 0
    for strategy in ("bitvector", "limited", "linkedlist", "serial"):
        assert strategy in text


def test_out_directory_written(tmp_path):
    code, text = run_cli(["--nodes", "4", "--turns", "2",
                          "--out", str(tmp_path), "figure3"])
    assert code == 0
    assert (tmp_path / "figure3.txt").exists()
    assert "FAP/UNC" in (tmp_path / "figure3.txt").read_text()
