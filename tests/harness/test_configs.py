"""The figure variant enumeration must match the paper's bar layout."""

from repro.coherence.policy import SyncPolicy
from repro.harness.configs import figure_variants, policy_survey_variants


def test_twenty_one_bars():
    assert len(figure_variants()) == 21


def test_unc_group_first():
    variants = figure_variants()
    assert [v.policy for v in variants[:3]] == [SyncPolicy.UNC] * 3
    assert [v.family for v in variants[:3]] == ["fap", "llsc", "cas"]


def test_inv_groups_have_four_cas_bars_each():
    variants = figure_variants()
    for base in (3, 9):  # without and with drop_copy
        group = variants[base:base + 6]
        cas_bars = [v for v in group if v.family == "cas"]
        assert len(cas_bars) == 4
        policies = {v.policy for v in cas_bars}
        assert policies == {SyncPolicy.INV, SyncPolicy.INVD, SyncPolicy.INVS}
        assert sum(v.use_lx for v in cas_bars) == 1
    assert all(v.use_drop for v in variants[9:15])
    assert not any(v.use_drop for v in variants[3:9])


def test_upd_groups():
    variants = figure_variants()
    assert [v.policy for v in variants[15:21]] == [SyncPolicy.UPD] * 6
    assert not any(v.use_drop for v in variants[15:18])
    assert all(v.use_drop for v in variants[18:21])


def test_labels_unique():
    labels = [v.label for v in figure_variants()]
    assert len(labels) == len(set(labels))


def test_policy_survey_covers_three_policies():
    policies = [v.policy for v in policy_survey_variants()]
    assert policies == [SyncPolicy.UNC, SyncPolicy.INV, SyncPolicy.UPD]
