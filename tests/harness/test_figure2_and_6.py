"""Scaled-down Figure 2 / Figure 6 harness runs."""

from repro.coherence.policy import SyncPolicy
from repro.config import SimConfig
from repro.harness.figure2 import run_figure2
from repro.harness.figure6 import render_figure6, run_figure6
from repro.sync.variant import PrimitiveVariant

CFG8 = SimConfig().with_nodes(8)


def test_figure2_structure_and_claims():
    result = run_figure2(CFG8, tclosure_size=12, locusroute_wires=24,
                         cholesky_columns=24)
    assert set(result.apps) == {"locusroute", "cholesky", "tclosure"}
    for app in result.apps:
        assert set(result.apps[app]) == {"UNC", "INV", "UPD"}
    # Shape: the barrier-aligned closure app contends far more on average
    # than the lock-based apps (paper Figure 2).
    def mean_level(histogram):
        return sum(level * pct for level, pct in histogram.items()) / 100.0

    for policy in ("UNC", "INV", "UPD"):
        locus = mean_level(result.histogram("locusroute", policy))
        chol = mean_level(result.histogram("cholesky", policy))
        tclo = mean_level(result.histogram("tclosure", policy))
        assert tclo > locus
        assert tclo > chol


def test_figure2_write_runs_in_lock_regime():
    result = run_figure2(CFG8, tclosure_size=12, locusroute_wires=24,
                         cholesky_columns=24)
    for app in ("locusroute", "cholesky"):
        for policy in ("UNC", "INV", "UPD"):
            assert 1.0 <= result.write_run(app, policy) <= 2.2


def test_figure6_structure():
    variants = [
        PrimitiveVariant("fap", SyncPolicy.UNC),
        PrimitiveVariant("fap", SyncPolicy.INV),
    ]
    result = run_figure6(CFG8, variants=variants, tclosure_size=10,
                         locusroute_wires=16, cholesky_columns=16)
    assert set(result.apps) == {"locusroute", "cholesky", "tclosure"}
    for app, bars in result.apps.items():
        assert [label for label, _ in bars] == ["FAP/UNC", "FAP/INV"]
        assert all(cycles > 0 for _, cycles in bars)
    text = render_figure6(result)
    assert "FAP/UNC" in text and "cholesky" in text
