"""Scaled-down figure runs: structure and headline shape claims."""

import pytest

from repro.apps.synthetic import SyntheticSpec
from repro.coherence.policy import SyncPolicy
from repro.config import SimConfig
from repro.harness.figures import (
    contention_panels,
    no_contention_panels,
    render_figure,
    run_counter_figure,
    run_figure3,
)
from repro.apps.synthetic import run_lockfree_counter
from repro.sync.variant import PrimitiveVariant

CFG8 = SimConfig().with_nodes(8)

SMALL_VARIANTS = [
    PrimitiveVariant("fap", SyncPolicy.UNC),
    PrimitiveVariant("fap", SyncPolicy.INV),
    PrimitiveVariant("cas", SyncPolicy.INV, use_lx=True),
    PrimitiveVariant("fap", SyncPolicy.UPD),
]


def test_panel_spec_enumeration():
    specs = no_contention_panels()
    assert [s.write_run for s in specs] == [1.0, 1.5, 2.0, 3.0, 10.0]
    assert all(s.contention == 1 for s in specs)
    cont = contention_panels(64)
    assert [s.contention for s in cont] == [2, 4, 8, 16, 64]


def test_contention_panels_clip_to_machine():
    cont = contention_panels(8)
    assert [s.contention for s in cont] == [2, 4, 8]


def test_run_counter_figure_structure():
    specs = [SyntheticSpec(contention=1, turns=4),
             SyntheticSpec(contention=4, turns=4)]
    panels = run_counter_figure(run_lockfree_counter, CFG8, turns=4,
                                variants=SMALL_VARIANTS, specs=specs)
    assert len(panels) == 2
    assert panels[0].label == "c=1 a=1"
    assert panels[1].label == "c=4"
    for panel in panels:
        assert [label for label, _ in panel.bars] == \
               [v.label for v in SMALL_VARIANTS]
        assert all(value > 0 for _, value in panel.bars)


def test_figure3_headline_shapes():
    # The paper's two headline Figure 3 claims, on a scaled-down machine:
    # (1) UNC fetch_and_add wins under contention;
    # (2) INV wins for long write runs.
    specs = [SyntheticSpec(contention=1, write_run=10.0, turns=8),
             SyntheticSpec(contention=8, turns=8)]
    panels = run_figure3(CFG8, turns=8, variants=SMALL_VARIANTS, specs=specs)
    long_run, contended = panels
    assert long_run.value("FAP/INV") < long_run.value("FAP/UNC")
    assert contended.value("FAP/UNC") < contended.value("FAP/INV")
    assert contended.value("FAP/UNC") < contended.value("FAP/UPD")


def test_render_figure_contains_all_bars():
    specs = [SyntheticSpec(contention=1, turns=2)]
    panels = run_figure3(CFG8, turns=2, variants=SMALL_VARIANTS, specs=specs)
    text = render_figure(panels, "Figure 3")
    for variant in SMALL_VARIANTS:
        assert variant.label in text


def test_panel_value_unknown_label():
    specs = [SyntheticSpec(contention=1, turns=2)]
    panels = run_figure3(CFG8, turns=2, variants=SMALL_VARIANTS, specs=specs)
    with pytest.raises(KeyError):
        panels[0].value("nonexistent")
