"""The self-contained HTML run report."""

import json
import re

import pytest

from repro.config import small_config
from repro.harness.htmlreport import load_payload, render_report, write_report
from repro.harness.instrumented import run_instrumented
from repro.obs.schema import make_run_payload

PANEL_IDS = ("panel-1", "panel-2", "panel-3", "panel-4", "panel-5",
             "panel-6")


def _bench_table1_payload():
    """The shape ``bench_table1`` writes: results only, no instruments."""
    counts = {"UNC": 2, "INV to remote exclusive": 4}
    return make_run_payload(
        "table1", params={"nodes": 64, "turns": 6},
        results={"expected": counts, "measured": dict(counts),
                 "match": True},
    )


def _assert_selfcontained(html: str) -> None:
    """One document, no external requests, all four panels present."""
    assert html.startswith("<!DOCTYPE html>")
    assert not re.search(r'(?:src|href)\s*=\s*["\']', html), \
        "a self-contained report must not reference external resources"
    assert "@import" not in html and "url(" not in html
    for panel in PANEL_IDS:
        assert f'id="{panel}"' in html


def test_bench_table1_envelope_renders_all_four_panels():
    html = render_report(_bench_table1_payload())
    _assert_selfcontained(html)
    # Panel 1 is populated; 2–4 render explanatory empty states.
    assert "INV to remote exclusive" in html
    assert html.count("match") >= 2
    assert html.count('class="empty"') >= 3


def test_mismatch_is_flagged():
    payload = _bench_table1_payload()
    payload["results"]["measured"]["UNC"] = 3
    payload["results"]["match"] = False
    html = render_report(payload)
    assert "differs" in html
    assert "diverge" in html


def test_instrumented_envelope_populates_every_panel():
    run = run_instrumented("figure3", small_config(n_nodes=4), turns=2)
    html = render_report(run.payload())
    _assert_selfcontained(html)
    assert "<svg" in html
    assert "critical-path" in html or "critical path" in html
    assert "txn" in html                      # a waterfall heading
    assert "contention score" in html or "block" in html
    # the hotspot table lists the counter's block
    top = run.hotspots.snapshot(top_n=1)["top"]
    assert top and f"<td>{top[0]['block']}</td>" in html


def test_counter_figure_small_multiples():
    panels = [
        {"label": "c=1", "bars": [["FAP/INV", 100.0], ["CAS/INV", 120.0]]},
        {"label": "c=4", "bars": [["FAP/INV", 180.0], ["CAS/INV", 260.0]]},
    ]
    payload = make_run_payload("figure3", params={"nodes": 4},
                               results={"panels": panels})
    html = render_report(payload)
    _assert_selfcontained(html)
    assert html.count("polyline") >= 2        # one line chart per variant
    assert "FAP/INV" in html and "CAS/INV" in html
    assert "shared y scale" in html


def test_figure2_policy_series_and_write_runs():
    apps = {
        "cholesky": {
            "UNC": {"histogram": {"1": 90.0, "2": 10.0}, "write_run": 1.1},
            "INV": {"histogram": {"1": 80.0, "2": 20.0}, "write_run": 1.6},
            "UPD": {"histogram": {"1": 85.0, "2": 15.0}, "write_run": 1.3},
        },
    }
    payload = make_run_payload("figure2", params={"nodes": 4},
                               results={"apps": apps})
    html = render_report(payload)
    _assert_selfcontained(html)
    assert "cholesky" in html
    assert "write-run" in html
    assert html.count("polyline") >= 3        # one series per policy


def test_figure6_bars():
    payload = make_run_payload(
        "figure6", params={"nodes": 4},
        results={"apps": {"mp3d": [["FAP/INV", 21427], ["CAS/INV", 21499]]}},
    )
    html = render_report(payload)
    _assert_selfcontained(html)
    assert "mp3d" in html and "21427" in html
    assert "<rect" in html


def test_waterfall_steps_on_transaction_timeline():
    run = run_instrumented("figure3", small_config(n_nodes=4), turns=2)
    payload = run.payload()
    worst = payload["critpath"]["worst"][0]
    html = render_report(payload)
    # every critical-path step of the worst txn appears as a titled rect
    for step in worst["path"]:
        assert step["kind"] in html
    assert f"txn {worst['txn_id']}" in html


def test_html_escapes_untrusted_strings():
    payload = _bench_table1_payload()
    payload["results"]["expected"] = {"<script>alert(1)</script>": 1}
    payload["results"]["measured"] = {"<script>alert(1)</script>": 1}
    html = render_report(payload)
    assert "<script>" not in html
    assert "&lt;script&gt;" in html


def test_write_report_and_load_payload_roundtrip(tmp_path):
    source = tmp_path / "deep" / "run.json"
    source.parent.mkdir()
    source.write_text(json.dumps(_bench_table1_payload()))
    payload = load_payload(source)
    target = tmp_path / "nested" / "dir" / "report.html"
    write_report(payload, target, title="demo report")
    html = target.read_text()
    _assert_selfcontained(html)
    assert "<title>demo report</title>" in html


def test_invalid_payload_rejected():
    with pytest.raises(ValueError):
        render_report({"schema": "bogus/9", "results": {}})


def test_profile_panel_renders_handler_bars():
    from repro.obs.profile import profiled

    with profiled() as prof:
        run = run_instrumented("figure3", small_config(n_nodes=4), turns=2)
    html = render_report(run.payload(profile=prof.snapshot()))
    _assert_selfcontained(html)
    assert "Host-time profile" in html
    assert "engine.dispatch" in html
    # At least one machine handler shows up as a bar label.
    assert "CacheController" in html or "Process" in html


def test_profile_panel_empty_state_without_section():
    html = render_report(_bench_table1_payload())
    assert "Host-time profile" in html
    assert "repro profile" in html        # the empty state names the command


def test_shard_panel_renders_sync_metrics():
    from repro.harness.shardrun import run_shard
    from repro.obs.shardobs import ShardObsOptions

    outcome = run_shard(small_config(n_nodes=16), shards=2, turns=2,
                        obs=ShardObsOptions(spans=True))
    payload = make_run_payload(
        "shard", params={"nodes": 16, "turns": 2, "shards": 2},
        results=outcome.results, critpath=outcome.critpath,
        shard=outcome.shard)
    html = render_report(payload)
    _assert_selfcontained(html)
    assert "Sharded execution" in html
    assert "lookahead" in html
    assert "cross-region traffic" in html
    assert "busy share" in html
    assert "stitched" in html


def test_shard_panel_empty_state_without_section():
    html = render_report(_bench_table1_payload())
    assert "Sharded execution" in html
    assert "repro shard" in html          # the empty state names the command
