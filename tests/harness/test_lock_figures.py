"""Scaled-down Figure 4 / Figure 5 driver runs (structure + shape)."""

from repro.apps.synthetic import SyntheticSpec
from repro.coherence.policy import SyncPolicy
from repro.config import SimConfig
from repro.harness.figures import run_figure4, run_figure5
from repro.sync.variant import PrimitiveVariant

CFG8 = SimConfig().with_nodes(8)

VARIANTS = [
    PrimitiveVariant("fap", SyncPolicy.INV),
    PrimitiveVariant("fap", SyncPolicy.UPD),
    PrimitiveVariant("cas", SyncPolicy.UPD),
    PrimitiveVariant("llsc", SyncPolicy.UPD),
]

SPECS = [
    SyntheticSpec(contention=1, turns=4),
    SyntheticSpec(contention=8, turns=4),
]


def test_figure4_driver_structure_and_upd_claim():
    panels = run_figure4(CFG8, turns=4, variants=VARIANTS, specs=SPECS)
    assert [p.label for p in panels] == ["c=1 a=1", "c=8"]
    contended = panels[1]
    # The paper's TTS claim at high contention: UPD beats INV.
    assert contended.value("FAP/UPD") < contended.value("FAP/INV")
    # And under UPD, CAS beats the LL/SC simulation.
    assert contended.value("CAS/UPD") < contended.value("LLSC/UPD")


def test_figure5_driver_structure_and_simulation_cost():
    panels = run_figure5(CFG8, turns=4, variants=VARIANTS, specs=SPECS)
    uncontended = panels[0]
    # Simulating the MCS atomics with LL/SC costs more than native.
    assert uncontended.value("LLSC/UPD") > uncontended.value("CAS/UPD")
    for panel in panels:
        assert all(value > 0 for _, value in panel.bars)
