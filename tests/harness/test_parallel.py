"""Parallel sweep executor: determinism, caching, content addressing."""

import pickle

import pytest

from repro import SimConfig, SyncPolicy
from repro.apps.synthetic import SyntheticSpec, run_lockfree_counter
from repro.errors import ConfigError
from repro.harness import parallel
from repro.harness.parallel import (
    ResultCache,
    SweepExecutor,
    attach_progress_printer,
    code_fingerprint,
    derive_point_seed,
    execute_point,
    make_point,
    point_key,
    resolve_runner,
    run_sweep,
    runner_ref,
)
from repro.harness.table1 import TABLE1_EXPECTED, run_table1
from repro.obs.events import EventBus
from repro.obs.registry import MetricsRegistry
from repro.sync.variant import PrimitiveVariant

CFG = SimConfig().with_nodes(4)
VARIANTS = [
    PrimitiveVariant("fap", SyncPolicy.UNC),
    PrimitiveVariant("cas", SyncPolicy.INV),
]
SPECS = [
    SyntheticSpec(contention=1, turns=3),
    SyntheticSpec(contention=2, turns=3),
]


def counter_points(config=CFG):
    return [
        make_point(run_lockfree_counter, variant=v, spec=s, config=config)
        for v in VARIANTS
        for s in SPECS
    ]


# ----------------------------------------------------------------------
# Runner references and point descriptors.
# ----------------------------------------------------------------------

def test_runner_ref_round_trips():
    ref = runner_ref(run_lockfree_counter)
    assert ref == "repro.apps.synthetic:run_lockfree_counter"
    assert resolve_runner(ref) is run_lockfree_counter


def test_runner_ref_rejects_locals():
    with pytest.raises(ConfigError):
        runner_ref(lambda: None)


def test_points_pickle_round_trip():
    for point in counter_points():
        assert pickle.loads(pickle.dumps(point)) == point


def test_point_key_stable_and_content_sensitive():
    a, b = counter_points()[0], counter_points()[0]
    assert point_key(a) == point_key(b)
    variants = {
        point_key(p)
        for p in (
            a,
            make_point(run_lockfree_counter, variant=VARIANTS[1],
                       spec=SPECS[0], config=CFG),
            make_point(run_lockfree_counter, variant=VARIANTS[0],
                       spec=SPECS[1], config=CFG),
            make_point(run_lockfree_counter, variant=VARIANTS[0],
                       spec=SPECS[0], config=CFG.with_nodes(8)),
            make_point(run_lockfree_counter, variant=VARIANTS[0],
                       spec=SPECS[0], config=CFG, extra=1),
        )
    }
    assert len(variants) == 5, "each descriptor change must change the key"


def test_point_key_changes_with_code_fingerprint():
    point = counter_points()[0]
    assert point_key(point) != point_key(point, fingerprint="0" * 64)


def test_derive_point_seed_deterministic_and_per_point():
    a, b = counter_points()[:2]
    assert derive_point_seed(a) == derive_point_seed(a)
    assert derive_point_seed(a) != derive_point_seed(b)
    # The derived seed ignores any prior seed override but tracks the
    # base seed, so reseeding is idempotent yet user-steerable.
    import dataclasses

    overridden = dataclasses.replace(a, seed=999)
    assert derive_point_seed(overridden) == derive_point_seed(a)
    assert derive_point_seed(a, base_seed=1) != derive_point_seed(a, base_seed=2)


# ----------------------------------------------------------------------
# Determinism: parallel == serial, bit for bit.
# ----------------------------------------------------------------------

def test_parallel_matches_serial_results_and_metrics():
    serial_reg = MetricsRegistry()
    parallel_reg = MetricsRegistry()
    serial = run_sweep(counter_points(), jobs=1, registry=serial_reg)
    fanned = run_sweep(counter_points(), jobs=4, registry=parallel_reg)
    assert [o.result for o in serial] == [o.result for o in fanned]
    assert serial_reg.snapshot() == parallel_reg.snapshot()
    assert serial_reg.snapshot()["net.messages"] > 0


def test_table1_parallel_matches_serial():
    assert run_table1(jobs=4) == run_table1(jobs=1) == TABLE1_EXPECTED


def test_execute_point_reports_machine_metrics():
    payload = execute_point(counter_points()[0])
    assert payload["metrics"]["net.messages"] > 0
    assert payload["result"]["__result__"] == "AppResult"


# ----------------------------------------------------------------------
# The content-addressed cache.
# ----------------------------------------------------------------------

def test_cache_hit_returns_identical_results(tmp_path):
    cache = ResultCache(tmp_path)
    first = run_sweep(counter_points(), cache=cache)
    assert (cache.hits, cache.misses, cache.stores) == (0, 4, 4)
    second = run_sweep(counter_points(), cache=cache)
    assert cache.hits == 4
    assert [o.result for o in first] == [o.result for o in second]
    assert [o.cached for o in first] == [False] * 4
    assert [o.cached for o in second] == [True] * 4
    assert [o.metrics for o in first] == [o.metrics for o in second]


def test_cache_invalidated_by_code_fingerprint(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    run_sweep(counter_points()[:1], cache=cache)
    monkeypatch.setattr(parallel, "_FINGERPRINT", "f" * 64)
    fresh = ResultCache(tmp_path)
    outcomes = run_sweep(counter_points()[:1], cache=fresh)
    assert fresh.hits == 0 and fresh.misses == 1
    assert outcomes[0].cached is False


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    point = counter_points()[0]
    run_sweep([point], cache=cache)
    path = cache.path_for(point_key(point))
    path.write_text("{not json")
    fresh = ResultCache(tmp_path)
    outcomes = run_sweep([point], cache=fresh)
    assert fresh.misses == 1
    assert outcomes[0].cached is False
    # ...and the entry is healed for the next reader.
    assert ResultCache(tmp_path).get(point_key(point)) is not None


def test_cache_rejects_key_mismatch(tmp_path):
    cache = ResultCache(tmp_path)
    point = counter_points()[0]
    run_sweep([point], cache=cache)
    key = point_key(point)
    other = "0" * 64
    cache.path_for(other).parent.mkdir(parents=True, exist_ok=True)
    cache.path_for(key).rename(cache.path_for(other))
    assert ResultCache(tmp_path).get(other) is None


def test_cache_shards_by_key_prefix(tmp_path):
    cache = ResultCache(tmp_path)
    key = point_key(counter_points()[0])
    assert cache.path_for(key) == tmp_path / key[:2] / f"{key}.json"


def test_executor_accepts_cache_path(tmp_path):
    executor = SweepExecutor(cache=tmp_path / "cache")
    executor.run(counter_points()[:1])
    assert executor.cache.stores == 1
    assert (tmp_path / "cache").is_dir()


def test_default_cache_dir_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
    assert parallel.default_cache_dir() == tmp_path / "env"


def test_code_fingerprint_is_memoized_hex():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64
    int(code_fingerprint(), 16)


# ----------------------------------------------------------------------
# Events, metrics, and progress reporting.
# ----------------------------------------------------------------------

def test_sweep_events_and_registry_counters():
    events = EventBus()
    seen = []
    events.subscribe(lambda e: seen.append(e))
    registry = MetricsRegistry()
    run_sweep(counter_points(), events=events, registry=registry)
    kinds = [e.kind for e in seen]
    assert kinds[0] == "sweep.start"
    assert kinds[-1] == "sweep.done"
    assert kinds.count("sweep.point") == 4
    snap = registry.snapshot()
    assert snap["sweep.points"] == 4
    assert snap["sweep.executed"] == 4
    assert "sweep.cache.hits" not in snap


def test_progress_printer_lines(capsys):
    events = EventBus()
    import sys

    attach_progress_printer(events, stream=sys.stderr)
    run_sweep(counter_points()[:2], events=events)
    err = capsys.readouterr().err
    assert "[sweep 1/2]" in err
    assert "[sweep] done: 0 cached, 2 simulated" in err


def test_reseed_applies_derived_seeds():
    points = counter_points()
    outcomes = run_sweep(points, reseed=True)
    assert [o.point.seed for o in outcomes] == [
        derive_point_seed(p) for p in points
    ]


def test_progress_jsonl_stream(capsys):
    import json
    import sys

    events = EventBus()
    parallel.attach_progress_jsonl(events, stream=sys.stderr)
    run_sweep(counter_points()[:2], events=events)
    records = [json.loads(s) for s in capsys.readouterr().err.splitlines()]
    kinds = [r["record"] for r in records]
    assert kinds == ["sweep.start", "sweep.point", "sweep.point",
                     "sweep.done"]
    for r in records:
        if r["record"] != "sweep.point":
            continue
        assert r["cached"] is False
        assert r["done"] in (1, 2) and r["total"] == 2
        assert r["wall_seconds"] > 0
        assert r["events"] > 0
        assert r["events_per_second"] > 0
    assert records[-1] == {"record": "sweep.done", "cached": 0,
                           "executed": 2, "total": 2}


def test_attach_progress_writer_dispatch():
    import io

    events = EventBus()
    parallel.attach_progress_writer(events, "text", stream=io.StringIO())
    parallel.attach_progress_writer(events, "jsonl", stream=io.StringIO())
    with pytest.raises(ConfigError, match="progress format"):
        parallel.attach_progress_writer(events, "csv")


# ----------------------------------------------------------------------
# Self-healing: retries, quarantine, timeouts, corrupt-cache hygiene.
# ----------------------------------------------------------------------

def _flaky_runner(sentinel=""):
    """Fails on its first call (creating the sentinel), then succeeds."""
    import os

    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        raise RuntimeError("transient failure")
    return {"value": 42}


def _failing_runner(tag=""):
    raise RuntimeError(f"persistent failure {tag}")


def _exit_once_runner(sentinel=""):
    """Hard-kills its worker process on the first call, then succeeds."""
    import os

    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os._exit(1)
    return {"value": "recovered"}


def _sleeping_runner(seconds=0.0):
    import time

    time.sleep(seconds)
    return {"value": "slept"}


def test_retry_recovers_flaky_point(tmp_path):
    point = make_point(_flaky_runner, sentinel=str(tmp_path / "tried"))
    outcomes = run_sweep([point], retries=1, retry_backoff=0.0)
    assert outcomes[0].attempts == 2
    assert outcomes[0].error is None
    assert outcomes[0].result == {"value": 42}


def test_failure_without_quarantine_aborts_the_sweep():
    from repro.errors import SimulationError

    point = make_point(_failing_runner, tag="abort")
    with pytest.raises(SimulationError, match="persistent failure abort"):
        run_sweep([point])


def test_quarantined_point_does_not_abort_the_sweep():
    registry = MetricsRegistry()
    points = [make_point(_failing_runner, tag="q"), counter_points()[0]]
    outcomes = run_sweep(points, quarantine=True, registry=registry)
    assert outcomes[0].error is not None
    assert "persistent failure q" in outcomes[0].error
    assert outcomes[0].result is None
    assert outcomes[1].error is None
    assert outcomes[1].result is not None
    snap = registry.snapshot()
    assert snap["sweep.quarantined"] == 1
    assert snap["sweep.points"] == 2
    assert snap["sweep.executed"] == 1


def test_pool_worker_crash_is_retried(tmp_path):
    # Two pending points so the pool path engages (a single point runs
    # serially, where os._exit would take the test process with it).
    points = [
        make_point(_exit_once_runner, sentinel=str(tmp_path / "crashed")),
        make_point(_sleeping_runner, seconds=0.0),
    ]
    outcomes = run_sweep(points, jobs=2, retries=1, retry_backoff=0.0)
    assert outcomes[0].attempts == 2
    assert outcomes[0].result == {"value": "recovered"}
    assert outcomes[1].result == {"value": "slept"}


def test_point_timeout_quarantines_hung_worker():
    # A hang is never retried (a deterministic hang would hang every
    # attempt); the poisoned pool is killed, not joined.
    import time

    registry = MetricsRegistry()
    t0 = time.monotonic()
    outcomes = run_sweep(
        [make_point(_sleeping_runner, seconds=60.0),
         make_point(_sleeping_runner, seconds=0.0)],
        jobs=2, point_timeout=1.0, retries=3, quarantine=True,
        registry=registry,
    )
    assert time.monotonic() - t0 < 20.0
    assert outcomes[0].attempts == 1
    assert outcomes[0].error is not None
    assert "still running after" in outcomes[0].error
    assert outcomes[1].error is None
    assert outcomes[1].result == {"value": "slept"}
    assert registry.snapshot()["sweep.quarantined"] == 1


def test_corrupt_cache_entry_is_quarantined_on_disk(tmp_path):
    registry = MetricsRegistry()
    cache = ResultCache(tmp_path)
    point = counter_points()[0]
    run_sweep([point], cache=cache)
    path = cache.path_for(point_key(point))
    path.write_text("{not json")
    fresh = ResultCache(tmp_path)
    run_sweep([point], cache=fresh, registry=registry)
    # The corrupt entry was moved aside for inspection, counted, and
    # surfaced through the sweep registry (repro stats shows it).
    assert fresh.corrupt == 1
    assert path.with_name(path.name + ".corrupt").exists()
    assert registry.snapshot()["sweep.cache.corrupt"] == 1


def test_point_telemetry_present_but_never_cached(tmp_path):
    points = counter_points()[:2]
    first = run_sweep(points, cache=tmp_path / "cache")
    for outcome in first:
        assert not outcome.cached
        assert outcome.telemetry["wall_seconds"] > 0
        assert outcome.telemetry["events"] > 0
    # Cache hits replay simulation outputs only — host wall numbers
    # from some earlier run must not resurface as if they were fresh.
    second = run_sweep(points, cache=tmp_path / "cache")
    for outcome in second:
        assert outcome.cached
        assert outcome.telemetry == {}
    assert [o.result for o in second] == [o.result for o in first]
