"""The wall-clock perf harness: kernels, determinism checks, envelope."""

import pytest

from repro.harness.perf import (
    PERF_KERNELS,
    perf_payload,
    render_perf,
    run_perf,
)
from repro.obs.schema import validate_run_payload


def test_every_kernel_reports_wall_and_proxies():
    results = run_perf(quick=True, reps=1)
    assert results["mode"] == "quick"
    assert set(results["kernels"]) == set(PERF_KERNELS)
    for report in results["kernels"].values():
        assert report["wall_seconds"] > 0
        assert report["reps"] == 1
        assert report["peak_alloc_kib"] > 0
        assert isinstance(report["proxies"], dict) and report["proxies"]


def test_kernel_subset_and_events_per_second():
    results = run_perf(quick=True, reps=1, kernels=["event_churn"])
    assert list(results["kernels"]) == ["event_churn"]
    churn = results["kernels"]["event_churn"]
    assert churn["events_per_second"] > 0
    assert churn["proxies"]["events"] == 60_016


def test_proxies_are_deterministic_across_invocations():
    first = run_perf(quick=True, reps=1, kernels=["faa_storm"])
    second = run_perf(quick=True, reps=1, kernels=["faa_storm"])
    assert (first["kernels"]["faa_storm"]["proxies"]
            == second["kernels"]["faa_storm"]["proxies"])


def test_nondeterministic_kernel_is_rejected(monkeypatch):
    ticket = iter(range(100))

    def flaky(quick):
        return {"events": 1, "end_cycle": next(ticket)}

    monkeypatch.setitem(PERF_KERNELS, "event_churn", flaky)
    with pytest.raises(RuntimeError, match="nondeterministic"):
        run_perf(quick=True, reps=1, kernels=["event_churn"])


def test_payload_is_a_valid_envelope():
    results = run_perf(quick=True, reps=1, kernels=["mesh_saturation"])
    payload = validate_run_payload(perf_payload(results), experiment="perf")
    assert payload["params"]["mode"] == "quick"
    assert "proxies" in payload["results"]["mesh_saturation"]


def test_render_lists_every_kernel():
    results = run_perf(quick=True, reps=1)
    text = render_perf(results)
    for name in PERF_KERNELS:
        assert name in text
    assert "quick mode" in text


def test_mesh_1024_kernel_registered_and_budgeted():
    from repro.harness.perf import MEM_BUDGETS_KIB

    assert "mesh_1024" in PERF_KERNELS
    assert set(MEM_BUDGETS_KIB) == set(PERF_KERNELS)
    results = run_perf(quick=True, reps=1, kernels=["mesh_1024"])
    report = results["kernels"]["mesh_1024"]
    assert report["budget_kib"] == MEM_BUDGETS_KIB["mesh_1024"]
    assert report["peak_alloc_kib"] <= report["budget_kib"]
    proxies = report["proxies"]
    # 1024 processors each fetch_add once on the uncached counter.
    assert proxies["unc_final"] == 1024
    # The limited-pointer directory broadcast past its 8 pointers.
    assert proxies["spurious_targets"] > 0
    assert proxies["imprecise_fanouts"] > 0


def test_memory_budget_violation_raises(monkeypatch):
    from repro.harness import perf

    monkeypatch.setitem(perf.MEM_BUDGETS_KIB, "event_churn", 0.001)
    with pytest.raises(RuntimeError, match="over its 0.001 KiB budget"):
        run_perf(quick=True, reps=1, kernels=["event_churn"])


def test_budget_kib_flows_into_payload():
    results = run_perf(quick=True, reps=1, kernels=["event_churn"])
    payload = validate_run_payload(perf_payload(results), experiment="perf")
    from repro.harness.perf import MEM_BUDGETS_KIB

    assert (payload["results"]["event_churn"]["budget_kib"]
            == MEM_BUDGETS_KIB["event_churn"])
