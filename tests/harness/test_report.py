"""Text rendering of tables and histograms."""

from repro.harness.report import render_histogram, render_table


def test_table_alignment_and_content():
    out = render_table(["name", "value"], [["a", 1], ["long-name", 23.5]],
                       title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert "23.5" in out and "long-name" in out


def test_table_without_title():
    out = render_table(["x"], [[1]])
    assert out.splitlines()[0].strip() == "x"


def test_float_formatting():
    out = render_table(["v"], [[3.14159]])
    assert "3.1" in out and "3.14159" not in out


def test_small_floats_keep_significant_digits():
    """Sub-0.05 rates must not collapse to an indistinguishable 0.0."""
    out = render_table(["v"], [[0.0123], [0.0004], [0.0], [-0.02]])
    lines = out.splitlines()
    assert "0.012" in lines[2]
    assert "0.0004" in lines[3]
    assert lines[4].strip() == "0.0"        # a true zero still reads 0.0
    assert "-0.02" in lines[5]


def test_histogram_small_percentages_visible():
    out = render_histogram({1: 99.96, 7: 0.04})
    assert "0.04%" in out
    assert " 0.0%" not in out


def test_histogram_bars_scale():
    out = render_histogram({1: 80.0, 4: 20.0}, title="H")
    lines = out.splitlines()
    assert lines[0] == "H"
    bar1 = lines[1].count("#")
    bar4 = lines[2].count("#")
    assert bar1 > bar4 > 0


def test_histogram_empty():
    out = render_histogram({}, title="empty")
    assert out == "empty"
