"""Self-healing of the sharded process backend: watchdog and retries."""

import os
import time

import pytest

from repro.config import small_config
from repro.errors import (
    DeadlockError,
    SimulationError,
    WorkerCrashError,
    WorkerHangError,
)
from repro.harness import shardwork
from repro.harness.shardrun import _ProcessBackend, run_shard
from repro.obs.events import EventBus, EventRecorder

CONFIG = small_config(n_nodes=4)


def _install(monkeypatch, name, description, setup=None, program=None):
    """Register a derived workload; fork inherits the patched table."""
    base = shardwork.SHARD_WORKLOADS["local_faa"]
    monkeypatch.setitem(
        shardwork.SHARD_WORKLOADS, name,
        shardwork.ShardWorkload(
            name=name,
            description=description,
            setup=setup if setup is not None else base.setup,
            program=program if program is not None else base.program,
        ),
    )


def _kill_once_program(sentinel):
    """A program that hard-kills its worker process exactly once."""
    base = shardwork.SHARD_WORKLOADS["local_faa"]

    def program(proc, ctx, turns):
        if proc.pid == 0 and not os.path.exists(sentinel):
            with open(sentinel, "w"):
                pass
            os._exit(3)
        yield from base.program(proc, ctx, turns)

    return program


def test_worker_killed_mid_window_recovers_by_retry(
        tmp_path, monkeypatch):
    # First attempt: worker 0's region dies with exit code 3.  The
    # coordinator classifies the crash, tears the pool down, and the
    # retry (sentinel now present) produces the same outcome as an
    # unperturbed run — except info["attempts"].
    sentinel = str(tmp_path / "killed")
    _install(monkeypatch, "kill_once", "dies once mid-window",
             program=_kill_once_program(sentinel))
    bus = EventBus()
    recorder = EventRecorder(bus, kinds=("shard.retry",))
    golden = run_shard(CONFIG, workload="local_faa", shards=2, turns=2)

    outcome = run_shard(CONFIG, workload="kill_once", shards=2, turns=2,
                        backend="process", retries=1, retry_backoff=0.01,
                        window_timeout=30.0, events=bus)
    assert outcome.info["attempts"] == 2
    assert (dict(outcome.results, workload="local_faa")
            == golden.results)
    assert outcome.metrics == golden.metrics
    assert len(recorder) == 1
    assert recorder.events[0].data["attempt"] == 1
    assert "WorkerCrashError" in recorder.events[0].data["reason"]


def test_worker_crash_raises_when_retries_exhausted(
        tmp_path, monkeypatch):
    sentinel = str(tmp_path / "killed")
    _install(monkeypatch, "kill_once_noretry", "dies once mid-window",
             program=_kill_once_program(sentinel))
    with pytest.raises(WorkerCrashError, match="died mid-window"):
        run_shard(CONFIG, workload="kill_once_noretry", shards=2, turns=2,
                  backend="process", retries=0, window_timeout=30.0)


def test_hung_worker_trips_window_watchdog(monkeypatch):
    # A worker that stops making progress while staying alive must be
    # classified as a hang (heartbeats prove liveness, not progress).
    def sleeping_setup(machine, turns):
        if machine.region is not None and 0 in machine.region:
            time.sleep(60)
        return shardwork.SHARD_WORKLOADS["local_faa"].setup(machine, turns)

    _install(monkeypatch, "sleeper", "sleeps past the watchdog",
             setup=sleeping_setup)
    t0 = time.monotonic()
    with pytest.raises(WorkerHangError, match="window watchdog"):
        run_shard(CONFIG, workload="sleeper", shards=2, turns=1,
                  backend="process", retries=0, window_timeout=0.6)
    # Failure-path teardown terminates the sleeper instead of waiting
    # out the graceful close; the whole thing is sub-5s.
    assert time.monotonic() - t0 < 5.0


def test_worker_traceback_propagates_mid_window(monkeypatch):
    # An exception inside a worker's simulation loop (not setup) must
    # surface with its traceback, and is NOT retryable: a deterministic
    # error would fail every attempt identically.
    def exploding_program(proc, ctx, turns):
        if proc.pid == 0:
            raise RuntimeError("boom mid-window")
        yield from shardwork.SHARD_WORKLOADS["local_faa"].program(
            proc, ctx, turns)

    _install(monkeypatch, "exploder", "raises mid-window",
             program=exploding_program)
    with pytest.raises(SimulationError,
                       match="boom mid-window") as excinfo:
        run_shard(CONFIG, workload="exploder", shards=2, turns=2,
                  backend="process", retries=3, retry_backoff=0.01)
    assert "Traceback" in str(excinfo.value)
    assert not isinstance(excinfo.value, (WorkerCrashError, WorkerHangError))


def test_deadlock_detected_across_regions_process_backend(monkeypatch):
    # The cross-region barrier deadlock must be detected under the
    # process backend too: workers drain, finish, and the coordinator
    # sees blocked programs in the merged finish payloads.
    def stuck_program(proc, ctx, turns):
        yield proc.barrier(0)

    _install(monkeypatch, "stuck_proc", "waits on an unfillable barrier",
             program=stuck_program)
    with pytest.raises(DeadlockError, match="blocked"):
        run_shard(CONFIG, workload="stuck_proc", shards=2, turns=1,
                  backend="process")


def test_close_escalates_to_kill_and_reports_leaks():
    # Unit-level: close() walks join -> terminate -> kill and surfaces
    # workers that survive everything instead of abandoning them.
    class FakeProc:
        def __init__(self, stubborn):
            self.stubborn = stubborn
            self.pid = 4242 if stubborn else 4243
            self.terminated = False
            self.killed = False

        def join(self, timeout=None):
            pass

        def is_alive(self):
            return self.stubborn

        def terminate(self):
            self.terminated = True

        def kill(self):
            self.killed = True

    backend = _ProcessBackend.__new__(_ProcessBackend)
    backend.conns = []
    soft = FakeProc(stubborn=False)
    hard = FakeProc(stubborn=True)
    backend.procs = [soft, hard]
    with pytest.raises(SimulationError, match="leaked after kill"):
        backend.close()
    assert hard.terminated and hard.killed
    assert not soft.terminated
    # Idempotent: the lists were popped before the walk.
    backend.close()


def test_watchdogged_run_matches_inline(monkeypatch):
    # Arming the watchdog must not perturb the simulation: the process
    # backend with heartbeats on is bit-identical to the inline run.
    inline = run_shard(CONFIG, workload="golden_contention", shards=2,
                       turns=2)
    guarded = run_shard(CONFIG, workload="golden_contention", shards=2,
                        turns=2, backend="process", window_timeout=30.0)
    assert guarded.results == inline.results
    assert guarded.metrics == inline.metrics
    assert guarded.info["attempts"] == 1
