"""Conservative-window sharded execution: determinism and safety."""

import json

import pytest

from repro.cli import main as cli_main
from repro.config import small_config
from repro.errors import ConfigError, DeadlockError, SimulationError
from repro.harness.shardrun import run_shard
from repro.network.partition import RegionPlan

CONFIG_16 = small_config(n_nodes=16)


def outputs(outcome):
    """The shard-count-invariant part of an outcome."""
    return outcome.results, outcome.metrics


# ----------------------------------------------------------------------
# The invariant: results and metrics are identical at any shard count.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("workload",
                         ["golden_contention", "uniform_faa", "local_faa"])
def test_inline_shard_counts_are_bit_identical(workload):
    reference = run_shard(CONFIG_16, workload=workload, shards=1, turns=4)
    assert reference.results["match"], reference.results
    for shards in (2, 3, 4):
        outcome = run_shard(CONFIG_16, workload=workload, shards=shards,
                            turns=4)
        assert outputs(outcome) == outputs(reference), f"shards={shards}"
        assert outcome.info["shards"] == shards


def test_uneven_cuts_are_bit_identical():
    reference = run_shard(CONFIG_16, shards=1, turns=4)
    for cuts in ((1,), (5, 9), (2, 3, 15)):
        outcome = run_shard(CONFIG_16, shards=len(cuts) + 1, turns=4,
                            cuts=cuts)
        assert outputs(outcome) == outputs(reference), f"cuts={cuts}"


def test_process_backend_matches_inline():
    inline = run_shard(CONFIG_16, shards=2, turns=3)
    process = run_shard(CONFIG_16, shards=2, turns=3, backend="process")
    assert outputs(process) == outputs(inline)
    assert process.info["backend"] == "process"


def test_arrival_streams_match_serial_order():
    # The per-destination arrival log captures the order the mesh
    # served contending messages; it must not depend on sharding.
    reference = run_shard(CONFIG_16, shards=1, turns=3, log_arrivals=True)
    sharded = run_shard(CONFIG_16, shards=4, turns=3, log_arrivals=True)
    merged = sorted(entry for log in sharded.arrival_logs for entry in log)
    assert merged == sorted(reference.arrival_logs[0])


def test_boundary_traffic_only_when_sharded():
    solo = run_shard(CONFIG_16, shards=1, turns=2)
    assert solo.info["boundary_messages"] == 0
    assert solo.info["lookahead"] == 0
    split = run_shard(CONFIG_16, shards=2, turns=2)
    assert split.info["boundary_messages"] > 0
    assert split.info["lookahead"] >= 1
    assert split.info["windows"] > 1


# ----------------------------------------------------------------------
# Window widening: faster when safe, loud when not.
# ----------------------------------------------------------------------

def test_wide_window_safe_for_local_traffic():
    narrow = run_shard(CONFIG_16, workload="local_faa", shards=4, turns=4)
    wide = run_shard(CONFIG_16, workload="local_faa", shards=4, turns=4,
                     window=1 << 20)
    assert outputs(wide) == outputs(narrow)
    assert wide.info["windows"] < narrow.info["windows"]


def test_wide_window_with_boundary_traffic_raises():
    with pytest.raises(SimulationError, match="window was wider"):
        run_shard(CONFIG_16, workload="golden_contention", shards=4,
                  turns=2, window=1 << 20)


# ----------------------------------------------------------------------
# Error paths.
# ----------------------------------------------------------------------

def test_unknown_backend_and_workload_rejected():
    with pytest.raises(ConfigError, match="unknown backend"):
        run_shard(CONFIG_16, backend="threads")
    with pytest.raises(ConfigError, match="unknown shard workload"):
        run_shard(CONFIG_16, workload="nonesuch")


def test_explicit_plan_is_validated():
    bad = RegionPlan(16, (tuple(range(8)), tuple(range(8, 15))),
                     lookahead=2)
    with pytest.raises(ConfigError, match="cover"):
        run_shard(CONFIG_16, shards=2, plan=bad)


def test_worker_failure_propagates_from_process_backend(monkeypatch):
    # A crash inside a forked region worker must surface as a
    # SimulationError carrying the worker's traceback, not a hang.
    from repro.harness import shardwork

    def exploding_setup(machine, turns):
        raise RuntimeError("boom in worker setup")

    workload = shardwork.SHARD_WORKLOADS["local_faa"]
    monkeypatch.setitem(
        shardwork.SHARD_WORKLOADS,
        "exploding",
        shardwork.ShardWorkload(
            name="exploding",
            description="raises during setup",
            setup=exploding_setup,
            program=workload.program,
        ),
    )
    with pytest.raises(SimulationError, match="boom in worker setup"):
        run_shard(small_config(n_nodes=4), workload="exploding", shards=2,
                  turns=1, backend="process")


def test_deadlock_detected_across_regions(monkeypatch):
    # Magic barriers are region-local, so a machine-wide barrier can
    # never complete under sharding: each region's two arrivals wait
    # for all four.  The coordinator must raise DeadlockError when the
    # queues drain with programs still blocked, not return quietly.
    from repro.harness import shardwork

    def stuck_program(proc, ctx, turns):
        yield proc.barrier(0)

    workload = shardwork.SHARD_WORKLOADS["local_faa"]
    monkeypatch.setitem(
        shardwork.SHARD_WORKLOADS,
        "stuck",
        shardwork.ShardWorkload(
            name="stuck",
            description="waits on a barrier no region can fill",
            setup=workload.setup,
            program=stuck_program,
        ),
    )
    with pytest.raises(DeadlockError, match="blocked"):
        run_shard(small_config(n_nodes=4), workload="stuck", shards=2,
                  turns=1)


# ----------------------------------------------------------------------
# CLI integration.
# ----------------------------------------------------------------------

def test_cli_shard_smoke(tmp_path):
    out_path = tmp_path / "shard.json"
    lines = []
    code = cli_main(
        ["--nodes", "16", "--turns", "2", "shard", "--shards", "2",
         "--backend", "inline", "--json", str(out_path)],
        out=lines.append,
    )
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert payload["experiment"] == "shard"
    assert payload["results"]["match"] is True
    assert payload["params"]["shards"] == 2
    assert payload["perf"]["boundary_messages"] > 0


def test_cli_shard_envelopes_match_across_shards(tmp_path):
    docs = []
    for shards in (1, 2):
        out_path = tmp_path / f"s{shards}.json"
        code = cli_main(
            ["--nodes", "16", "--turns", "2", "shard",
             "--shards", str(shards), "--backend", "inline",
             "--json", str(out_path)],
            out=lambda _line: None,
        )
        assert code == 0
        doc = json.loads(out_path.read_text())
        doc.pop("perf")
        doc.pop("shard")  # host-dependent sync metrics, like perf
        doc["params"].pop("shards")
        docs.append(doc)
    assert docs[0] == docs[1]
