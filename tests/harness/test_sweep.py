"""Sweep utility and CSV export."""

import csv

import pytest

from repro import SimConfig, SyncPolicy
from repro.apps.synthetic import SyntheticSpec, run_lockfree_counter
from repro.harness.parallel import ResultCache
from repro.harness.sweep import (
    SweepRow,
    rows_as_dicts,
    sweep_counter,
    write_csv,
)
from repro.sync.variant import PrimitiveVariant

CFG = SimConfig().with_nodes(4)
VARIANTS = [
    PrimitiveVariant("fap", SyncPolicy.UNC),
    PrimitiveVariant("fap", SyncPolicy.INV),
]
SPECS = [
    SyntheticSpec(contention=1, turns=4),
    SyntheticSpec(contention=2, turns=4),
]


@pytest.fixture(scope="module")
def rows():
    return sweep_counter(run_lockfree_counter, CFG, VARIANTS, SPECS)


def test_cross_product_size(rows):
    assert len(rows) == len(VARIANTS) * len(SPECS)


def test_rows_carry_parameters_and_measurements(rows):
    first = rows[0]
    assert isinstance(first, SweepRow)
    assert first.variant == "FAP/UNC"
    assert first.contention == 1
    assert first.updates > 0
    assert first.avg_cycles > 0


def test_rows_as_dicts_columns(rows):
    dicts = rows_as_dicts(rows)
    assert dicts[0].keys() == {
        "variant", "family", "policy", "use_lx", "use_drop", "contention",
        "write_run", "turns", "updates", "cycles", "avg_cycles",
        "measured_write_run",
    }


def test_csv_round_trip(rows, tmp_path):
    path = tmp_path / "sweep.csv"
    write_csv(path, rows)
    with open(path, newline="") as handle:
        loaded = list(csv.DictReader(handle))
    assert len(loaded) == len(rows)
    assert loaded[0]["variant"] == rows[0].variant
    assert float(loaded[0]["avg_cycles"]) == pytest.approx(rows[0].avg_cycles)


def test_write_csv_empty_rejected(tmp_path):
    with pytest.raises(ValueError):
        write_csv(tmp_path / "x.csv", [])


def test_write_csv_creates_parent_directories(rows, tmp_path):
    path = tmp_path / "deep" / "nested" / "sweep.csv"
    write_csv(path, rows)
    with open(path, newline="") as handle:
        assert len(list(csv.DictReader(handle))) == len(rows)


def test_from_result_flattens_fap_unc():
    variant = PrimitiveVariant("fap", SyncPolicy.UNC)
    spec = SyntheticSpec(contention=2, turns=4)
    result = run_lockfree_counter(variant, spec, CFG)
    row = SweepRow.from_result(variant, spec, result)
    assert row.variant == "FAP/UNC"
    assert row.family == "fap"
    assert row.policy == SyncPolicy.UNC.value
    assert row.use_lx is False and row.use_drop is False
    assert (row.contention, row.turns) == (2, 4)
    assert row.updates == result.updates
    assert row.cycles == result.cycles
    assert row.avg_cycles == result.avg_cycles
    assert row.measured_write_run == result.write_run


def test_sweep_counter_parallel_and_cached_match_serial(tmp_path):
    serial = sweep_counter(run_lockfree_counter, CFG, VARIANTS, SPECS)
    fanned = sweep_counter(
        run_lockfree_counter, CFG, VARIANTS, SPECS, jobs=2,
        cache=ResultCache(tmp_path),
    )
    cached = sweep_counter(
        run_lockfree_counter, CFG, VARIANTS, SPECS,
        cache=ResultCache(tmp_path),
    )
    assert serial == fanned == cached
