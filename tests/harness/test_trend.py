"""The nightly trend summarizer (``repro trend``)."""

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigError
from repro.harness.trend import (
    load_trend,
    render_trend,
    summarize_trend,
    trend_payload,
)
from repro.obs.schema import validate_run_payload


def record(date, wall, eps, bench_wall=2.0, sha="abc123", peak=512):
    return {
        "date": date,
        "sha": sha,
        "kernels": {
            "event_core": {"wall_seconds": wall,
                           "events_per_second": eps,
                           "peak_alloc_kib": peak},
        },
        "benchmarks": {"table1": {"wall_seconds": bench_wall}},
    }


STEADY = [record(f"2026-08-0{d}", 1.0, 800_000.0) for d in range(1, 6)]


def write_history(tmp_path, records, name="BENCH_trend.jsonl"):
    path = tmp_path / name
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
    return path


# ----------------------------------------------------------------------
# Loading: tolerant of an append-only file's rough edges.
# ----------------------------------------------------------------------

def test_load_missing_file_raises_config_error(tmp_path):
    with pytest.raises(ConfigError, match="trend history not found"):
        load_trend(tmp_path / "nope.jsonl")


def test_load_skips_blank_and_corrupt_lines(tmp_path):
    path = tmp_path / "trend.jsonl"
    path.write_text(
        json.dumps(STEADY[0]) + "\n"
        "\n"
        '{"truncated": \n'
        "[1, 2, 3]\n"                       # parses, but not a record
        + json.dumps(STEADY[1]) + "\n"
    )
    records = load_trend(path)
    assert [r["date"] for r in records] == ["2026-08-01", "2026-08-02"]


def test_load_last_keeps_trailing_records(tmp_path):
    path = write_history(tmp_path, STEADY)
    assert len(load_trend(path)) == 5
    records = load_trend(path, last=2)
    assert [r["date"] for r in records] == ["2026-08-04", "2026-08-05"]


# ----------------------------------------------------------------------
# Summaries: latest vs trailing median, flags past the threshold.
# ----------------------------------------------------------------------

def test_empty_and_single_record_histories_have_no_deltas():
    empty = summarize_trend([])
    assert empty["records"] == 0 and empty["regressions"] == []
    solo = summarize_trend(STEADY[:1])
    row = solo["kernels"]["event_core"]
    assert row["wall_seconds_delta_pct"] is None
    assert row["samples"] == 0 and not row["flagged"]
    assert solo["regressions"] == []
    assert solo["first_date"] == solo["last_date"] == "2026-08-01"


def test_steady_history_is_clean():
    summary = summarize_trend(STEADY)
    row = summary["kernels"]["event_core"]
    assert row["wall_seconds_delta_pct"] == 0.0
    assert row["samples"] == 4 and not row["flagged"]
    assert not summary["benchmarks"]["table1"]["flagged"]
    assert summary["regressions"] == []
    assert summary["sha"] == "abc123"


def test_wall_regression_is_flagged_past_threshold():
    history = STEADY + [record("2026-08-06", 1.2, 800_000.0)]
    summary = summarize_trend(history, threshold_pct=10.0)
    row = summary["kernels"]["event_core"]
    assert row["wall_seconds_delta_pct"] == pytest.approx(20.0)
    assert row["flagged"]
    assert any("kernel event_core: wall +20" in line
               for line in summary["regressions"])
    # The same delta under a looser threshold is advisory-clean.
    assert summarize_trend(history, threshold_pct=25.0)["regressions"] == []


def test_throughput_drop_and_bench_wall_are_flagged():
    history = STEADY + [record("2026-08-06", 1.0, 600_000.0,
                               bench_wall=3.0)]
    summary = summarize_trend(history)
    assert summary["kernels"]["event_core"]["flagged"]
    bench = summary["benchmarks"]["table1"]
    assert bench["wall_seconds_delta_pct"] == pytest.approx(50.0)
    assert bench["flagged"]
    kinds = [line.split(":")[0] for line in summary["regressions"]]
    assert kinds == ["kernel event_core", "benchmark table1"]


def test_one_noisy_prior_night_cannot_move_the_median_baseline():
    noisy = STEADY[:4] + [record("2026-08-05", 9.0, 80_000.0),
                          record("2026-08-06", 1.05, 790_000.0)]
    summary = summarize_trend(noisy)
    row = summary["kernels"]["event_core"]
    assert row["wall_seconds_median"] == pytest.approx(1.0)
    assert not row["flagged"]


def test_kernels_may_appear_between_nights():
    history = STEADY + [{
        "date": "2026-08-06", "sha": "def",
        "kernels": {"brand_new": {"wall_seconds": 2.0,
                                  "events_per_second": 100.0}},
        "benchmarks": {},
    }]
    summary = summarize_trend(history)
    assert list(summary["kernels"]) == ["brand_new"]
    row = summary["kernels"]["brand_new"]
    assert row["samples"] == 0 and not row["flagged"]


# ----------------------------------------------------------------------
# Rendering and the envelope.
# ----------------------------------------------------------------------

def test_render_clean_and_flagged():
    clean = render_trend(summarize_trend(STEADY))
    assert "5 record(s)" in clean
    assert "perf kernels" in clean and "event_core" in clean
    assert "no regressions beyond 10%" in clean
    flagged = render_trend(summarize_trend(
        STEADY + [record("2026-08-06", 1.5, 800_000.0)]))
    assert "FLAG" in flagged and "regressions flagged (>10%)" in flagged
    assert "(no trend history yet)" in render_trend(summarize_trend([]))


def test_trend_payload_is_a_valid_envelope():
    payload = trend_payload(summarize_trend(STEADY))
    assert validate_run_payload(payload) is payload
    assert payload["experiment"] == "trend"
    assert payload["params"]["records"] == 5
    assert payload["results"]["kernels"]["event_core"]["samples"] == 4


# ----------------------------------------------------------------------
# CLI integration.
# ----------------------------------------------------------------------

def test_cli_trend_clean_history(tmp_path):
    path = write_history(tmp_path, STEADY)
    lines = []
    code = cli_main(["trend", str(path)], out=lines.append)
    assert code == 0
    assert "no regressions" in "\n".join(lines)


def test_cli_trend_strict_flags_exit_one(tmp_path):
    path = write_history(tmp_path,
                         STEADY + [record("2026-08-06", 2.0, 800_000.0)])
    lines = []
    assert cli_main(["trend", str(path)], out=lines.append) == 0
    assert "FLAG" in "\n".join(lines)
    assert cli_main(["trend", str(path), "--strict"],
                    out=lambda _: None) == 1
    # --last trims the history to the flagged record alone: no priors,
    # nothing to compare, strict passes.
    assert cli_main(["trend", str(path), "--strict", "--last", "1"],
                    out=lambda _: None) == 0
    # a looser threshold also unflags it
    assert cli_main(["trend", str(path), "--strict",
                     "--threshold", "150"], out=lambda _: None) == 0


def test_cli_trend_writes_json_and_text_artifacts(tmp_path):
    path = write_history(tmp_path, STEADY)
    out_dir = tmp_path / "artifacts"
    json_path = tmp_path / "trend.json"
    code = cli_main(["trend", str(path), "--out", str(out_dir),
                     "--json", str(json_path)], out=lambda _: None)
    assert code == 0
    text = (out_dir / "trend.txt").read_text()
    assert "perf kernels" in text
    doc = validate_run_payload(json.loads(json_path.read_text()))
    assert doc["experiment"] == "trend"
    assert doc["results"]["records"] == 5


def test_cli_trend_missing_history_raises(tmp_path):
    with pytest.raises(ConfigError, match="not found"):
        cli_main(["trend", str(tmp_path / "absent.jsonl")],
                 out=lambda _: None)
