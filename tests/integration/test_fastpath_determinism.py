"""Golden seeded-run determinism across the simulation fast path.

The kernel optimizations (calendar-queue event core, message pooling,
hot-path counter caches) must be *invisible*: every seeded run stays
bit-identical to the values captured before the fast path landed, with
observability on or off, at any sweep job count.  These goldens pin a
contention storm per primitive family and policy; if an optimization
ever changes a cycle count or message count, this file fails before the
benchmark gate does.
"""

import pytest

from repro import SyncPolicy, build_machine, small_config
from repro.harness.table1 import TABLE1_EXPECTED, run_table1
from repro.obs.events import EventRecorder
from repro.obs.hotspot import HotspotTracker
from repro.obs.spans import SpanBuilder

#: (primitive, policy) -> (end cycle, events executed, net messages,
#: net flits, final counter value) for a 4-node, 8-turn storm on the
#: seeded small config.  Captured on the pre-fast-path kernel; any drift
#: is a semantic change, not an optimization.
GOLDEN_STORMS = {
    ("faa", "INV"): (567, 94, 26, 78, 32),
    ("faa", "UPD"): (670, 312, 204, 564, 32),
    ("faa", "UNC"): (657, 132, 48, 144, 32),
    ("llsc", "UNC"): (3537, 644, 288, 864, 32),
}


def _storm(prim: str, policy: str, observe: bool = False):
    m = build_machine(small_config(n_nodes=4))
    instruments = None
    if observe:
        instruments = (
            EventRecorder(m.events),
            SpanBuilder(m.events),
            HotspotTracker(m.events),
        )
    addr = m.alloc_sync(SyncPolicy(policy), home=1)

    if prim == "faa":
        def prog(p):
            for _ in range(8):
                yield p.fetch_add(addr, 1)
    else:
        def prog(p):
            for _ in range(8):
                while True:
                    v = yield p.ll(addr)
                    ok = yield p.sc(addr, v.value + 1, token=v.token)
                    if ok:
                        break

    m.spawn_all(prog)
    end = m.run()
    net = m.mesh.stats
    outcome = (end, m.sim.events_processed, net.messages, net.flits,
               m.read_word(addr))
    return outcome, m, instruments


@pytest.mark.parametrize("prim,policy", sorted(GOLDEN_STORMS))
def test_storm_matches_pre_fastpath_golden(prim, policy):
    outcome, _, _ = _storm(prim, policy)
    assert outcome == GOLDEN_STORMS[(prim, policy)]


@pytest.mark.parametrize("prim,policy", sorted(GOLDEN_STORMS))
def test_storm_identical_with_observability_attached(prim, policy):
    bare, bare_machine, _ = _storm(prim, policy, observe=False)
    observed, obs_machine, instruments = _storm(prim, policy, observe=True)
    assert observed == bare
    assert instruments is not None and len(instruments[0]) > 0
    # The full registry must agree too, not just the headline numbers.
    assert obs_machine.registry.snapshot() == bare_machine.registry.snapshot()


def test_table1_identical_serial_and_parallel():
    serial = run_table1(jobs=1, cache=None)
    parallel = run_table1(jobs=2, cache=None)
    assert serial == parallel == TABLE1_EXPECTED


def test_repeated_runs_share_every_registry_counter():
    _, first, _ = _storm("faa", "INV")
    _, second, _ = _storm("faa", "INV")
    assert first.registry.snapshot() == second.registry.snapshot()
