"""Full-machine integration tests at the paper's scale (64 nodes)."""

import pytest

from repro import SimConfig, SyncPolicy, build_machine
from repro.sync import (
    McsLock,
    PrimitiveVariant,
    TreeBarrier,
    TtsLock,
    increment,
)


@pytest.fixture(scope="module")
def machine64_factory():
    def make():
        return build_machine(SimConfig())

    return make


def test_64_node_counter_all_policies(machine64_factory):
    for policy in (SyncPolicy.INV, SyncPolicy.UPD, SyncPolicy.UNC):
        m = machine64_factory()
        addr = m.alloc_sync(policy, home=17)
        variant = PrimitiveVariant("fap", policy)

        def prog(p):
            for _ in range(3):
                yield from increment(p, addr, variant)

        m.spawn_all(prog)
        m.run(max_events=20_000_000)
        assert m.read_word(addr) == 64 * 3


def test_64_node_mixed_primitive_families(machine64_factory):
    # A third of the processors use each primitive family on the SAME
    # counter; all updates must still land.
    m = machine64_factory()
    addr = m.alloc_sync(SyncPolicy.INV, home=5)
    variants = [PrimitiveVariant(f, SyncPolicy.INV)
                for f in ("fap", "cas", "llsc")]

    def prog(p):
        variant = variants[p.pid % 3]
        for _ in range(2):
            yield from increment(p, addr, variant)

    m.spawn_all(prog)
    m.run(max_events=40_000_000)
    assert m.read_word(addr) == 128


def test_64_node_tts_and_barrier_pipeline(machine64_factory):
    # Phases of barrier-separated lock-protected updates.
    m = machine64_factory()
    lock = TtsLock(m, PrimitiveVariant("cas", SyncPolicy.INV, use_lx=True))
    barrier = TreeBarrier(m)
    counter = m.alloc_data(1)

    def prog(p):
        for _phase in range(2):
            yield from lock.acquire(p)
            value = yield p.load(counter)
            yield p.store(counter, value + 1)
            yield from lock.release(p)
            yield from barrier.wait(p)

    m.spawn_all(prog)
    m.run(max_events=60_000_000)
    assert m.read_word(counter) == 128


def test_64_node_mcs_fairness(machine64_factory):
    # Every processor gets the MCS lock exactly as many times as it asks.
    m = machine64_factory()
    lock = McsLock(m, PrimitiveVariant("cas", SyncPolicy.INV))
    grants = [0] * 64

    def prog(p):
        for _ in range(2):
            yield from lock.acquire(p)
            grants[p.pid] += 1
            yield p.think(10)
            yield from lock.release(p)

    m.spawn_all(prog)
    m.run(max_events=60_000_000)
    assert grants == [2] * 64


def test_64_node_many_variables_across_homes(machine64_factory):
    # 32 counters homed on distinct nodes, each hit by two processors.
    m = machine64_factory()
    addrs = [m.alloc_sync(SyncPolicy.INV, home=i * 2) for i in range(32)]
    variant = PrimitiveVariant("fap", SyncPolicy.INV)

    def prog(p):
        mine = addrs[p.pid % 32]
        for _ in range(4):
            yield from increment(p, mine, variant)

    m.spawn_all(prog)
    m.run(max_events=40_000_000)
    for addr in addrs:
        assert m.read_word(addr) == 8


def test_determinism_at_scale(machine64_factory):
    def run():
        m = machine64_factory()
        addr = m.alloc_sync(SyncPolicy.UPD, home=9)
        variant = PrimitiveVariant("cas", SyncPolicy.UPD)

        def prog(p):
            for _ in range(2):
                yield from increment(p, addr, variant)
                yield p.think(p.rng.randrange(30))

        m.spawn_all(prog)
        m.run(max_events=40_000_000)
        return m.now, m.mesh.stats.messages

    assert run() == run()
