"""Unit tests for the address space and allocator."""

import pytest

from repro.config import MachineConfig
from repro.errors import AddressError
from repro.machine.address import AddressSpace


def space(n_nodes=4):
    return AddressSpace(MachineConfig(n_nodes=n_nodes))


def test_block_and_offset_arithmetic():
    s = space()
    addr = (5 << 5) + 3 * 4  # block 5, word 3
    assert s.block_of(addr) == 5
    assert s.offset_of(addr) == 3
    assert s.addr_of(5, 3) == addr


def test_misaligned_address_rejected():
    s = space()
    with pytest.raises(AddressError):
        s.offset_of(6)


def test_negative_address_rejected():
    s = space()
    with pytest.raises(AddressError):
        s.block_of(-4)


def test_home_interleaving():
    s = space(n_nodes=4)
    for block in range(16):
        assert s.home_of(block) == block % 4


def test_alloc_block_respects_home():
    s = space(n_nodes=4)
    for home in (0, 1, 3, 2, 1):
        addr = s.alloc_block(home)
        assert s.home_of(s.block_of(addr)) == home


def test_alloc_block_never_reuses():
    s = space(n_nodes=4)
    seen = set()
    for _ in range(20):
        for home in range(4):
            addr = s.alloc_block(home)
            assert addr not in seen
            seen.add(addr)


def test_alloc_block_bad_home_rejected():
    s = space(n_nodes=4)
    with pytest.raises(AddressError):
        s.alloc_block(4)


def test_alloc_array_contiguous_blocks():
    s = space(n_nodes=4)
    base = s.alloc_array(24)  # 24 words = 3 blocks
    blocks = {s.block_of(base + i * 4) for i in range(24)}
    assert len(blocks) == 3
    assert max(blocks) - min(blocks) == 2


def test_alloc_array_homes_rotate():
    s = space(n_nodes=4)
    base = s.alloc_array(4 * 8 * 4)  # 16 blocks
    homes = {s.home_of(s.block_of(base)) for base in
             (base + i * 32 for i in range(16))}
    assert homes == {0, 1, 2, 3}


def test_arrays_and_singles_disjoint():
    s = space(n_nodes=4)
    single = s.alloc_block(0)
    array = s.alloc_array(8)
    assert s.block_of(single) != s.block_of(array)
    assert s.block_of(array) > s.block_of(single)


def test_two_arrays_disjoint():
    s = space()
    a = s.alloc_array(10)
    b = s.alloc_array(10)
    blocks_a = {s.block_of(a + i * 4) for i in range(10)}
    blocks_b = {s.block_of(b + i * 4) for i in range(10)}
    assert not blocks_a & blocks_b


def test_zero_word_array_rejected():
    with pytest.raises(AddressError):
        space().alloc_array(0)


def test_offset_out_of_block_rejected():
    with pytest.raises(AddressError):
        space().addr_of(1, 8)
