"""Tests of machine assembly, program management, and direct access."""

import pytest

from repro import SimConfig, SyncPolicy, build_machine
from repro.config import MachineConfig
from repro.errors import AddressError, DeadlockError

from tests.conftest import make_machine, run_one


def test_build_default_machine_is_64_nodes():
    m = build_machine()
    assert m.n_nodes == 64
    assert len(m.nodes) == 64


def test_nodes_fully_wired():
    m = make_machine(4)
    for node in m.nodes:
        assert node.processor is not None
        assert node.controller is not None
        assert node.memory is not None
        assert node.home is not None


def test_policy_defaults_to_inv():
    m = make_machine(4)
    addr = m.alloc_data(1)
    assert m.policy_of(m.block_of(addr)) is SyncPolicy.INV


def test_alloc_sync_registers_policy_and_tracking():
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.UNC, home=2)
    assert m.policy_of(m.block_of(addr)) is SyncPolicy.UNC
    assert addr in m.stats.writerun.registered
    assert m.home_of(m.block_of(addr)) == 2


def test_write_word_then_read_word():
    m = make_machine(4)
    addr = m.alloc_data(2)
    m.write_word(addr, 5)
    assert m.read_word(addr) == 5


def test_write_word_after_caching_rejected():
    m = make_machine(4)
    addr = m.alloc_data(1)

    def prog(p):
        yield p.load(addr)

    run_one(m, 0, prog)
    with pytest.raises(AddressError):
        m.write_word(addr, 9)


def test_read_word_follows_exclusive_owner():
    m = make_machine(4)
    addr = m.alloc_data(1)

    def prog(p):
        yield p.store(addr, 123)   # dirty exclusive in cpu0's cache

    run_one(m, 0, prog)
    assert m.read_word(addr) == 123


def test_spawn_all_with_pid_subset():
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.INV, home=0)

    def prog(p):
        yield p.fetch_add(addr, 1)

    m.spawn_all(prog, pids=[1, 3])
    m.run()
    assert m.read_word(addr) == 2


def test_deadlock_detection():
    m = make_machine(4)

    def stuck(p):
        yield p.barrier(0, 2)  # nobody else arrives

    m.spawn(0, stuck)
    with pytest.raises(DeadlockError):
        m.run()


def test_deadlock_message_names_blocked_programs():
    m = make_machine(4)

    def stuck(p):
        yield p.barrier(0, 4)  # four expected, only two arrive

    m.spawn(0, stuck)
    m.spawn(1, stuck)
    with pytest.raises(DeadlockError,
                       match=r"2 program\(s\) blocked") as excinfo:
        m.run()
    assert "cpu0" in str(excinfo.value)
    assert "cpu1" in str(excinfo.value)


def test_deadlock_ignores_finished_programs():
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.INV, home=0)

    def stuck(p):
        yield p.barrier(0, 2)

    def fine(p):
        yield p.fetch_add(addr, 1)

    m.spawn(0, stuck)
    m.spawn(1, fine)
    with pytest.raises(DeadlockError,
                       match=r"1 program\(s\) blocked") as excinfo:
        m.run()
    # Only the genuinely blocked program is reported.
    assert "cpu0" in str(excinfo.value)
    assert "cpu1" not in str(excinfo.value)
    assert m.read_word(addr) == 1


def test_sequential_respawn_on_same_processor():
    m = make_machine(4)
    addr = m.alloc_sync(SyncPolicy.INV, home=0)

    def prog(p):
        yield p.fetch_add(addr, 1)

    for _ in range(3):
        m.spawn(0, prog)
        m.run()
    assert m.read_word(addr) == 3


def test_determinism_same_seed_same_cycles():
    def run():
        m = make_machine(8)
        addr = m.alloc_sync(SyncPolicy.INV, home=1)

        def prog(p):
            for _ in range(5):
                yield p.fetch_add(addr, 1)
                yield p.think(p.rng.randrange(10))

        m.spawn_all(prog)
        m.run()
        return m.now, m.read_word(addr)

    assert run() == run()


def test_different_seeds_change_timing():
    def run(seed):
        m = build_machine(SimConfig(machine=MachineConfig(n_nodes=8),
                                    seed=seed))
        addr = m.alloc_sync(SyncPolicy.INV, home=1)

        def prog(p):
            for _ in range(5):
                yield p.think(p.rng.randrange(1000))
                yield p.fetch_add(addr, 1)

        m.spawn_all(prog)
        m.run()
        return m.now

    assert run(1) != run(2)


def test_invalid_config_rejected():
    from repro.errors import ConfigError
    with pytest.raises(ConfigError):
        build_machine(SimConfig(machine=MachineConfig(n_nodes=0)))
    with pytest.raises(ConfigError):
        build_machine(SimConfig(reservation_strategy="bogus"))
