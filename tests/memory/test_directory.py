"""Unit tests for directory entries."""

import pytest

from repro.errors import ProtocolError
from repro.memory.directory import Directory, DirectoryEntry, DirState


def test_new_entry_uncached():
    entry = DirectoryEntry()
    assert entry.state is DirState.UNCACHED
    assert not entry.sharers and entry.owner is None
    assert not entry.busy and not entry.awaiting_wb


def test_add_sharer_transitions_to_shared():
    entry = DirectoryEntry()
    entry.add_sharer(3)
    assert entry.state is DirState.SHARED
    assert entry.sharers == {3}


def test_add_sharer_to_exclusive_rejected():
    entry = DirectoryEntry()
    entry.set_exclusive(1)
    with pytest.raises(ProtocolError):
        entry.add_sharer(2)


def test_set_exclusive_clears_sharers():
    entry = DirectoryEntry()
    entry.add_sharer(1)
    entry.add_sharer(2)
    entry.set_exclusive(3)
    assert entry.state is DirState.EXCLUSIVE
    assert entry.owner == 3
    assert not entry.sharers


def test_remove_last_sharer_collapses_to_uncached():
    entry = DirectoryEntry()
    entry.add_sharer(1)
    entry.remove_sharer(1)
    assert entry.state is DirState.UNCACHED


def test_remove_one_of_many_sharers():
    entry = DirectoryEntry()
    entry.add_sharer(1)
    entry.add_sharer(2)
    entry.remove_sharer(1)
    assert entry.state is DirState.SHARED
    assert entry.sharers == {2}


def test_set_shared_empty_means_uncached():
    entry = DirectoryEntry()
    entry.set_shared(set())
    assert entry.state is DirState.UNCACHED


def test_set_uncached_resets_everything():
    entry = DirectoryEntry()
    entry.set_exclusive(2)
    entry.set_uncached()
    assert entry.state is DirState.UNCACHED
    assert entry.owner is None


def test_directory_creates_entries_on_demand():
    directory = Directory(0)
    assert len(directory) == 0
    entry = directory.entry(42)
    assert entry.state is DirState.UNCACHED
    assert directory.entry(42) is entry
    assert directory.known_blocks() == [42]
    assert len(directory) == 1
