"""Unit tests for the queued memory module."""

import pytest

from repro.config import SimConfig
from repro.memory.module import MemoryModule
from repro.sim.engine import Simulator


def build():
    sim = Simulator()
    config = SimConfig()
    return sim, MemoryModule(sim, 0, config), config


def test_blocks_start_zeroed():
    sim, mem, config = build()
    assert mem.read_block(5) == [0] * config.machine.words_per_block
    assert mem.read_word(5, 3) == 0


def test_word_write_and_read():
    sim, mem, config = build()
    mem.write_word(5, 3, 77)
    assert mem.read_word(5, 3) == 77
    assert mem.read_block(5)[3] == 77


def test_block_write_and_read():
    sim, mem, config = build()
    words = list(range(config.machine.words_per_block))
    mem.write_block(9, words)
    assert mem.read_block(9) == words


def test_block_write_size_checked():
    sim, mem, config = build()
    with pytest.raises(ValueError):
        mem.write_block(9, [1, 2, 3])


def test_read_block_returns_copy():
    sim, mem, config = build()
    copy = mem.read_block(2)
    copy[0] = 99
    assert mem.read_word(2, 0) == 0


def test_service_takes_memory_service_cycles():
    sim, mem, config = build()
    times = []
    mem.service(lambda: times.append(sim.now))
    sim.run()
    assert times == [config.timing.memory_service]


def test_concurrent_requests_queue_fifo():
    sim, mem, config = build()
    times = []
    mem.service(times.append, "a")
    mem.service(times.append, "b")
    sim.run()
    assert times == ["a", "b"]
    assert sim.now == 2 * config.timing.memory_service
    assert mem.stats.accesses == 2
    assert mem.stats.total_queue_wait == config.timing.memory_service


def test_custom_service_time():
    sim, mem, config = build()
    times = []
    mem.service(lambda: times.append(sim.now), service_time=5)
    sim.run()
    assert times == [5]


def test_queue_drains_between_bursts():
    sim, mem, config = build()
    mem.service(lambda: None)
    sim.run()
    start = sim.now
    mem.service(lambda: None)
    sim.run()
    assert sim.now == start + config.timing.memory_service
    assert mem.stats.mean_queue_wait == 0.0
