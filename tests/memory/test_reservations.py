"""Unit tests for the three LL/SC reservation strategies."""

import pytest

from repro.errors import ConfigError
from repro.memory.reservations import (
    BitVectorReservations,
    LimitedReservations,
    LinkedListReservations,
    SerialNumberReservations,
    make_reservation_table,
)


# ----------------------------------------------------------------------
# Bit vector.
# ----------------------------------------------------------------------

class TestBitVector:
    def test_ll_then_sc_succeeds(self):
        table = BitVectorReservations(4)
        grant = table.load_linked(1, 10)
        assert not grant.doomed and grant.token is None
        assert table.consume(1, 10, None)

    def test_sc_without_ll_fails(self):
        table = BitVectorReservations(4)
        assert not table.consume(2, 10, None)

    def test_write_kills_all_reservations(self):
        table = BitVectorReservations(4)
        table.load_linked(0, 10)
        table.load_linked(1, 10)
        table.write(10)
        assert not table.check(0, 10, None)
        assert not table.check(1, 10, None)

    def test_successful_sc_kills_other_reservations(self):
        table = BitVectorReservations(4)
        table.load_linked(0, 10)
        table.load_linked(1, 10)
        assert table.consume(0, 10, None)
        assert not table.consume(1, 10, None)

    def test_reservations_per_block(self):
        table = BitVectorReservations(4)
        table.load_linked(0, 10)
        table.load_linked(0, 11)
        table.write(10)
        assert table.check(0, 11, None)
        assert not table.check(0, 10, None)

    def test_holders(self):
        table = BitVectorReservations(8)
        for pid in range(5):
            table.load_linked(pid, 3)
        assert table.holders(3) == 5


# ----------------------------------------------------------------------
# Limited.
# ----------------------------------------------------------------------

class TestLimited:
    def test_over_limit_is_doomed(self):
        table = LimitedReservations(8, limit=2)
        assert not table.load_linked(0, 5).doomed
        assert not table.load_linked(1, 5).doomed
        assert table.load_linked(2, 5).doomed
        assert table.denied == 1

    def test_doomed_sc_fails(self):
        table = LimitedReservations(8, limit=1)
        table.load_linked(0, 5)
        table.load_linked(1, 5)  # doomed
        assert not table.consume(1, 5, None)
        assert table.consume(0, 5, None)

    def test_repeat_ll_by_holder_not_doomed(self):
        table = LimitedReservations(8, limit=1)
        assert not table.load_linked(0, 5).doomed
        assert not table.load_linked(0, 5).doomed

    def test_write_frees_slots(self):
        table = LimitedReservations(8, limit=1)
        table.load_linked(0, 5)
        table.write(5)
        assert not table.load_linked(1, 5).doomed

    def test_bad_limit_rejected(self):
        with pytest.raises(ConfigError):
            LimitedReservations(8, limit=0)


# ----------------------------------------------------------------------
# Serial numbers.
# ----------------------------------------------------------------------

class TestSerial:
    def test_ll_returns_current_serial(self):
        table = SerialNumberReservations(4)
        assert table.load_linked(0, 9).token == 0
        table.write(9)
        assert table.load_linked(0, 9).token == 1

    def test_sc_with_current_serial_succeeds(self):
        table = SerialNumberReservations(4)
        token = table.load_linked(0, 9).token
        assert table.consume(0, 9, token)

    def test_sc_with_stale_serial_fails(self):
        table = SerialNumberReservations(4)
        token = table.load_linked(0, 9).token
        table.write(9)
        assert not table.consume(0, 9, token)

    def test_success_bumps_serial(self):
        table = SerialNumberReservations(4)
        token = table.load_linked(0, 9).token
        assert table.consume(0, 9, token)
        assert not table.consume(0, 9, token)  # serial moved on

    def test_bare_sc_with_known_serial(self):
        # No load_linked at all: a processor that knows the serial number
        # may attempt a bare store_conditional (paper §3.1).
        table = SerialNumberReservations(4)
        assert table.consume(3, 9, 0)
        assert not table.consume(3, 9, 0)

    def test_sc_without_token_fails(self):
        table = SerialNumberReservations(4)
        table.load_linked(0, 9)
        assert not table.consume(0, 9, None)

    def test_aba_immunity(self):
        # Value-based CAS cannot see a write of the same value; the serial
        # number can.  Two writes (back to the original value) must fail
        # the pending store_conditional.
        table = SerialNumberReservations(4)
        token = table.load_linked(0, 9).token
        table.write(9)
        table.write(9)
        assert not table.consume(0, 9, token)


# ----------------------------------------------------------------------
# Linked list (bounded free list).
# ----------------------------------------------------------------------

class TestLinkedList:
    def test_ll_then_sc_succeeds(self):
        table = LinkedListReservations(8, pool_size=4)
        assert not table.load_linked(0, 5).doomed
        assert table.consume(0, 5, None)

    def test_pool_exhaustion_dooms(self):
        table = LinkedListReservations(8, pool_size=2)
        assert not table.load_linked(0, 5).doomed
        assert not table.load_linked(1, 6).doomed
        assert table.load_linked(2, 7).doomed
        assert table.denied == 1

    def test_pool_is_shared_across_blocks(self):
        table = LinkedListReservations(8, pool_size=2)
        table.load_linked(0, 5)
        table.load_linked(1, 5)
        # Different block, but the module-wide free list is empty.
        assert table.load_linked(2, 99).doomed

    def test_write_returns_nodes_to_free_list(self):
        table = LinkedListReservations(8, pool_size=2)
        table.load_linked(0, 5)
        table.load_linked(1, 5)
        assert table.free_nodes == 0
        table.write(5)
        assert table.free_nodes == 2
        assert not table.load_linked(2, 6).doomed

    def test_repeat_ll_by_holder_uses_no_node(self):
        table = LinkedListReservations(8, pool_size=1)
        table.load_linked(0, 5)
        assert not table.load_linked(0, 5).doomed
        assert table.free_nodes == 0

    def test_successful_sc_frees_whole_block_list(self):
        table = LinkedListReservations(8, pool_size=3)
        table.load_linked(0, 5)
        table.load_linked(1, 5)
        assert table.consume(0, 5, None)
        assert table.free_nodes == 3
        assert not table.check(1, 5, None)

    def test_holders(self):
        table = LinkedListReservations(8, pool_size=8)
        for pid in range(3):
            table.load_linked(pid, 5)
        assert table.holders(5) == 3


# ----------------------------------------------------------------------
# Factory.
# ----------------------------------------------------------------------

class TestFactory:
    def test_factory_builds_each(self):
        assert isinstance(make_reservation_table("bitvector", 4),
                          BitVectorReservations)
        assert isinstance(make_reservation_table("limited", 4, 2),
                          LimitedReservations)
        assert isinstance(make_reservation_table("serial", 4),
                          SerialNumberReservations)
        assert isinstance(make_reservation_table("linkedlist", 4),
                          LinkedListReservations)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ConfigError):
            make_reservation_table("magic", 4)
