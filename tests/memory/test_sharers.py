"""Unit tests for the pluggable sharer-set representations."""

import pytest

from repro.errors import ConfigError
from repro.memory.sharers import (
    CoarseVectorSet,
    LimitedPointerSet,
    SharerSet,
    make_sharer_factory,
)


class TestFullBitVector:
    def test_set_protocol(self):
        s = SharerSet()
        assert not s
        assert len(s) == 0
        s.add(3)
        s.add(10)
        s.add(3)
        assert len(s) == 2
        assert 3 in s and 10 in s and 4 not in s
        assert "x" not in s
        assert s == {3, 10}
        s.discard(3)
        s.discard(99)
        assert s == {10}
        s.clear()
        assert not s and s == set()

    def test_iteration_is_ascending(self):
        s = SharerSet()
        for node in (10, 3, 63, 0):
            s.add(node)
        assert list(s) == [0, 3, 10, 63]

    def test_targets_exclude(self):
        s = SharerSet()
        for node in (1, 5, 9):
            s.add(node)
        assert s.targets(5) == [1, 9]
        assert s.targets(2) == [1, 5, 9]
        assert s.exact_targets(5) == 2
        assert not s.overflowed

    def test_replace(self):
        s = SharerSet()
        s.add(7)
        s.replace([2, 4])
        assert s == {2, 4}
        s.replace([])
        assert not s

    def test_eq_across_representations(self):
        a = SharerSet()
        b = LimitedPointerSet(16, 2)
        for node in (1, 2, 3):
            a.add(node)
            b.add(node)
        assert a == b


class TestLimitedPointer:
    def test_precise_below_capacity(self):
        s = LimitedPointerSet(16, pointers=3)
        for node in (2, 5, 9):
            s.add(node)
        assert not s.overflowed
        assert s.targets(5) == [2, 9]

    def test_broadcast_on_overflow(self):
        s = LimitedPointerSet(8, pointers=2)
        for node in (1, 2, 3):
            s.add(node)
        assert s.overflowed
        # Broadcast: every node except the excluded one.
        assert s.targets(3) == [0, 1, 2, 4, 5, 6, 7]
        # Exact membership is retained for protocol decisions.
        assert s == {1, 2, 3}
        assert s.exact_targets(3) == 2

    def test_overflow_sticky_until_reset(self):
        s = LimitedPointerSet(8, pointers=2)
        for node in (1, 2, 3):
            s.add(node)
        s.discard(1)
        s.discard(2)
        assert s.overflowed  # the hardware no longer knows who holds copies
        assert s.targets(3) == [0, 1, 2, 4, 5, 6, 7]
        s.clear()
        assert not s.overflowed
        s.add(4)
        assert s.targets(0) == [4]

    def test_replace_resets_overflow(self):
        s = LimitedPointerSet(8, pointers=2)
        for node in (1, 2, 3):
            s.add(node)
        s.replace([5])
        assert not s.overflowed
        s.replace([0, 1, 2, 3])
        assert s.overflowed

    def test_validation(self):
        with pytest.raises(ConfigError):
            LimitedPointerSet(0, 2)
        with pytest.raises(ConfigError):
            LimitedPointerSet(8, 0)


class TestCoarseVector:
    def test_region_fanout(self):
        s = CoarseVectorSet(16, region=4)
        s.add(1)
        s.add(9)
        # Regions 0 (nodes 0-3) and 2 (nodes 8-11) are marked.
        assert s.targets(1) == [0, 2, 3, 8, 9, 10, 11]
        assert s.overflowed
        assert s == {1, 9}

    def test_region_one_is_exact(self):
        s = CoarseVectorSet(16, region=1)
        for node in (3, 7):
            s.add(node)
        assert not s.overflowed
        assert s.targets(3) == [7]

    def test_sticky_regions(self):
        s = CoarseVectorSet(16, region=4)
        s.add(1)
        s.discard(1)
        # The region bit stays: another node in region 0 might hold a copy.
        assert s.targets(5) == [0, 1, 2, 3]
        s.clear()
        assert s.targets(5) == []

    def test_last_region_clipped(self):
        s = CoarseVectorSet(10, region=4)
        s.add(9)  # region 2 covers nodes 8..11, but the machine stops at 9
        assert s.targets(0) == [8, 9]

    def test_replace_recomputes_regions(self):
        s = CoarseVectorSet(16, region=4)
        s.add(1)
        s.replace([12])
        assert s.targets(0) == [12, 13, 14, 15]

    def test_validation(self):
        with pytest.raises(ConfigError):
            CoarseVectorSet(0, 4)
        with pytest.raises(ConfigError):
            CoarseVectorSet(8, 0)


class TestFactory:
    def test_kinds(self):
        assert make_sharer_factory("full", 8)().kind == "full"
        assert make_sharer_factory("limited", 8, pointers=2)().kind == "limited"
        assert make_sharer_factory("coarse", 8, region=2)().kind == "coarse"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_sharer_factory("sparse", 8)
